// siren_hash — fuzzy-hash files and compare digests (the ssdeep-style CLI).
//
//   siren_hash FILE...            print "digest  path" per file
//   siren_hash -x FILE...         also print the strings/symbols digests
//   siren_hash -c FILE_A FILE_B   compare two files (0..100)
//   siren_hash -d DIGEST_A DIGEST_B
//                                 compare two digest strings
//   siren_hash -t TRACE...        shapelet digest per runtime counter trace:
//                                 whitespace-separated samples, '-' = stdin
//                                 (docs/behavior_fingerprints.md)
//
// Exit code: 0 on success, 1 on usage errors, 2 when a file is unreadable.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "behavior/shapelet.hpp"
#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "fuzzy/streaming.hpp"

namespace {

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    return true;
}

int usage() {
    std::fprintf(stderr,
                 "usage: siren_hash [-x] FILE...\n"
                 "       siren_hash -c FILE_A FILE_B\n"
                 "       siren_hash -d DIGEST_A DIGEST_B\n"
                 "       siren_hash -t TRACE... ('-' reads samples from stdin)\n");
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();

    const std::string mode = argv[1];

    if (mode == "-c") {
        if (argc != 4) return usage();
        std::vector<std::uint8_t> a, b;
        if (!read_file(argv[2], a) || !read_file(argv[3], b)) {
            std::fprintf(stderr, "siren_hash: cannot read input files\n");
            return 2;
        }
        const int score =
            siren::fuzzy::compare(siren::fuzzy::fuzzy_hash(a), siren::fuzzy::fuzzy_hash(b));
        std::printf("%d\n", score);
        return 0;
    }

    if (mode == "-d") {
        if (argc != 4) return usage();
        try {
            std::printf("%d\n", siren::fuzzy::compare(argv[2], argv[3], /*strict=*/true));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "siren_hash: %s\n", e.what());
            return 1;
        }
        return 0;
    }

    if (mode == "-t") {
        if (argc < 3) return usage();
        int status = 0;
        for (int i = 2; i < argc; ++i) {
            std::string text;
            if (std::strcmp(argv[i], "-") == 0) {
                text.assign(std::istreambuf_iterator<char>(std::cin),
                            std::istreambuf_iterator<char>());
            } else {
                std::ifstream in(argv[i]);
                if (!in) {
                    std::fprintf(stderr, "siren_hash: cannot read %s\n", argv[i]);
                    status = 2;
                    continue;
                }
                text.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
            }
            try {
                const auto trace = siren::behavior::parse_trace(text);
                std::printf("%s  %s\n",
                            siren::behavior::shapelet_digest_string(trace).c_str(),
                            argv[i]);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "siren_hash: %s: %s\n", argv[i], e.what());
                status = 2;
            }
        }
        return status;
    }

    const bool extended = mode == "-x";
    int first_file = extended ? 2 : 1;
    if (first_file >= argc) return usage();

    int status = 0;
    for (int i = first_file; i < argc; ++i) {
        std::vector<std::uint8_t> bytes;
        if (!read_file(argv[i], bytes)) {
            std::fprintf(stderr, "siren_hash: cannot read %s\n", argv[i]);
            status = 2;
            continue;
        }
        std::printf("%s  %s\n", siren::fuzzy::fuzzy_hash(bytes).to_string().c_str(), argv[i]);
        if (extended) {
            namespace se = siren::elfio;
            if (const auto tlsh = siren::fuzzy::tlsh_hash(bytes)) {
                std::printf("  tlsh    : %s\n", tlsh->to_string().c_str());
            }
            const auto strings = se::printable_strings(bytes);
            std::printf("  strings : %s\n",
                        siren::fuzzy::fuzzy_hash(se::strings_blob(strings)).to_string().c_str());
            if (se::Reader::looks_like_elf(bytes)) {
                try {
                    const se::Reader reader(bytes);
                    const auto symbols = reader.global_symbol_names();
                    std::printf("  symbols : %s\n",
                                siren::fuzzy::fuzzy_hash(se::strings_blob(symbols))
                                    .to_string()
                                    .c_str());
                    const auto comments = reader.comment_strings();
                    if (!comments.empty()) {
                        std::printf("  comment : %s\n", comments.front().c_str());
                    }
                    const std::string id = reader.build_id();
                    if (!id.empty()) std::printf("  build-id: %s\n", id.c_str());
                } catch (const std::exception&) {
                    std::printf("  (malformed ELF: section details unavailable)\n");
                }
            }
        }
    }
    return status;
}
