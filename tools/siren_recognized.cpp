// siren_recognized — the live recognition daemon: a snapshot-swap registry
// service answering concurrent IDENTIFY/TOPN/OBSERVE/STATS queries over a
// length-framed TCP protocol, optionally fed by an ingest daemon's durable
// segments and checkpointed for crash recovery.
//
//   siren_recognized PORT [options]
//     --bind ADDR          IPv4 bind address (default 127.0.0.1)
//     --segments DIR       follow this segment directory (FILE_H digests
//                          flow into the live registry; pair with
//                          `siren_ingestd PORT DATA_DIR` on DATA_DIR/segments)
//     --checkpoint FILE    registry checkpoint path: loaded at startup,
//                          written periodically and at shutdown
//     --checkpoint-secs S  checkpoint cadence (default 30, 0 = only final)
//     --threshold N        registry match threshold (default 60)
//     --batch-threads N    fan-out pool for multi-digest IDENTIFY (default 0)
//     --seconds S          run duration (default: until SIGINT/SIGTERM)
//     --poll-ms MS         segment follow cadence (default 20)
//     --publish-ms MS      min spacing between snapshot publishes (default 5;
//                          amortizes the registry copy under write storms)
//
// Crash recovery = last checkpoint + replay of every segment record past
// its watermark (see docs/recognition_service.md). Query with:
//
//   siren_query --identify 127.0.0.1:PORT DIGEST

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "serve/serve.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage() {
    std::fprintf(stderr,
                 "usage: siren_recognized PORT [--bind ADDR] [--segments DIR]\n"
                 "                        [--checkpoint FILE] [--checkpoint-secs S]\n"
                 "                        [--threshold N] [--batch-threads N]\n"
                 "                        [--seconds S] [--poll-ms MS] [--publish-ms MS]\n");
    return 1;
}

/// Strict numeric parse (util::parse_decimal): usage errors in a daemon's
/// command line should be loud, not silently become port 0.
bool parse_number(const char* arg, long& out) { return siren::util::parse_decimal(arg, out); }

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    long port = 0;
    if (!parse_number(argv[1], port) || port > 65535) {
        std::fprintf(stderr, "siren_recognized: bad port '%s'\n", argv[1]);
        return usage();
    }

    siren::serve::ServeOptions options;
    siren::serve::QueryServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(port);
    long run_seconds = 0;
    long checkpoint_seconds = 30;
    long poll_ms = 20;
    long publish_ms = 5;
    long threshold = 60;
    long batch_threads = 0;
    for (int i = 2; i < argc; ++i) {
        const auto needs_value = [&](const char* flag) {
            return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
        };
        if (needs_value("--bind")) {
            server_options.bind_address = argv[++i];
        } else if (needs_value("--segments")) {
            options.segments_dir = argv[++i];
        } else if (needs_value("--checkpoint")) {
            options.checkpoint_path = argv[++i];
        } else if (needs_value("--checkpoint-secs")) {
            if (!parse_number(argv[++i], checkpoint_seconds)) return usage();
        } else if (needs_value("--threshold")) {
            if (!parse_number(argv[++i], threshold) || threshold < 1 || threshold > 100) {
                return usage();
            }
        } else if (needs_value("--batch-threads")) {
            if (!parse_number(argv[++i], batch_threads)) return usage();
        } else if (needs_value("--seconds")) {
            if (!parse_number(argv[++i], run_seconds)) return usage();
        } else if (needs_value("--poll-ms")) {
            if (!parse_number(argv[++i], poll_ms) || poll_ms < 1) return usage();
        } else if (needs_value("--publish-ms")) {
            if (!parse_number(argv[++i], publish_ms)) return usage();
        } else {
            std::fprintf(stderr, "siren_recognized: unknown or incomplete option '%s'\n",
                         argv[i]);
            return usage();
        }
    }
    options.registry.match_threshold = static_cast<int>(threshold);
    options.checkpoint_interval = std::chrono::seconds(checkpoint_seconds);
    options.feed_poll = std::chrono::milliseconds(poll_ms);
    options.publish_interval = std::chrono::milliseconds(publish_ms);
    options.batch_pool_threads = static_cast<std::size_t>(batch_threads);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    try {
        siren::serve::RecognitionService service(options);
        siren::serve::QueryServer server(service, server_options);

        const auto boot = service.snapshot();
        std::printf("siren_recognized: serving on tcp://%s:%u (families=%zu, applied=%llu%s%s)\n",
                    server_options.bind_address.c_str(), server.port(),
                    boot->registry.family_count(),
                    static_cast<unsigned long long>(boot->applied),
                    options.segments_dir.empty() ? "" : ", following segments",
                    options.checkpoint_path.empty() ? "" : ", checkpointing");
        std::fflush(stdout);  // scripted callers parse the port from this line

        const auto start = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            if (run_seconds > 0 &&
                std::chrono::steady_clock::now() - start > std::chrono::seconds(run_seconds)) {
                break;
            }
        }

        server.stop();
        service.stop();  // final checkpoint

        const auto counters = service.counters();
        const auto server_stats = server.stats();
        const auto snap = service.snapshot();
        std::printf("siren_recognized: families=%zu sightings=%llu requests=%llu "
                    "feed_file_hashes=%llu feed_malformed=%llu checkpoints=%llu "
                    "checkpoint_errors=%llu\n",
                    snap->registry.family_count(),
                    static_cast<unsigned long long>(snap->registry.total_sightings()),
                    static_cast<unsigned long long>(server_stats.requests),
                    static_cast<unsigned long long>(counters.feed_file_hashes),
                    static_cast<unsigned long long>(counters.feed_malformed),
                    static_cast<unsigned long long>(counters.checkpoints),
                    static_cast<unsigned long long>(counters.checkpoint_errors));
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_recognized: %s\n", e.what());
        return 2;
    }
}
