// siren_recognized — the live recognition daemon: a snapshot-swap registry
// service answering concurrent IDENTIFY/TOPN/OBSERVE/STATS queries over a
// length-framed TCP protocol, optionally fed by an ingest daemon's durable
// segments, checkpointed for crash recovery, and — since the replication
// layer — deployable as a leader/follower fleet (docs/replication.md).
//
//   siren_recognized PORT [options]
//     --bind ADDR          IPv4 bind address (default 127.0.0.1)
//     --segments DIR       follow this segment directory (FILE_H digests
//                          flow into the live registry; pair with
//                          `siren_ingestd PORT DATA_DIR` on DATA_DIR/segments)
//     --checkpoint FILE    registry checkpoint path: loaded at startup,
//                          written periodically and at shutdown
//     --checkpoint-secs S  checkpoint cadence (default 30, 0 = only final)
//     --threshold N        registry match threshold (default 60)
//     --batch-threads N    fan-out pool for multi-digest IDENTIFY (default 0)
//     --batch-window-us U  coalesce singleton IDENTIFYs arriving within U
//                          microseconds into one batch (default 0 = off)
//     --batch-max N        max probes per coalesced batch (default 64)
//     --seconds S          run duration (default: until SIGINT/SIGTERM)
//     --poll-ms MS         segment follow cadence (default 20)
//     --publish-ms MS      min spacing between snapshot publishes (default 5;
//                          amortizes the registry copy under write storms)
//
//   Leader (replication): requires --segments; client observes are
//   journaled into the segment directory (obs- stream) so followers and
//   leader restarts replay them.
//     --replicate PORT     serve segment-shipping replication (0 = ephemeral,
//                          printed in the banner)
//     --replicate-bind A   replication bind address (default: --bind value)
//     --no-wal-fsync       skip the per-batch observe-WAL fsync
//
//   Follower: requires --segments as the *local replica* directory; the
//   daemon serves IDENTIFY/TOPN from replicated state and rejects OBSERVE.
//     --follow HOST:PORT   stream segments from this leader's --replicate
//                          port and converge to its family assignments
//
//   Sharded fleet (docs/sharding.md): the daemon becomes one leader shard
//   of a partitioned fleet; OBSERVEs whose block size it does not own are
//   rejected with `ERR wrong_shard` and PARTMAP serves the map to clients.
//     --partition-map FILE serialized serve::PartitionMap to load
//     --shard-id N         this daemon's shard id in the map (default 0)
//
// Crash recovery = last checkpoint + replay of every segment record past
// its watermark (see docs/recognition_service.md). Query with:
//
//   siren_query --identify 127.0.0.1:PORT[,127.0.0.1:PORT2…] DIGEST

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "serve/serve.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage() {
    std::fprintf(stderr,
                 "usage: siren_recognized PORT [--bind ADDR] [--segments DIR]\n"
                 "                        [--checkpoint FILE] [--checkpoint-secs S]\n"
                 "                        [--threshold N] [--batch-threads N]\n"
                 "                        [--batch-window-us U] [--batch-max N]\n"
                 "                        [--seconds S] [--poll-ms MS] [--publish-ms MS]\n"
                 "                        [--replicate PORT] [--replicate-bind ADDR]\n"
                 "                        [--no-wal-fsync] [--follow HOST:PORT]\n"
                 "                        [--partition-map FILE] [--shard-id N]\n");
    return 1;
}

/// Strict numeric parse (util::parse_decimal): usage errors in a daemon's
/// command line should be loud, not silently become port 0.
bool parse_number(const char* arg, long& out) { return siren::util::parse_decimal(arg, out); }

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    long port = 0;
    if (!parse_number(argv[1], port) || port > 65535) {
        std::fprintf(stderr, "siren_recognized: bad port '%s'\n", argv[1]);
        return usage();
    }

    siren::serve::ServeOptions options;
    siren::serve::QueryServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(port);
    long run_seconds = 0;
    long checkpoint_seconds = 30;
    long poll_ms = 20;
    long publish_ms = 5;
    long threshold = 60;
    long batch_threads = 0;
    long batch_window_us = 0;
    long batch_max = 64;
    long replicate_port = -1;  // -1 = replication off
    std::string replicate_bind;
    std::string follow_endpoint;
    std::string partition_map_path;
    long shard_id = 0;
    for (int i = 2; i < argc; ++i) {
        const auto needs_value = [&](const char* flag) {
            return std::strcmp(argv[i], flag) == 0 && i + 1 < argc;
        };
        if (needs_value("--bind")) {
            server_options.bind_address = argv[++i];
        } else if (needs_value("--segments")) {
            options.segments_dir = argv[++i];
        } else if (needs_value("--checkpoint")) {
            options.checkpoint_path = argv[++i];
        } else if (needs_value("--checkpoint-secs")) {
            if (!parse_number(argv[++i], checkpoint_seconds)) return usage();
        } else if (needs_value("--threshold")) {
            if (!parse_number(argv[++i], threshold) || threshold < 1 || threshold > 100) {
                return usage();
            }
        } else if (needs_value("--batch-threads")) {
            if (!parse_number(argv[++i], batch_threads)) return usage();
        } else if (needs_value("--batch-window-us")) {
            if (!parse_number(argv[++i], batch_window_us) || batch_window_us < 0) {
                return usage();
            }
        } else if (needs_value("--batch-max")) {
            if (!parse_number(argv[++i], batch_max) || batch_max < 1) return usage();
        } else if (needs_value("--seconds")) {
            if (!parse_number(argv[++i], run_seconds)) return usage();
        } else if (needs_value("--poll-ms")) {
            if (!parse_number(argv[++i], poll_ms) || poll_ms < 1) return usage();
        } else if (needs_value("--publish-ms")) {
            if (!parse_number(argv[++i], publish_ms)) return usage();
        } else if (needs_value("--replicate")) {
            if (!parse_number(argv[++i], replicate_port) || replicate_port > 65535) {
                return usage();
            }
        } else if (needs_value("--replicate-bind")) {
            replicate_bind = argv[++i];
        } else if (std::strcmp(argv[i], "--no-wal-fsync") == 0) {
            options.replication.wal_fsync = false;
        } else if (needs_value("--follow")) {
            follow_endpoint = argv[++i];
        } else if (needs_value("--partition-map")) {
            partition_map_path = argv[++i];
        } else if (needs_value("--shard-id")) {
            if (!parse_number(argv[++i], shard_id) || shard_id < 0) return usage();
        } else {
            std::fprintf(stderr, "siren_recognized: unknown or incomplete option '%s'\n",
                         argv[i]);
            return usage();
        }
    }
    if ((replicate_port >= 0 || !follow_endpoint.empty()) && options.segments_dir.empty()) {
        std::fprintf(stderr,
                     "siren_recognized: --replicate/--follow need --segments DIR "
                     "(the shipped/replica segment directory)\n");
        return usage();
    }
    if (replicate_port >= 0 && !follow_endpoint.empty()) {
        std::fprintf(stderr,
                     "siren_recognized: --replicate and --follow are exclusive "
                     "(chained replication is not supported)\n");
        return usage();
    }
    options.registry.match_threshold = static_cast<int>(threshold);
    options.checkpoint_interval = std::chrono::seconds(checkpoint_seconds);
    options.feed_poll = std::chrono::milliseconds(poll_ms);
    options.publish_interval = std::chrono::milliseconds(publish_ms);
    options.batch_pool_threads = static_cast<std::size_t>(batch_threads);
    options.coalesce.batch_window_us = static_cast<std::uint32_t>(batch_window_us);
    options.coalesce.batch_max = static_cast<std::size_t>(batch_max);
    options.replication.observe_wal = replicate_port >= 0;
    options.replication.read_only = !follow_endpoint.empty();
    if (!partition_map_path.empty()) {
        try {
            options.partition.map = std::make_shared<const siren::serve::PartitionMap>(
                siren::serve::load_partition_map(partition_map_path));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "siren_recognized: --partition-map: %s\n", e.what());
            return 2;
        }
        options.partition.shard_id = static_cast<std::uint32_t>(shard_id);
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    try {
        std::unique_ptr<siren::serve::ReplicationFollower> follower;
        if (!follow_endpoint.empty()) {
            const auto leader = siren::serve::parse_replica_list(follow_endpoint);
            if (leader.size() != 1) {
                std::fprintf(stderr, "siren_recognized: --follow takes one HOST:PORT\n");
                return usage();
            }
            siren::serve::ReplicationFollowerOptions follow_options;
            follow_options.leader_host = leader.front().host;
            follow_options.leader_port = leader.front().port;
            follow_options.directory = options.segments_dir;
            // Start shipping before the service constructs, so its catch-up
            // replay already sees whatever arrives during boot; the tail
            // keeps following the rest live.
            follower = std::make_unique<siren::serve::ReplicationFollower>(follow_options);
        }

        siren::serve::RecognitionService service(options);
        siren::serve::QueryServer server(service, server_options);

        std::unique_ptr<siren::serve::ReplicationSource> source;
        if (replicate_port >= 0) {
            siren::serve::ReplicationSourceOptions source_options;
            source_options.port = static_cast<std::uint16_t>(replicate_port);
            source_options.bind_address =
                replicate_bind.empty() ? server_options.bind_address : replicate_bind;
            source_options.segments_dir = options.segments_dir;
            source = std::make_unique<siren::serve::ReplicationSource>(source_options);
        }

        const auto boot = service.snapshot();
        std::printf("siren_recognized: serving on tcp://%s:%u (families=%zu, applied=%llu%s%s%s)\n",
                    server_options.bind_address.c_str(), server.port(),
                    boot->registry.family_count(),
                    static_cast<unsigned long long>(boot->applied),
                    options.segments_dir.empty() ? "" : ", following segments",
                    options.checkpoint_path.empty() ? "" : ", checkpointing",
                    options.replication.read_only ? ", read-only follower" : "");
        if (source) {
            std::printf("siren_recognized: replicating on tcp://%s:%u\n",
                        replicate_bind.empty() ? server_options.bind_address.c_str()
                                               : replicate_bind.c_str(),
                        source->port());
        }
        if (follower) {
            std::printf("siren_recognized: following leader tcp://%s\n",
                        follow_endpoint.c_str());
        }
        if (const auto map = service.partition_map()) {
            std::printf("siren_recognized: shard %lu of %zu, partition map v%llu\n",
                        static_cast<unsigned long>(shard_id), map->shard_count(),
                        static_cast<unsigned long long>(map->version()));
        }
        std::fflush(stdout);  // scripted callers parse the ports from these lines

        const auto start = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            if (run_seconds > 0 &&
                std::chrono::steady_clock::now() - start > std::chrono::seconds(run_seconds)) {
                break;
            }
        }

        if (source) source->stop();
        if (follower) follower->stop();
        server.stop();
        service.stop();  // final checkpoint

        const auto counters = service.counters();
        const auto server_stats = server.stats();
        const auto snap = service.snapshot();
        std::printf("siren_recognized: families=%zu sightings=%llu requests=%llu "
                    "feed_file_hashes=%llu feed_malformed=%llu checkpoints=%llu "
                    "checkpoint_errors=%llu observes_journaled=%llu wal_fallbacks=%llu\n",
                    snap->registry.family_count(),
                    static_cast<unsigned long long>(snap->registry.total_sightings()),
                    static_cast<unsigned long long>(server_stats.requests),
                    static_cast<unsigned long long>(counters.feed_file_hashes),
                    static_cast<unsigned long long>(counters.feed_malformed),
                    static_cast<unsigned long long>(counters.checkpoints),
                    static_cast<unsigned long long>(counters.checkpoint_errors),
                    static_cast<unsigned long long>(counters.observes_journaled),
                    static_cast<unsigned long long>(counters.wal_fallbacks));
        if (source) {
            const auto rs = source->stats();
            std::printf("siren_recognized: replication followers=%llu chunks=%llu "
                        "bytes=%llu protocol_errors=%llu\n",
                        static_cast<unsigned long long>(rs.connections),
                        static_cast<unsigned long long>(rs.chunks_sent),
                        static_cast<unsigned long long>(rs.bytes_shipped),
                        static_cast<unsigned long long>(rs.protocol_errors));
        }
        if (follower) {
            const auto fs = follower->stats();
            std::printf("siren_recognized: follower connects=%llu chunks=%llu bytes=%llu "
                        "chunk_drops=%llu\n",
                        static_cast<unsigned long long>(fs.connects),
                        static_cast<unsigned long long>(fs.chunks),
                        static_cast<unsigned long long>(fs.bytes),
                        static_cast<unsigned long long>(fs.chunk_drops));
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_recognized: %s\n", e.what());
        return 2;
    }
}
