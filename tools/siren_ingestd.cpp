// siren_ingestd — the production ingest daemon: N SO_REUSEPORT UDP sockets
// drained by per-shard epoll loops into lock-free rings, every raw datagram
// journaled to a durable segment store (crash-recoverable WAL), decoded
// messages inserted into the raw-message table.
//
//   siren_ingestd PORT DATA_DIR [options]
//     --shards N        sockets/rings/workers (default 4)
//     --bind ADDR       IPv4 bind address (default 127.0.0.1; use 0.0.0.0
//                       so remote compute nodes can reach the daemon)
//     --seconds S       run duration (default: until SIGINT/SIGTERM)
//     --memory          disable the segment store (in-memory ingest only)
//     --compact-secs S  background-compact consolidated segments every S s
//     --replay          rebuild DATA_DIR from DATA_DIR/segments and exit
//
// Segments land in DATA_DIR/segments, the message table in
// DATA_DIR/messages.tsv (written at shutdown). After a crash — power cut,
// OOM kill — the tsv is stale or missing but the segments are not:
//
//   siren_ingestd 0 /var/lib/siren --replay
//
// recovers every complete record (a torn tail from the crash is reported,
// not fatal). See docs/storage_format.md.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <span>
#include <string>
#include <thread>

#include "db/message_store.hpp"
#include "ingest/ingest_server.hpp"
#include "storage/segment_store.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage() {
    std::fprintf(stderr,
                 "usage: siren_ingestd PORT DATA_DIR [--shards N] [--bind ADDR] [--seconds S]\n"
                 "                     [--memory] [--compact-secs S] [--replay]\n");
    return 1;
}

/// Strict numeric parse (util::parse_decimal): "80x" or "" must be a loud
/// usage error, not silently become some other port/shard count.
bool parse_number(const char* arg, long& out) { return siren::util::parse_decimal(arg, out); }

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    long port_value = 0;
    if (!parse_number(argv[1], port_value) || port_value > 65535) {
        std::fprintf(stderr, "siren_ingestd: bad port '%s'\n", argv[1]);
        return usage();
    }
    const auto port = static_cast<std::uint16_t>(port_value);
    const std::string data_dir = argv[2];
    const std::string segments_dir = data_dir + "/segments";

    long shards = 4;
    std::string bind_address = "127.0.0.1";
    long run_seconds = 0;
    long compact_seconds = 0;
    bool durable = true;
    bool replay = false;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
            if (!parse_number(argv[++i], shards)) return usage();
        } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
            bind_address = argv[++i];
        } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
            if (!parse_number(argv[++i], run_seconds)) return usage();
        } else if (std::strcmp(argv[i], "--compact-secs") == 0 && i + 1 < argc) {
            if (!parse_number(argv[++i], compact_seconds)) return usage();
        } else if (std::strcmp(argv[i], "--memory") == 0) {
            durable = false;
        } else if (std::strcmp(argv[i], "--replay") == 0) {
            replay = true;
        } else {
            std::fprintf(stderr, "siren_ingestd: unknown or incomplete option '%s'\n", argv[i]);
            return usage();
        }
    }
    if (shards <= 0) return usage();

    if (replay) {
        siren::db::Database db;
        const auto result = siren::db::replay_segments(segments_dir, db);
        db.save(data_dir);
        std::printf("siren_ingestd: replayed %llu records from %llu segments into %s\n",
                    static_cast<unsigned long long>(result.inserted),
                    static_cast<unsigned long long>(result.storage.segments), data_dir.c_str());
        if (result.storage.torn_tails > 0 || result.storage.crc_failures > 0) {
            std::printf("siren_ingestd: tolerated %llu torn tail(s), %llu checksum failure(s)\n",
                        static_cast<unsigned long long>(result.storage.torn_tails),
                        static_cast<unsigned long long>(result.storage.crc_failures));
        }
        return 0;
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    siren::db::Database db;
    siren::db::Table& table = siren::db::create_message_table(db);

    try {
        std::unique_ptr<siren::storage::SegmentStore> store;
        if (durable) {
            store = std::make_unique<siren::storage::SegmentStore>(
                segments_dir, static_cast<std::size_t>(shards));
        }

        siren::ingest::IngestOptions options;
        options.port = port;
        options.bind_address = bind_address;
        options.shards = static_cast<std::size_t>(shards);
        options.store = store.get();
        if (compact_seconds > 0) {
            // Records are inserted before their segment seals, so sealed
            // segments are fully consolidated — but compaction trades away
            // replayability of compacted history; it is opt-in.
            options.compaction_interval = std::chrono::seconds(compact_seconds);
            options.compact_sealed = true;
        }

        siren::ingest::IngestServer server(
            options, [&table](std::size_t, std::span<const siren::net::MessageView> batch) {
                for (const auto& view : batch) {
                    siren::db::insert_message(table, view.to_message());
                }
            });
        std::printf("siren_ingestd: %zu shard(s) on udp://%s:%u, %s\n", server.shards(),
                    bind_address.c_str(), server.port(),
                    durable ? ("journaling to " + segments_dir).c_str() : "in-memory (no WAL)");

        const auto start = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
            if (run_seconds > 0 &&
                std::chrono::steady_clock::now() - start > std::chrono::seconds(run_seconds)) {
                break;
            }
        }
        server.quiesce();
        server.stop();

        const auto stats = server.stats();
        std::printf("siren_ingestd: received=%llu decoded=%llu malformed=%llu "
                    "ring_dropped=%llu journaled=%llu storage_errors=%llu\n",
                    static_cast<unsigned long long>(stats.received),
                    static_cast<unsigned long long>(stats.decoded),
                    static_cast<unsigned long long>(stats.malformed),
                    static_cast<unsigned long long>(stats.ring_dropped),
                    static_cast<unsigned long long>(stats.appended),
                    static_cast<unsigned long long>(stats.storage_errors));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_ingestd: %s\n", e.what());
        return 2;
    }

    db.save(data_dir);
    std::printf("siren_ingestd: database written to %s\n", data_dir.c_str());
    return 0;
}
