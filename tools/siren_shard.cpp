// siren_shard — partition-map authoring and rebalance driving for a
// sharded recognition fleet (docs/sharding.md). The map file it reads and
// writes is the serve::PartitionMap text form — the same payload PARTMAP
// serves and siren_recognized --partition-map loads.
//
//   siren_shard split OUT VERSION LEADERS [CUT...]
//       Author a map: LEADERS is "host:port[,host:port...]" naming N shard
//       leaders (ids 0..N-1); the N-1 ascending CUTs carve the 64-bit
//       block-size key space, shard i owning [CUT_{i-1}, CUT_i - 1] (with
//       CUT_{-1} = 0 and CUT_{N-1} = 2^64 - 1). Written atomically to OUT.
//
//   siren_shard move MAP OUT LO HI NEW_OWNER
//       The rebalance map step: reassign the key range [LO, HI] to shard
//       NEW_OWNER, splitting any range it bites into, and bump the version
//       by one. The input MAP is untouched; cut over by distributing OUT.
//
//   siren_shard check MAP
//       Parse + validate MAP and print a per-shard summary. Exit 2 when
//       the file violates an invariant (gap, overlap, missing leader...).
//
//   siren_shard owner MAP BLOCK_SIZE
//       Print the shard owning BLOCK_SIZE and the probe fan-out set (the
//       owners of the bs/2 - 2bs ladder) — the routing a ShardedClient
//       performs, answerable offline.
//
//   siren_shard export SEGMENTS_DIR EXPORT_DIR LO HI VERSION
//       The rebalance data step: replay every segment under SEGMENTS_DIR
//       and journal the observes whose block size lies in [LO, HI] into an
//       "obs-xfer<VERSION>-" stream under EXPORT_DIR, ready to ship to the
//       range's new owner over the replication machinery. Prints the
//       replay accounting. Converges under repetition — see
//       serve::export_range.
//
// Exit codes: 0 success, 1 usage, 2 runtime/validation failure.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "serve/partition_map.hpp"
#include "serve/rebalance.hpp"
#include "util/strings.hpp"

namespace {

namespace sv = siren::serve;

int usage() {
    std::fprintf(stderr,
                 "usage: siren_shard split OUT VERSION LEADERS [CUT...]\n"
                 "       siren_shard move MAP OUT LO HI NEW_OWNER\n"
                 "       siren_shard check MAP\n"
                 "       siren_shard owner MAP BLOCK_SIZE\n"
                 "       siren_shard export SEGMENTS_DIR EXPORT_DIR LO HI VERSION\n"
                 "       (LEADERS = HOST:PORT[,HOST:PORT...]; CUTs ascending,\n"
                 "        one fewer than leaders)\n");
    return 1;
}

bool parse_u64(const std::string& arg, unsigned long long& out) {
    return siren::util::parse_decimal(arg, out);
}

int split(const std::vector<std::string>& args) {
    if (args.size() < 3) return usage();
    unsigned long long version = 0;
    if (!parse_u64(args[1], version)) return usage();
    const auto leaders = sv::parse_replica_list(args[2]);
    if (args.size() != 3 + leaders.size() - 1) {
        std::fprintf(stderr, "siren_shard: %zu leaders need %zu cuts, got %zu\n",
                     leaders.size(), leaders.size() - 1, args.size() - 3);
        return usage();
    }
    std::vector<unsigned long long> cuts;
    for (std::size_t i = 3; i < args.size(); ++i) {
        unsigned long long cut = 0;
        if (!parse_u64(args[i], cut)) return usage();
        cuts.push_back(cut);
    }
    std::vector<sv::ShardInfo> shards;
    std::uint64_t lo = 0;
    for (std::size_t i = 0; i < leaders.size(); ++i) {
        sv::ShardInfo shard;
        shard.id = static_cast<std::uint32_t>(i);
        shard.leader = leaders[i];
        const std::uint64_t hi = i < cuts.size() ? cuts[i] - 1 : ~0ull;
        shard.ranges.push_back({lo, hi});
        lo = hi + 1;
        shards.push_back(std::move(shard));
    }
    const sv::PartitionMap map(version, std::move(shards));
    sv::save_partition_map(map, args[0]);
    std::printf("siren_shard: wrote %s (v%llu, %zu shards)\n", args[0].c_str(), version,
                map.shard_count());
    return 0;
}

int move_range(const std::vector<std::string>& args) {
    if (args.size() != 5) return usage();
    unsigned long long lo = 0, hi = 0, owner = 0;
    if (!parse_u64(args[2], lo) || !parse_u64(args[3], hi) || lo > hi ||
        !parse_u64(args[4], owner)) {
        return usage();
    }
    const auto old_map = sv::load_partition_map(args[0]);
    const auto new_owner = static_cast<std::uint32_t>(owner);
    if (old_map.shard(new_owner) == nullptr) {
        std::fprintf(stderr, "siren_shard: map has no shard %llu\n", owner);
        return 2;
    }
    std::vector<sv::ShardInfo> shards = old_map.shards();
    for (auto& shard : shards) {
        // Carve [lo, hi] out of every shard, keeping the pieces either side.
        std::vector<sv::KeyRange> kept;
        for (const auto& range : shard.ranges) {
            if (range.hi < lo || range.lo > hi) {
                kept.push_back(range);
                continue;
            }
            if (range.lo < lo) kept.push_back({range.lo, lo - 1});
            if (range.hi > hi) kept.push_back({hi + 1, range.hi});
        }
        if (shard.id == new_owner) kept.push_back({lo, hi});
        shard.ranges = std::move(kept);
    }
    const sv::PartitionMap map(old_map.version() + 1, std::move(shards));
    sv::save_partition_map(map, args[1]);
    std::printf("siren_shard: [%llu, %llu] -> shard %u, wrote %s (v%llu)\n", lo, hi,
                new_owner, args[1].c_str(),
                static_cast<unsigned long long>(map.version()));
    return 0;
}

int check(const std::vector<std::string>& args) {
    if (args.size() != 1) return usage();
    const auto map = sv::load_partition_map(args[0]);
    std::printf("partition map v%llu: %zu shards\n",
                static_cast<unsigned long long>(map.version()), map.shard_count());
    for (const auto& shard : map.shards()) {
        std::printf("  shard %u leader %s:%u followers %zu ranges", shard.id,
                    shard.leader.host.c_str(), shard.leader.port, shard.followers.size());
        for (const auto& range : shard.ranges) {
            std::printf(" [%llu, %llu]", static_cast<unsigned long long>(range.lo),
                        static_cast<unsigned long long>(range.hi));
        }
        std::printf("\n");
    }
    return 0;
}

int owner(const std::vector<std::string>& args) {
    if (args.size() != 2) return usage();
    unsigned long long block_size = 0;
    if (!parse_u64(args[1], block_size)) return usage();
    const auto map = sv::load_partition_map(args[0]);
    std::printf("owner %u fanout", map.owner_of(block_size));
    for (const auto shard : map.shards_for_probe(block_size)) std::printf(" %u", shard);
    std::printf("\n");
    return 0;
}

int export_segments(const std::vector<std::string>& args) {
    if (args.size() != 5) return usage();
    unsigned long long lo = 0, hi = 0, version = 0;
    if (!parse_u64(args[2], lo) || !parse_u64(args[3], hi) || lo > hi ||
        !parse_u64(args[4], version)) {
        return usage();
    }
    const auto stats = sv::export_range(args[0], args[1], lo, hi, version);
    std::printf("siren_shard: exported %llu records (%llu filtered, %llu crc failures) "
                "to %s/%sNNNNNN.seg\n",
                static_cast<unsigned long long>(stats.records - stats.filtered),
                static_cast<unsigned long long>(stats.filtered),
                static_cast<unsigned long long>(stats.crc_failures), args[1].c_str(),
                sv::transfer_prefix(version).c_str());
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    const std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "split") return split(args);
        if (command == "move") return move_range(args);
        if (command == "check") return check(args);
        if (command == "owner") return owner(args);
        if (command == "export") return export_segments(args);
        std::fprintf(stderr, "siren_shard: unknown command '%s'\n", command.c_str());
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_shard: %s\n", e.what());
        return 2;
    }
}
