// siren_registry — persistent software-recognition registry CLI.
//
//   siren_registry observe REGISTRY FILE [LABEL]
//       Fuzzy-hash FILE and record a sighting; creates REGISTRY when
//       missing. Prints the family the sighting landed in.
//   siren_registry match REGISTRY FILE
//       Query without recording. Prints family and score, or "unknown".
//   siren_registry list REGISTRY
//       Print the family inventory.
//
// Exit code: 0 on success (including "unknown" matches), 1 on usage
// errors, 2 on unreadable files or corrupt registries.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/error.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: siren_registry observe REGISTRY FILE [LABEL]\n"
                 "       siren_registry match   REGISTRY FILE\n"
                 "       siren_registry list    REGISTRY\n");
    return 1;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    return true;
}

/// Load the registry, tolerating a missing file (fresh registry).
siren::recognize::Registry load_registry(const std::string& path) {
    std::ifstream in(path);
    if (!in) return siren::recognize::Registry{};
    return siren::recognize::Registry::load(in);
}

int save_registry(const siren::recognize::Registry& reg, const std::string& path) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "siren_registry: cannot write %s\n", path.c_str());
        return 2;
    }
    reg.save(out);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) return usage();
    const std::string command = argv[1];
    const std::string registry_path = argv[2];

    try {
        if (command == "list") {
            if (argc != 3) return usage();
            const auto reg = load_registry(registry_path);
            std::printf("%-6s %-24s %10s %10s\n", "id", "name", "sightings", "exemplars");
            for (const auto& fam : reg.families()) {
                std::printf("%-6u %-24s %10llu %10zu\n", fam.id, fam.name.c_str(),
                            static_cast<unsigned long long>(fam.sightings), fam.exemplars);
            }
            return 0;
        }

        if (command != "observe" && command != "match") return usage();
        if ((command == "match" && argc != 4) ||
            (command == "observe" && argc != 4 && argc != 5)) {
            return usage();
        }

        std::vector<std::uint8_t> bytes;
        if (!read_file(argv[3], bytes)) {
            std::fprintf(stderr, "siren_registry: cannot read %s\n", argv[3]);
            return 2;
        }
        const auto digest = siren::fuzzy::fuzzy_hash(bytes);

        auto reg = load_registry(registry_path);
        if (command == "match") {
            const auto match = reg.best_match(digest);
            if (!match) {
                std::printf("unknown (no family above threshold)\n");
            } else {
                std::printf("%s (family %u, score %d)\n",
                            reg.family(match->family).name.c_str(), match->family,
                            match->best_score);
            }
            return 0;
        }

        const std::string label = argc == 5 ? argv[4] : "";
        const auto obs = reg.observe(digest, label);
        std::printf("%s -> family %u '%s' (score %d)%s\n", argv[3], obs.family,
                    reg.family(obs.family).name.c_str(), obs.best_score,
                    obs.new_family ? " [new family]" : "");
        return save_registry(reg, registry_path);
    } catch (const siren::util::ParseError& e) {
        std::fprintf(stderr, "siren_registry: corrupt registry %s: %s\n",
                     registry_path.c_str(), e.what());
        return 2;
    }
}
