// siren_chaos — seeded chaos campaign against an in-process recognition
// fleet (leader + replication source + followers): randomized failpoint
// activations and node kill-restarts interleaved with client operations,
// then a heal phase asserting the robustness invariants (docs/robustness.md):
//
//   * every client op succeeds or fails typed within the op deadline,
//   * the healed fleet converges to one Registry fingerprint,
//   * the leader checkpoint reloads into an identical registry.
//
//   siren_chaos --seed N [--ops N] [--followers N] [--no-failpoints]
//               [--no-kills] [--dir PATH]
//
// Failpoints require a -DSIREN_FAILPOINTS=ON build; without the hooks the
// campaign still runs its kill-restart schedule (and says so). The report
// (counters + PASS/FAIL) goes to stdout. Exit codes: 0 every invariant
// held, 1 a violation (the FAIL line names it), 2 usage errors.

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "serve/chaos.hpp"
#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: siren_chaos --seed N [--ops N] [--followers N]\n"
                 "                   [--no-failpoints] [--no-kills] [--dir PATH]\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    siren::serve::chaos::ChaosOptions options;
    bool seeded = false;
    std::string dir;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto long_value = [&](long& out) {
            if (i + 1 >= argc) return false;
            return siren::util::parse_decimal(argv[++i], out) && out >= 0;
        };
        long value = 0;
        if (arg == "--seed" && long_value(value)) {
            options.seed = static_cast<std::uint64_t>(value);
            seeded = true;
        } else if (arg == "--ops" && long_value(value) && value > 0) {
            options.ops = static_cast<std::size_t>(value);
        } else if (arg == "--followers" && long_value(value)) {
            options.followers = static_cast<std::size_t>(value);
        } else if (arg == "--dir" && i + 1 < argc) {
            dir = argv[++i];
        } else if (arg == "--no-failpoints") {
            options.use_failpoints = false;
        } else if (arg == "--no-kills") {
            options.kill_restart = false;
        } else {
            std::fprintf(stderr, "siren_chaos: bad argument '%s'\n", arg.c_str());
            return usage();
        }
    }
    if (!seeded) return usage();

    if (options.use_failpoints && !siren::util::failpoint::compiled_in()) {
        std::printf("note: failpoints not compiled in (build with -DSIREN_FAILPOINTS=ON); "
                    "running the kill-restart schedule only\n");
    }

    const bool scratch = dir.empty();
    if (scratch) {
        dir = (std::filesystem::temp_directory_path() /
               ("siren_chaos_" + std::to_string(::getpid()) + "_" +
                std::to_string(options.seed)))
                  .string();
    }
    options.root = dir;

    std::printf("seed %llu ops %zu followers %zu dir %s\n",
                static_cast<unsigned long long>(options.seed), options.ops,
                options.followers, dir.c_str());
    const auto report = siren::serve::chaos::run_chaos(options);
    std::printf("%s", siren::serve::chaos::format_report(report).c_str());

    if (scratch && report.ok()) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);  // keep the dir on failure for forensics
    } else if (!report.ok()) {
        std::printf("state kept in %s\n", dir.c_str());
    }
    return report.ok() ? 0 : 1;
}
