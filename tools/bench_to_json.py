#!/usr/bin/env python3
"""Condense google-benchmark JSON output into a flat perf-trajectory record.

Usage:
    bench_perf_pipeline --benchmark_format=json --benchmark_out=raw.json
    tools/bench_to_json.py raw.json -o BENCH_pipeline.json

The cmake target `bench-pipeline-json` runs both steps and writes
BENCH_pipeline.json into the build directory. The output maps benchmark name
to its timings so successive runs diff cleanly:

    {
      "context": {"date": "...", "num_cpus": 16, ...},
      "benchmarks": {
        "BM_Decode":     {"real_time_ns": 410.2, "cpu_time_ns": 410.0, ...},
        "BM_DecodeView": {"real_time_ns": 130.8, ...}
      },
      "ratios": {"decode_view_speedup": 3.14}
    }

`ratios` carries the headline numbers the perf trajectory tracks; unknown or
missing benchmarks simply omit their ratio. Only the Python standard library
is used.
"""

import argparse
import json
import sys


def condense(raw: dict) -> dict:
    context = raw.get("context", {})
    out = {
        "context": {
            "date": context.get("date"),
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "build_type": context.get("library_build_type"),
        },
        "benchmarks": {},
        "ratios": {},
    }

    median_of = set()
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            # With --benchmark_repetitions, prefer the median aggregate: a
            # noisy shared box can skew any single repetition by 20%+.
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
            median_of.add(name)
        else:
            name = bench["name"]
            if name in median_of:
                continue  # the median already represents this benchmark
        entry = {
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "iterations": bench.get("iterations"),
        }
        for counter in ("items_per_second", "bytes_per_second", "allocs_per_op",
                        "content_top1_rate", "fused_top1_rate",
                        "fused_identify_overhead", "publish_cost_per_record",
                        "snapshot_shared_fraction", "sharded_topn_parity"):
            if counter in bench:
                entry[counter] = bench[counter]
        out["benchmarks"][name] = entry

    def ratio(slow: str, fast: str, key: str = "real_time_ns"):
        a = out["benchmarks"].get(slow, {}).get(key)
        b = out["benchmarks"].get(fast, {}).get(key)
        if a and b and b > 0:
            return round(a / b, 3)
        return None

    for key, slow, fast in (
        ("decode_view_speedup", "BM_Decode", "BM_DecodeView"),
        ("encode_into_speedup", "BM_Encode", "BM_EncodeInto"),
        ("collect_consolidate_view_speedup", "BM_CollectConsolidate",
         "BM_CollectConsolidateView"),
        ("prepared_compare_speedup", "BM_FuzzyCompareLegacy", "BM_FuzzyComparePrepared"),
        ("similarity_search_speedup_1k", "BM_SimilaritySearchBrute/1000",
         "BM_SimilaritySearch/1000"),
        ("similarity_search_speedup_10k", "BM_SimilaritySearchBrute/10000",
         "BM_SimilaritySearch/10000"),
        ("similarity_search_speedup_100k", "BM_SimilaritySearchBrute/100000",
         "BM_SimilaritySearch/100000"),
        ("simd_scan_speedup_10k", "BM_SimilaritySearchScalar/10000",
         "BM_SimilaritySearch/10000"),
        ("simd_scan_speedup_100k", "BM_SimilaritySearchScalar/100000",
         "BM_SimilaritySearch/100000"),
    ):
        value = ratio(slow, fast)
        if value is not None:
            out["ratios"][key] = value

    # Serving layer: identify under concurrent writes vs idle. Compared on
    # CPU time — on a single-core box wall-clock measures kernel time
    # slicing between the reader and the writer thread, not the snapshot
    # scheme; per-query CPU cost is the property the swap design pins.
    for key, under, base in (
        ("serve_write_interference_1k", "BM_ServeIdentifyUnderWrites/1000",
         "BM_ServeIdentify/1000"),
        ("serve_write_interference_10k", "BM_ServeIdentifyUnderWrites/10000",
         "BM_ServeIdentify/10000"),
    ):
        value = ratio(under, base, key="cpu_time_ns")
        if value is not None:
            out["ratios"][key] = value
    value = ratio("BM_ServeIdentifyTcp", "BM_ServeIdentify/10000")
    if value is not None:
        out["ratios"]["serve_tcp_overhead"] = value

    # O(delta) publication: per-record cost of an apply-and-publish batch at
    # 100k families over the same at 10k. Structural sharing makes the
    # publish copy proportional to the touched delta, so this stays ~1x
    # regardless of registry size (a full-copy publish scales with the
    # registry and measured ~10x). CI gates this < 2.0.
    value = ratio("BM_ServePublishDelta/100000/iterations:50",
                  "BM_ServePublishDelta/10000/iterations:50",
                  key="publish_cost_per_record")
    if value is not None:
        out["ratios"]["publish_delta_flatness"] = value

    # Coalescing: concurrent singleton IDENTIFY throughput with the
    # micro-batcher on, relative to the inline-execution baseline and to
    # the explicit 64-probe IDENTIFYB ceiling. items/s is the honest
    # metric here — the benches are multi-connection and real-time based.
    def items_ratio(numer: str, denom: str):
        a = out["benchmarks"].get(numer, {}).get("items_per_second")
        b = out["benchmarks"].get(denom, {}).get("items_per_second")
        if a and b and b > 0:
            return round(a / b, 3)
        return None

    value = items_ratio("BM_ServeIdentifyTcpCoalesced/real_time/threads:4",
                        "BM_ServeIdentifyTcpConcurrent/real_time/threads:4")
    if value is not None:
        out["ratios"]["identify_singleton_coalesced_vs_uncoalesced"] = value
    value = items_ratio("BM_ServeIdentifyTcpCoalesced/real_time/threads:4",
                        "BM_ServeIdentifyManyTcp/real_time")
    if value is not None:
        out["ratios"]["identify_singleton_coalesced_vs_batch"] = value

    # Replication: follower catch-up wall time over the leader's local
    # write wall time for the same corpus. Near 1x means shipping the log
    # keeps pace with writing it — the precondition for a follower ever
    # converging under sustained ingest. CI gates this loudly (< 10x).
    value = ratio("BM_ReplicationCatchup/20000", "BM_SegmentWriteLocal/20000")
    if value is not None:
        out["ratios"]["replication_catchup_lag"] = value

    # Behavioral channel. The gated ratio comes from the interleaved
    # benchmark's counter — content-only and fused identify are timed in
    # the same loop, so frequency drift between separately-run benchmarks
    # cancels out. CI gates fused_identify_overhead <= 1.25 (fused QPS no
    # worse than 0.8x content-only). behavior_identify_overhead is the
    # informational cross-benchmark ratio.
    value = (out["benchmarks"].get("BM_FusedIdentifyOverhead", {})
             .get("fused_identify_overhead"))
    if value is not None:
        out["ratios"]["fused_identify_overhead"] = round(value, 3)
    value = ratio("BM_BehaviorIdentify", "BM_ContentIdentifyBaseline",
                  key="cpu_time_ns")
    if value is not None:
        out["ratios"]["behavior_identify_overhead"] = value

    # Sharding: aggregate observe throughput of the 3-shard partitioned
    # fleet over the single-shard baseline on an identical corpus (shards
    # are measured serially; manual time is the worst shard, i.e. the
    # one-box-per-shard wall clock). CI gates >= 2.2x — partitioning must
    # buy real write scale-out — and sharded_topn_parity == 1, the
    # cross-shard TOPN merge staying bit-identical to one registry.
    value = items_ratio("BM_ShardedObserve/3/manual_time",
                        "BM_ShardedObserve/1/manual_time")
    if value is not None:
        out["ratios"]["sharded_observe_scaling"] = value
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", help="google-benchmark JSON file ('-' for stdin)")
    parser.add_argument("-o", "--output", help="output path (default: stdout)")
    parser.add_argument(
        "--require", action="append", default=[], metavar="BENCHMARK",
        help="fail unless this benchmark appears in the input (repeatable; "
        "a comma-separated list is also accepted). Use this in CI so a "
        "renamed or filtered-out benchmark is a loud, named error instead "
        "of a silently missing ratio.")
    args = parser.parse_args()

    try:
        if args.input == "-":
            raw = json.load(sys.stdin)
        else:
            with open(args.input, encoding="utf-8") as f:
                raw = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_to_json: cannot read {args.input}: {err}", file=sys.stderr)
        return 1

    condensed = condense(raw)

    required = [name for spec in args.require for name in spec.split(",") if name]
    missing = [name for name in required if name not in condensed["benchmarks"]]
    if missing:
        have = ", ".join(sorted(condensed["benchmarks"])) or "(none)"
        for name in missing:
            print(f"bench_to_json: required benchmark '{name}' is missing from "
                  f"{args.input}", file=sys.stderr)
        print(f"bench_to_json: benchmarks present: {have}", file=sys.stderr)
        return 1

    text = json.dumps(condensed, indent=2, sort_keys=True) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
