// siren_receiver — the standalone message receiver (the paper's Go server,
// as a C++ CLI): listens for SIREN UDP datagrams, stores raw messages,
// and writes the database to disk on shutdown.
//
//   siren_receiver PORT OUTPUT_DIR [SECONDS]
//
// Runs for SECONDS (default: until SIGINT/SIGTERM), then persists
// OUTPUT_DIR/messages.tsv. Pair it with the LD_PRELOAD collector:
//
//   siren_receiver 9742 /tmp/siren-db &
//   SIREN_PORT=9742 LD_PRELOAD=.../libsiren_preload.so make -j

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <chrono>
#include <thread>

#include "db/message_store.hpp"
#include "net/udp.hpp"
#include "util/strings.hpp"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

int usage() {
    std::fprintf(stderr, "usage: siren_receiver PORT OUTPUT_DIR [SECONDS]\n");
    return 1;
}

/// Strict numeric parse: see util::parse_decimal.
bool parse_number(const char* arg, long& out) { return siren::util::parse_decimal(arg, out); }

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3 || argc > 4) return usage();
    long port_value = 0;
    if (!parse_number(argv[1], port_value) || port_value > 65535) {
        std::fprintf(stderr, "siren_receiver: bad port '%s'\n", argv[1]);
        return usage();
    }
    const auto port = static_cast<std::uint16_t>(port_value);
    const std::string out_dir = argv[2];
    long run_seconds = 0;
    if (argc > 3 && !parse_number(argv[3], run_seconds)) {
        std::fprintf(stderr, "siren_receiver: bad SECONDS '%s'\n", argv[3]);
        return usage();
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    siren::db::Database db;
    siren::net::MessageQueue queue(1 << 18);

    try {
        siren::net::UdpReceiver receiver(queue, port);
        siren::db::ReceiverService service(queue, db, /*workers=*/2);
        std::printf("siren_receiver: listening on udp://127.0.0.1:%u, writing to %s\n",
                    receiver.port(), out_dir.c_str());

        const auto start = std::chrono::steady_clock::now();
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
            if (run_seconds > 0 &&
                std::chrono::steady_clock::now() - start > std::chrono::seconds(run_seconds)) {
                break;
            }
        }
        receiver.stop();
        queue.close();
        service.finish();
        std::printf("siren_receiver: stored %llu messages (%llu dropped at the queue)\n",
                    static_cast<unsigned long long>(service.inserted()),
                    static_cast<unsigned long long>(queue.dropped()));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_receiver: %s\n", e.what());
        return 2;
    }

    db.save(out_dir);
    std::printf("siren_receiver: database written to %s\n", out_dir.c_str());
    return 0;
}
