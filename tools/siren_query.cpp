// siren_query — post-processing and analysis over a stored message
// database (what the paper's Python scripts do, as a C++ CLI).
//
//   siren_query DB_DIR                print the usage tables
//   siren_query DB_DIR --markdown     full Markdown report (incl. security scan)
//   siren_query DB_DIR --records      dump consolidated per-process records

#include <cstdio>
#include <cstring>
#include <string>

#include "analytics/aggregate.hpp"
#include "analytics/report.hpp"
#include "analytics/tables.hpp"
#include "consolidate/consolidator.hpp"
#include "db/message_store.hpp"

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: siren_query DB_DIR [--markdown|--records]\n");
        return 1;
    }
    const std::string mode = argc > 2 ? argv[2] : "";

    try {
        const auto db = siren::db::Database::load(argv[1]);
        const auto consolidated = siren::consolidate::consolidate(db);

        if (mode == "--records") {
            for (const auto& r : consolidated.records) {
                std::printf("%llu/%u pid=%lld host=%s exe=%s category=%s%s\n",
                            static_cast<unsigned long long>(r.job_id), r.step_id,
                            static_cast<long long>(r.pid), r.host.c_str(), r.exe_path.c_str(),
                            std::string(to_string(r.category)).c_str(),
                            r.has_missing_fields() ? " [missing fields]" : "");
            }
            return 0;
        }

        siren::analytics::Aggregates agg;
        for (const auto& r : consolidated.records) agg.add(r);

        if (mode == "--markdown") {
            std::printf("%s", siren::analytics::campaign_report_markdown(agg).c_str());
            return 0;
        }

        std::printf("== users/jobs/processes ==\n%s\n",
                    siren::analytics::table2_users(agg).render().c_str());
        std::printf("== system executables ==\n%s\n",
                    siren::analytics::table3_system_execs(agg).render().c_str());
        std::printf("== derived software labels ==\n%s\n",
                    siren::analytics::table5_user_labels(agg).render().c_str());
        std::printf("== python interpreters ==\n%s\n",
                    siren::analytics::table8_python(agg).render().c_str());
        std::printf("jobs with missing fields: %zu of %zu\n",
                    agg.jobs_with_missing_fields.size(), agg.all_jobs.size());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_query: %s\n", e.what());
        return 2;
    }
    return 0;
}
