// siren_query — post-processing and analysis over a stored message
// database (what the paper's Python scripts do, as a C++ CLI), plus the
// client face of the live recognition service.
//
//   siren_query DB_DIR                print the usage tables
//   siren_query DB_DIR --markdown     full Markdown report (incl. security scan)
//   siren_query DB_DIR --records      dump consolidated per-process records
//
//   siren_query --identify REPLICAS DIGEST...
//                                     ask a running siren_recognized which
//                                     family each digest belongs to
//   siren_query --identify-file REPLICAS FILE
//                                     batch identify: one digest per line
//                                     (blank lines and #-comments skipped),
//                                     sent as a single identify_many round
//                                     trip
//   siren_query --observe REPLICAS DIGEST [LABEL]
//                                     record a sighting (optionally labeled)
//   siren_query --identify-ts REPLICAS DIGEST
//                                     behavior-channel identify: DIGEST is a
//                                     shapelet digest of a runtime counter
//                                     trace (docs/behavior_fingerprints.md)
//   siren_query --observe-ts REPLICAS DIGEST [LABEL]
//                                     record a behavioral sighting
//   siren_query --identify2 REPLICAS CONTENT_DIGEST BEHAVIOR_DIGEST [K]
//                                     fused identification over both
//                                     channels ("-" skips a channel)
//   siren_query --topn REPLICAS DIGEST K
//                                     ranked candidate families for a digest
//   siren_query --serve-stats REPLICAS
//                                     service counters
//   siren_query --serve-checkpoint REPLICAS
//                                     force a registry checkpoint
//   siren_query --partmap REPLICAS
//                                     fetch a partitioned shard's map
//   siren_query --fprange REPLICAS LO HI
//                                     registry fingerprint over the
//                                     block-size range [LO, HI] (the
//                                     rebalance convergence check)
//   siren_query --sharded-observe MAPFILE DIGEST [LABEL]
//                                     route a sighting to its owner shard
//                                     through a serve::PartitionMap file
//   siren_query --sharded-identify2 MAPFILE CONTENT BEHAVIOR [K]
//                                     fused identify fanned across the
//                                     probe ladder's owner shards with
//                                     client-side TOPN merge ("-" skips)
//
// REPLICAS is "HOST:PORT" or a comma-separated list of them (a leader and
// its followers): reads round-robin across the list and fail over on a
// dead replica; --observe seeks the leader, skipping read-only followers
// (see docs/replication.md). MAPFILE is a serialized serve::PartitionMap
// (docs/sharding.md); the sharded modes self-refresh it over the wire on
// `wrong_shard` redirects.
//
// Exit codes: 0 success (including "unknown" identifications), 1 usage
// errors (any unrecognized flag is rejected, not ignored), 2 runtime
// failures (unreadable DB, unreachable service).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/report.hpp"
#include "analytics/tables.hpp"
#include "consolidate/consolidator.hpp"
#include "db/message_store.hpp"
#include "serve/replica_client.hpp"
#include "serve/sharded_client.hpp"
#include "util/strings.hpp"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: siren_query DB_DIR [--markdown|--records]\n"
                 "       siren_query --identify REPLICAS DIGEST...\n"
                 "       siren_query --identify-file REPLICAS FILE\n"
                 "       siren_query --observe REPLICAS DIGEST [LABEL]\n"
                 "       siren_query --identify-ts REPLICAS DIGEST\n"
                 "       siren_query --observe-ts REPLICAS DIGEST [LABEL]\n"
                 "       siren_query --identify2 REPLICAS CONTENT BEHAVIOR [K] ('-' skips)\n"
                 "       siren_query --topn REPLICAS DIGEST K\n"
                 "       siren_query --serve-stats REPLICAS\n"
                 "       siren_query --serve-checkpoint REPLICAS\n"
                 "       siren_query --partmap REPLICAS\n"
                 "       siren_query --fprange REPLICAS LO HI\n"
                 "       siren_query --sharded-observe MAPFILE DIGEST [LABEL]\n"
                 "       siren_query --sharded-identify2 MAPFILE CONTENT BEHAVIOR [K]\n"
                 "       (REPLICAS = HOST:PORT[,HOST:PORT...])\n");
    return 1;
}

int serve_mode(const std::string& mode, const std::vector<std::string>& args) {
    if (args.empty()) return usage();
    std::vector<siren::serve::ReplicaEndpoint> replicas;
    try {
        replicas = siren::serve::parse_replica_list(args[0]);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_query: %s\n", e.what());
        return 1;
    }

    try {
        siren::serve::ReplicaClient client(std::move(replicas));

        if (mode == "--identify") {
            if (args.size() < 2) return usage();
            const std::vector<std::string> digests(args.begin() + 1, args.end());
            const auto matches = client.identify_many(digests);
            for (std::size_t i = 0; i < digests.size(); ++i) {
                if (matches[i]) {
                    std::printf("%s -> %s (family %u, score %d)\n", digests[i].c_str(),
                                matches[i]->name.c_str(), matches[i]->family,
                                matches[i]->score);
                } else {
                    std::printf("%s -> unknown\n", digests[i].c_str());
                }
            }
            return 0;
        }
        if (mode == "--identify-file") {
            if (args.size() != 2) return usage();
            std::ifstream in(args[1]);
            if (!in) {
                std::fprintf(stderr, "siren_query: cannot read '%s'\n", args[1].c_str());
                return 2;
            }
            std::vector<std::string> digests;
            std::string line;
            while (std::getline(in, line)) {
                const auto digest = siren::util::trim(line);
                if (digest.empty() || digest.front() == '#') continue;
                digests.emplace_back(digest);
            }
            if (digests.empty()) {
                std::fprintf(stderr, "siren_query: '%s' holds no digests\n", args[1].c_str());
                return 2;
            }
            const auto matches = client.identify_many(digests);
            for (std::size_t i = 0; i < digests.size(); ++i) {
                if (matches[i]) {
                    std::printf("%s -> %s (family %u, score %d)\n", digests[i].c_str(),
                                matches[i]->name.c_str(), matches[i]->family,
                                matches[i]->score);
                } else {
                    std::printf("%s -> unknown\n", digests[i].c_str());
                }
            }
            return 0;
        }
        if (mode == "--observe") {
            if (args.size() < 2 || args.size() > 3) return usage();
            const auto result =
                client.observe(args[1], args.size() == 3 ? args[2] : std::string());
            std::printf("%s -> family %u '%s' (score %d)%s\n", args[1].c_str(), result.family,
                        result.name.c_str(), result.score,
                        result.new_family ? " [new family]" : "");
            return 0;
        }
        if (mode == "--identify-ts") {
            if (args.size() != 2) return usage();
            const auto match = client.identify_behavior(args[1]);
            if (match) {
                std::printf("%s -> %s (family %u, score %d)\n", args[1].c_str(),
                            match->name.c_str(), match->family, match->score);
            } else {
                std::printf("%s -> unknown\n", args[1].c_str());
            }
            return 0;
        }
        if (mode == "--observe-ts") {
            if (args.size() < 2 || args.size() > 3) return usage();
            const auto result =
                client.observe_behavior(args[1], args.size() == 3 ? args[2] : std::string());
            std::printf("%s -> family %u '%s' (score %d)%s\n", args[1].c_str(), result.family,
                        result.name.c_str(), result.score,
                        result.new_family ? " [new family]" : "");
            return 0;
        }
        if (mode == "--identify2") {
            if (args.size() < 3 || args.size() > 4) return usage();
            const std::string content = args[1] == "-" ? std::string() : args[1];
            const std::string behavior = args[2] == "-" ? std::string() : args[2];
            if (content.empty() && behavior.empty()) return usage();
            long k = 5;
            if (args.size() == 4 && (!siren::util::parse_decimal(args[3], k) || k <= 0)) {
                return usage();
            }
            const auto matches =
                client.identify_fused(content, behavior, static_cast<std::size_t>(k));
            if (matches.empty()) {
                std::printf("unknown (no family above threshold on either channel)\n");
                return 0;
            }
            for (const auto& match : matches) {
                std::printf("%-24s family %-6u fused %-3d content %-3d behavior %d\n",
                            match.name.c_str(), match.family, match.score,
                            match.content_score, match.behavior_score);
            }
            return 0;
        }
        if (mode == "--topn") {
            if (args.size() != 3) return usage();
            long k = 0;
            if (!siren::util::parse_decimal(args[2], k) || k <= 0) return usage();
            const auto matches = client.top_n(args[1], static_cast<std::size_t>(k));
            if (matches.empty()) {
                std::printf("unknown (no family above threshold)\n");
                return 0;
            }
            for (const auto& match : matches) {
                std::printf("%-24s family %-6u score %d\n", match.name.c_str(), match.family,
                            match.score);
            }
            return 0;
        }
        if (mode == "--serve-stats") {
            if (args.size() != 1) return usage();
            std::printf("%s", client.stats_text().c_str());
            return 0;
        }
        if (mode == "--serve-checkpoint") {
            if (args.size() != 1) return usage();
            std::printf("checkpoint written: %s\n", client.checkpoint().c_str());
            return 0;
        }
        if (mode == "--partmap") {
            if (args.size() != 1) return usage();
            std::printf("%s", client.partition_map_text().c_str());
            return 0;
        }
        if (mode == "--fprange") {
            if (args.size() != 3) return usage();
            unsigned long long lo = 0, hi = 0;
            if (!siren::util::parse_decimal(args[1], lo) ||
                !siren::util::parse_decimal(args[2], hi) || lo > hi) {
                return usage();
            }
            std::printf("fingerprint_range %llu %llu %llu\n", lo, hi,
                        static_cast<unsigned long long>(client.fingerprint_range(lo, hi)));
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_query: %s\n", e.what());
        return 2;
    }
}

/// Modes routed through a PartitionMap file and a ShardedClient rather
/// than a single replica list.
int sharded_mode(const std::string& mode, const std::vector<std::string>& args) {
    if (args.empty()) return usage();
    try {
        siren::serve::ShardedClient client(siren::serve::load_partition_map(args[0]));

        if (mode == "--sharded-observe") {
            if (args.size() < 2 || args.size() > 3) return usage();
            const auto result =
                client.observe(args[1], args.size() == 3 ? args[2] : std::string());
            std::printf("%s -> family %u '%s' (score %d)%s\n", args[1].c_str(), result.family,
                        result.name.c_str(), result.score,
                        result.new_family ? " [new family]" : "");
            if (client.redirects_followed() > 0) {
                std::printf("(followed %llu wrong_shard redirect%s; map now v%llu)\n",
                            static_cast<unsigned long long>(client.redirects_followed()),
                            client.redirects_followed() == 1 ? "" : "s",
                            static_cast<unsigned long long>(client.map().version()));
            }
            return 0;
        }
        if (mode == "--sharded-identify2") {
            if (args.size() < 3 || args.size() > 4) return usage();
            siren::serve::Probe probe;
            probe.content = args[1] == "-" ? std::string() : args[1];
            probe.behavior = args[2] == "-" ? std::string() : args[2];
            if (probe.content.empty() && probe.behavior.empty()) return usage();
            long k = 5;
            if (args.size() == 4 && (!siren::util::parse_decimal(args[3], k) || k <= 0)) {
                return usage();
            }
            probe.k = static_cast<std::size_t>(k);
            const auto matches = client.identify(probe);
            if (matches.empty()) {
                std::printf("unknown (no family above threshold on either channel)\n");
                return 0;
            }
            for (const auto& match : matches) {
                std::printf("%-24s family %-6u fused %-3d content %-3d behavior %d\n",
                            match.name.c_str(), match.family, match.score,
                            match.content_score, match.behavior_score);
            }
            return 0;
        }
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_query: %s\n", e.what());
        return 2;
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string first = argv[1];

    if (first.starts_with("--")) {
        // Service-client modes take the flag first; anything else that
        // looks like a flag is an error, not a silent fall-through.
        static const char* kServeModes[] = {"--identify",    "--identify-file",
                                            "--observe",     "--identify-ts",
                                            "--observe-ts",  "--identify2",
                                            "--topn",        "--serve-stats",
                                            "--serve-checkpoint", "--partmap",
                                            "--fprange"};
        for (const char* mode : kServeModes) {
            if (first == mode) {
                return serve_mode(first, std::vector<std::string>(argv + 2, argv + argc));
            }
        }
        if (first == "--sharded-observe" || first == "--sharded-identify2") {
            return sharded_mode(first, std::vector<std::string>(argv + 2, argv + argc));
        }
        std::fprintf(stderr, "siren_query: unknown option '%s'\n", first.c_str());
        return usage();
    }

    const std::string mode = argc > 2 ? argv[2] : "";
    if (argc > 3 || (argc == 3 && mode != "--markdown" && mode != "--records")) {
        if (!mode.empty() && mode != "--markdown" && mode != "--records") {
            std::fprintf(stderr, "siren_query: unknown option '%s'\n", mode.c_str());
        }
        return usage();
    }

    try {
        const auto db = siren::db::Database::load(argv[1]);
        const auto consolidated = siren::consolidate::consolidate(db);

        if (mode == "--records") {
            for (const auto& r : consolidated.records) {
                std::printf("%llu/%u pid=%lld host=%s exe=%s category=%s%s\n",
                            static_cast<unsigned long long>(r.job_id), r.step_id,
                            static_cast<long long>(r.pid), r.host.c_str(), r.exe_path.c_str(),
                            std::string(to_string(r.category)).c_str(),
                            r.has_missing_fields() ? " [missing fields]" : "");
            }
            return 0;
        }

        siren::analytics::Aggregates agg;
        for (const auto& r : consolidated.records) agg.add(r);

        if (mode == "--markdown") {
            std::printf("%s", siren::analytics::campaign_report_markdown(agg).c_str());
            return 0;
        }

        std::printf("== users/jobs/processes ==\n%s\n",
                    siren::analytics::table2_users(agg).render().c_str());
        std::printf("== system executables ==\n%s\n",
                    siren::analytics::table3_system_execs(agg).render().c_str());
        std::printf("== derived software labels ==\n%s\n",
                    siren::analytics::table5_user_labels(agg).render().c_str());
        std::printf("== python interpreters ==\n%s\n",
                    siren::analytics::table8_python(agg).render().c_str());
        std::printf("jobs with missing fields: %zu of %zu\n",
                    agg.jobs_with_missing_fields.size(), agg.all_jobs.size());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "siren_query: %s\n", e.what());
        return 2;
    }
    return 0;
}
