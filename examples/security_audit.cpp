// Security audit over collected campaign data — the paper's §4.4 concern
// and §6 future-work item made operational.
//
//   $ ./examples/security_audit
//
// Runs a campaign, then scans the imported Python packages recorded by
// SIREN against (a) an advisory database of known-insecure packages
// (the safety-db flow the paper cites) and (b) a known-package registry to
// flag slopsquatting suspects: imports that exist in no registry and sit
// within typo distance of a popular name — the LLM-hallucinated-dependency
// attack the paper describes.

#include <cstdio>

#include "analytics/security.hpp"
#include "core/siren.hpp"
#include "util/table.hpp"

int main() {
    // Start from the mini campaign and add one user whose scripts carry the
    // risky import profile the paper worries about: an advisory-listed
    // package (pickle on untrusted data), a native-code loader (ctypes),
    // a PyPI typosquat ('request'), and a name no registry has ever seen —
    // the signature of an LLM-hallucinated dependency.
    auto spec = siren::workload::mini_campaign();
    {
        siren::workload::PythonSpec risky;
        risky.interpreter_path = "/usr/bin/python3.11";
        risky.objects = {"/usr/lib64/libpython3.11.so.1.0", "/lib64/libc.so.6"};
        risky.groups = {{"user_4", 3, 12, 4,
                         {"numpy", "pickle", "ctypes", "request", "torch_tensor_utils"}}};
        spec.python.push_back(std::move(risky));
    }

    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.seed = 7;
    const auto result = run_campaign(spec, options);
    std::printf("campaign: %llu jobs, %llu processes\n\n",
                static_cast<unsigned long long>(result.totals.jobs),
                static_cast<unsigned long long>(result.totals.processes));

    const auto scanner = siren::analytics::SecurityScanner::with_defaults();
    const auto findings = scanner.scan(result.aggregates);

    if (findings.empty()) {
        std::printf("no findings: every imported package is registered and unflagged\n");
        return 0;
    }

    siren::util::TextTable t(
        {"Severity", "Kind", "Package", "Users", "Jobs", "Processes", "Detail"});
    for (const auto& f : findings) {
        t.add_row({std::string(siren::analytics::to_string(f.severity)), f.kind, f.package,
                   std::to_string(f.users), std::to_string(f.jobs),
                   std::to_string(f.processes), f.detail});
    }
    std::printf("%zu findings over imported Python packages:\n%s\n", findings.size(),
                t.render().c_str());
    std::printf(
        "Operators triage top-down: advisories name the CVE-class problem,\n"
        "slopsquat suspects are packages nobody published — exactly what a\n"
        "hallucinated dependency looks like from the process level.\n");
    return 0;
}
