// Live capture with the real LD_PRELOAD collector.
//
//   $ ./examples/live_capture [path/to/libsiren_preload.so] [command...]
//
// Starts the UDP receiver, runs `command` (default: /bin/ls /) with
// libsiren_preload.so injected, and prints the consolidated record of what
// the hooked process reported — SIREN's actual deployment mechanism on a
// single machine.

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "consolidate/consolidator.hpp"
#include "net/channel.hpp"
#include "net/udp.hpp"

int main(int argc, char** argv) {
    const std::string preload = argc > 1 ? argv[1] : "src/preload/libsiren_preload.so";

    siren::net::MessageQueue queue(8192);
    siren::net::UdpReceiver receiver(queue, 0);
    std::printf("receiver listening on udp://127.0.0.1:%u\n", receiver.port());

    const pid_t pid = ::fork();
    if (pid < 0) {
        std::perror("fork");
        return 1;
    }
    if (pid == 0) {
        ::setenv("LD_PRELOAD", preload.c_str(), 1);
        ::setenv("SIREN_PORT", std::to_string(receiver.port()).c_str(), 1);
        ::setenv("SLURM_JOB_ID", "20240001", 1);
        ::setenv("SLURM_PROCID", "0", 1);
        if (argc > 2) {
            ::execvp(argv[2], argv + 2);
        } else {
            ::execl("/bin/ls", "ls", "/", static_cast<char*>(nullptr));
        }
        ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    receiver.stop();

    std::vector<siren::net::Message> messages;
    while (auto m = queue.pop()) {
        messages.push_back(std::move(*m));
        if (queue.size() == 0) break;
    }
    std::printf("child exited %d; received %zu datagrams\n\n",
                WIFEXITED(status) ? WEXITSTATUS(status) : -1, messages.size());
    if (messages.empty()) {
        std::printf("no data received — is %s built? (cmake --build build)\n",
                    preload.c_str());
        return 1;
    }

    const auto consolidated = siren::consolidate::consolidate(messages);
    for (const auto& r : consolidated.records) {
        std::printf("process record:\n");
        std::printf("  exe      : %s\n", r.exe_path.c_str());
        std::printf("  category : %s\n", std::string(to_string(r.category)).c_str());
        std::printf("  job/pid  : %llu / %lld\n", static_cast<unsigned long long>(r.job_id),
                    static_cast<long long>(r.pid));
        std::printf("  host     : %s\n", r.host.c_str());
        if (r.exe_meta) {
            std::printf("  exe meta : %s\n", r.exe_meta->render().c_str());
        }
        std::printf("  modules  : %zu entries\n", r.modules.size());
        std::printf("  mapped   : %zu files\n", r.memmap_paths.size());
        if (!r.file_hash.empty()) std::printf("  FILE_H   : %s\n", r.file_hash.c_str());
        std::printf("\n");
    }
    return 0;
}
