// Identify an unknown application — the paper's §4.3 workflow end to end.
//
//   $ ./examples/identify_unknown
//
// Runs a small campaign in which a user executes `a.out` binaries with no
// identifying name. The regex labeler fails on them; the similarity search
// over six fuzzy-hash dimensions identifies them as icon builds.

#include <cstdio>

#include "core/siren.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace sa = siren::analytics;

int main() {
    siren::FrameworkOptions options;
    options.scale = 1.0;
    options.seed = 2024;
    const auto result = run_campaign(siren::workload::mini_campaign(), options);
    std::printf("campaign: %llu jobs, %llu processes, %llu datagrams\n\n",
                static_cast<unsigned long long>(result.totals.jobs),
                static_cast<unsigned long long>(result.totals.processes),
                static_cast<unsigned long long>(result.datagrams_sent));

    // Step 1: name-based labeling leaves the a.out binaries UNKNOWN.
    const auto labeler = sa::Labeler::default_rules();
    std::printf("user-directory executables by derived label:\n%s\n",
                sa::table5_user_labels(result.aggregates, labeler).render().c_str());

    // Step 2: pick the UNKNOWN probe and search.
    const auto* probe = sa::find_unknown_probe(result.aggregates, labeler);
    if (probe == nullptr) {
        std::printf("nothing unknown to identify\n");
        return 0;
    }
    std::printf("probe: %s\n\n", probe->exe_path.c_str());

    const auto hits = sa::similarity_search(*probe, result.aggregates, labeler, 5);
    siren::util::TextTable t(
        {"Label", "Executable", "Avg", "MO", "CO", "OB", "FI", "ST", "SY"});
    for (const auto& hit : hits) {
        t.add_row({hit.label, hit.exe_path, siren::util::fixed(hit.average, 1),
                   std::to_string(hit.scores.mo), std::to_string(hit.scores.co),
                   std::to_string(hit.scores.ob), std::to_string(hit.scores.fi),
                   std::to_string(hit.scores.st), std::to_string(hit.scores.sy)});
    }
    std::printf("%s\n", t.render().c_str());

    if (!hits.empty()) {
        std::printf("=> the unknown executable is most similar to '%s' (avg %.1f)\n",
                    hits[0].label.c_str(), hits[0].average);
    }
    return 0;
}
