// Software inventory through recognition — the title use case
// ("identification AND recognition") as an operator workflow.
//
//   $ ./examples/software_inventory
//
// Day 1: a fleet of user binaries (several software lineages, multiple
// rebuilt versions each) is observed and clustered; labeled sightings name
// their families. Day 2: new builds arrive — drifted versions of known
// software plus one genuinely new code — and the registry recognizes the
// known lineages without any file-name evidence, exactly the capability
// the paper motivates for nondescript `a.out` executables.

#include <cstdio>
#include <string>
#include <vector>

#include "fuzzy/fuzzy.hpp"
#include "recognize/recognize.hpp"
#include "util/table.hpp"
#include "workload/campaign.hpp"
#include "workload/synthesizer.hpp"

namespace {

siren::workload::BinaryRecipe recipe(const std::string& lineage, std::size_t version) {
    siren::workload::BinaryRecipe r;
    r.lineage = lineage;
    r.version = version;
    r.compilers = {siren::workload::compiler_comment_for("GCC [SUSE]")};
    r.needed = {"libc.so.6", "libm.so.6"};
    r.code_blocks = 20;
    return r;
}

siren::fuzzy::FuzzyDigest file_h(const std::string& lineage, std::size_t version) {
    return siren::fuzzy::fuzzy_hash(siren::workload::synthesize(recipe(lineage, version)));
}

}  // namespace

int main() {
    siren::recognize::Registry registry({.match_threshold = 55});

    // ---- Day 1: labeled sightings (file names were descriptive) --------
    struct Sighting {
        std::string lineage;
        std::size_t version;
        std::string label;  ///< empty = nondescript name (a.out)
    };
    const std::vector<Sighting> day1 = {
        {"gromacs", 0, "GROMACS"}, {"gromacs", 1, "GROMACS"},
        {"lammps", 0, "LAMMPS"},   {"lammps", 2, "LAMMPS"},
        {"icon", 0, ""},           // anonymous a.out — founds a nameless family
        {"icon", 1, "icon"},       // later labeled build names it
        {"amber", 0, "amber"},
    };
    std::printf("Day 1 — learning from %zu sightings:\n", day1.size());
    for (const auto& s : day1) {
        const auto obs = registry.observe(file_h(s.lineage, s.version), s.label);
        std::printf("  %-8s v%zu %-10s -> family %u (%s)%s\n", s.lineage.c_str(), s.version,
                    s.label.empty() ? "(a.out)" : s.label.c_str(), obs.family,
                    registry.family(obs.family).name.c_str(),
                    obs.new_family ? "  [new]" : "");
    }

    // ---- Day 2: nondescript new builds ---------------------------------
    const std::vector<Sighting> day2 = {
        {"gromacs", 3, ""},  // rebuilt GROMACS under a meaningless name
        {"icon", 2, ""},     // another icon build
        {"quantumx", 0, ""}, // genuinely new software
    };
    std::printf("\nDay 2 — recognizing anonymous builds:\n");
    for (const auto& s : day2) {
        const auto obs = registry.observe(file_h(s.lineage, s.version));
        std::printf("  anonymous build (really %s v%zu): %s '%s' (score %d)\n",
                    s.lineage.c_str(), s.version,
                    obs.new_family ? "NEW family" : "recognized as",
                    registry.family(obs.family).name.c_str(), obs.best_score);
    }

    // ---- Inventory ------------------------------------------------------
    std::printf("\nInventory (%zu families, %llu sightings):\n", registry.family_count(),
                static_cast<unsigned long long>(registry.total_sightings()));
    siren::util::TextTable t({"Family", "Name", "Sightings", "Exemplars"});
    for (const auto& fam : registry.families()) {
        t.add_row({std::to_string(fam.id), fam.name, std::to_string(fam.sightings),
                   std::to_string(fam.exemplars)});
    }
    std::printf("%s\n", t.render().c_str());

    // ---- Batch view: clustering the full corpus -------------------------
    std::vector<siren::fuzzy::FuzzyDigest> corpus;
    for (const auto& s : day1) corpus.push_back(file_h(s.lineage, s.version));
    for (const auto& s : day2) corpus.push_back(file_h(s.lineage, s.version));
    const auto clusters = siren::recognize::cluster_digests(corpus, {.threshold = 55});
    std::printf("batch clustering agrees: %zu clusters over %zu binaries\n", clusters.size(),
                corpus.size());
    return 0;
}
