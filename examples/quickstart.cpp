// Quickstart: the 60-second tour of the SIREN library.
//
//   $ ./examples/quickstart
//
// 1. Synthesize two builds of the same application (one a slightly newer
//    version) plus an unrelated tool.
// 2. Fuzzy-hash three views of each executable (raw bytes, printable
//    strings, global symbols) — the paper's FI_H / ST_H / SY_H.
// 3. Compare: related builds score high, unrelated binaries score 0, and
//    a cryptographic hash sees nothing at all.

#include <cstdio>

#include "elfio/elfio.hpp"
#include "fuzzy/fuzzy.hpp"
#include "hashing/sha256.hpp"
#include "workload/campaign.hpp"
#include "workload/synthesizer.hpp"

namespace se = siren::elfio;
namespace sf = siren::fuzzy;
namespace sw = siren::workload;

namespace {

struct Hashes {
    sf::FuzzyDigest file, strings, symbols;
};

Hashes hash_views(const std::vector<std::uint8_t>& bytes) {
    Hashes h;
    h.file = sf::fuzzy_hash(bytes);
    h.strings = sf::fuzzy_hash(se::strings_blob(se::printable_strings(bytes)));
    const se::Reader reader(bytes);
    h.symbols = sf::fuzzy_hash(se::strings_blob(reader.global_symbol_names()));
    return h;
}

}  // namespace

int main() {
    // Two builds of "mysim", four versions apart; plus an unrelated tool.
    sw::BinaryRecipe v1;
    v1.lineage = "mysim";
    v1.version = 0;
    v1.compilers = {sw::compiler_comment_for("GCC [SUSE]")};
    v1.version_tag = "1.0";

    sw::BinaryRecipe v2 = v1;
    v2.version = 4;
    v2.version_tag = "1.4";

    sw::BinaryRecipe other;
    other.lineage = "othertool";
    other.compilers = {sw::compiler_comment_for("clang [AMD]")};

    const auto bytes_v1 = sw::synthesize(v1);
    const auto bytes_v2 = sw::synthesize(v2);
    const auto bytes_other = sw::synthesize(other);

    std::printf("mysim v1.0 : %zu bytes, fuzzy = %s\n", bytes_v1.size(),
                sf::fuzzy_hash(bytes_v1).to_string().c_str());
    std::printf("mysim v1.4 : %zu bytes, fuzzy = %s\n", bytes_v2.size(),
                sf::fuzzy_hash(bytes_v2).to_string().c_str());
    std::printf("othertool  : %zu bytes, fuzzy = %s\n\n", bytes_other.size(),
                sf::fuzzy_hash(bytes_other).to_string().c_str());

    const Hashes a = hash_views(bytes_v1);
    const Hashes b = hash_views(bytes_v2);
    const Hashes c = hash_views(bytes_other);

    std::printf("similarity (0..100)        raw-file  strings  symbols\n");
    std::printf("mysim v1.0 vs mysim v1.4 : %8d %8d %8d\n", sf::compare(a.file, b.file),
                sf::compare(a.strings, b.strings), sf::compare(a.symbols, b.symbols));
    std::printf("mysim v1.0 vs othertool  : %8d %8d %8d\n\n", sf::compare(a.file, c.file),
                sf::compare(a.strings, c.strings), sf::compare(a.symbols, c.symbols));

    std::printf("sha256(v1.0) = %.16s...\n", siren::hash::Sha256::hex(
                                                 std::string(bytes_v1.begin(), bytes_v1.end()))
                                                 .c_str());
    std::printf("sha256(v1.4) = %.16s...  (avalanche: useless for similarity)\n",
                siren::hash::Sha256::hex(std::string(bytes_v2.begin(), bytes_v2.end())).c_str());
    return 0;
}
