// Full campaign report: run the paper's LUMI opt-in campaign and print
// every table and figure in one pass — the operator's "what ran on my
// system" report.
//
//   $ SIREN_SCALE=1.0 ./examples/campaign_report
//
// Optional: pass a directory argument to persist the raw-message database
// (database mode; use small scales).

#include <cstdio>

#include "core/siren.hpp"
#include "db/message_store.hpp"
#include "util/table.hpp"

namespace sa = siren::analytics;

int main(int argc, char** argv) {
    siren::FrameworkOptions options = siren::FrameworkOptions::from_env();
    if (argc > 1) {
        options.use_database = true;
        if (options.scale > 0.2) options.scale = 0.05;  // db mode keeps raw messages
    }

    const auto result = run_campaign(siren::workload::lumi_campaign(), options);
    std::printf("campaign: scale=%.3g, %llu jobs, %llu processes, %llu datagrams "
                "(%llu lost), %.2fs\n\n",
                options.scale, static_cast<unsigned long long>(result.totals.jobs),
                static_cast<unsigned long long>(result.totals.processes),
                static_cast<unsigned long long>(result.datagrams_sent),
                static_cast<unsigned long long>(result.datagrams_lost), result.wall_seconds);

    const auto section = [](const char* name) { std::printf("\n--- %s ---\n", name); };

    section("Table 2: users, jobs, processes");
    std::printf("%s", sa::table2_users(result.aggregates).render().c_str());

    section("Table 3: top system-directory executables");
    std::size_t total_execs = 0;
    std::printf("%s", sa::table3_system_execs(result.aggregates, 10, &total_execs).render().c_str());
    std::printf("(%zu distinct system executables)\n", total_execs);

    section("Table 4: bash shared-object variants");
    std::printf("%s", sa::table4_object_variants(result.aggregates).render().c_str());

    section("Table 5: derived labels for user applications");
    std::printf("%s", sa::table5_user_labels(result.aggregates).render().c_str());

    section("Table 6: compiler provenance combinations");
    std::printf("%s", sa::table6_compilers(result.aggregates).render().c_str());

    section("Table 8: Python interpreters");
    std::printf("%s", sa::table8_python(result.aggregates).render().c_str());

    section("Figure 2: library tags");
    std::printf("%s", sa::fig2_library_tags(result.aggregates).render().c_str());

    section("Figure 3: imported Python packages");
    std::printf("%s", sa::fig3_python_packages(result.aggregates).render().c_str());

    section("Figure 4: compiler matrix");
    std::printf("%s", sa::fig4_compiler_matrix(result.aggregates).render().c_str());

    section("Figure 5: library matrix (TSV)");
    std::printf("%s", sa::fig5_library_matrix(result.aggregates).render_tsv().c_str());

    section("UDP loss accounting");
    std::printf("records with missing fields: %llu; jobs affected: %zu of %zu (%.4f%%)\n",
                static_cast<unsigned long long>(result.aggregates.records_with_missing_fields),
                result.aggregates.jobs_with_missing_fields.size(),
                result.aggregates.all_jobs.size(),
                result.aggregates.job_missing_ratio() * 100.0);

    if (argc > 1 && result.database != nullptr) {
        result.database->save(argv[1]);
        std::printf("\nraw-message database saved to %s\n", argv[1]);
    }
    return 0;
}
