#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace siren::storage {

/// Durable append-only segment files — the on-disk spine of the ingest
/// daemon. Full byte-level layout in docs/storage_format.md; in short:
///
///   segment  := header record*
///   header   := "SIRENSG1" u32(version) u32(reserved)
///   record   := u32(kind<<24 | payload length) u32(crc32c of payload) payload
///
/// All integers little-endian. The top byte of the length word is the
/// *record kind*: kind 0 is a raw wire datagram (every record written
/// before the field existed reads back as kind 0, since lengths never
/// reached 2^24). Readers skip-and-count records whose kind they do not
/// understand — forward compatibility for mixed-version fleets where a
/// newer leader ships record kinds an older follower cannot parse yet.
/// A segment may end in a *torn* record (the writer crashed mid-append);
/// replay recovers every complete record and reports the tear instead of
/// throwing.

inline constexpr std::string_view kSegmentMagic = "SIRENSG1";
inline constexpr std::uint32_t kSegmentVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordHeaderBytes = 8;
/// Sanity bound on one record's payload: the length must fit the low 24
/// bits of the frame word so the kind byte above it is unambiguous.
inline constexpr std::uint32_t kMaxRecordBytes = (1u << 24) - 1;
/// Record kinds this version understands. Raw wire datagrams are the only
/// kind delivered to replay/tail callbacks; anything else is counted as
/// unknown and skipped.
inline constexpr std::uint8_t kRecordKindRaw = 0;
inline constexpr unsigned kRecordKindShift = 24;
inline constexpr std::uint32_t kRecordLengthMask = (1u << kRecordKindShift) - 1;
/// Every segment file carries this suffix; replay scans for it.
inline constexpr std::string_view kSegmentSuffix = ".seg";

/// Durability and rotation policy for one writer.
struct SegmentOptions {
    std::size_t max_segment_bytes = 64u << 20;  ///< seal + rotate past this size
    std::size_t buffer_bytes = 256u << 10;      ///< user-space write coalescing
    /// fsync once this many bytes have been appended since the last sync —
    /// the "fsync-batched" knob: durability lags at most this many bytes.
    std::size_t fsync_interval_bytes = 1u << 20;
    bool fsync_enabled = true;  ///< off = page cache only (benches, tmpfs)
};

/// Single-threaded append-only writer for one stream of segments
/// (`<dir>/<prefix><seq>.seg`). The ingest daemon gives each shard its own
/// writer, so the hot path needs no locking; all I/O failures after
/// construction are counted, never thrown — a full disk must not kill the
/// collector spine, only its durability.
class SegmentWriter {
public:
    /// Invoked (from the writing thread) each time a segment is sealed,
    /// with its path; the SegmentStore uses this to track compaction
    /// candidates.
    using SealFn = std::function<void(const std::string& path)>;

    /// resume_seq value meaning "scan the directory for the resume point".
    static constexpr std::uint64_t kResumeByScan = ~0ull;

    /// Creates `directory` if missing (throws util::SystemError when that
    /// fails — a misconfigured store should be loud). Resumes the segment
    /// sequence *after* any `<prefix><seq>.seg` a previous run left behind
    /// — a restarted process appends new segments next to the old data it
    /// will later replay, never over it. The resume point is found by
    /// scanning the directory, unless the caller already knows it
    /// (SegmentStore scans once for all shards — see
    /// scan_resume_sequences) and passes `resume_seq` explicitly. The
    /// first segment file is opened lazily on first append.
    SegmentWriter(std::string directory, std::string prefix, SegmentOptions options = {},
                  SealFn on_seal = nullptr, std::uint64_t resume_seq = kResumeByScan);
    ~SegmentWriter();

    SegmentWriter(const SegmentWriter&) = delete;
    SegmentWriter& operator=(const SegmentWriter&) = delete;

    /// Append one record (typically one raw wire datagram). Buffered;
    /// false only on I/O failure (also counted in errors()). `kind` tags
    /// the frame's record kind; today's writers only emit kRecordKindRaw,
    /// but readers already skip-and-count unknown kinds, so a future
    /// writer can introduce new kinds without wedging older replicas.
    bool append(std::string_view record, std::uint8_t kind = kRecordKindRaw) noexcept;

    /// Durability barrier: write out the user-space buffer and fsync.
    /// No-op when nothing is pending.
    void sync() noexcept;

    /// Group commit, caller = a background flusher thread: fsync whatever
    /// has already been write()n, via a dup'd fd, *without* touching the
    /// user-space buffer — safe concurrently with the appending thread,
    /// which keeps writing at page-cache speed while the disk catches up.
    void sync_written() noexcept;

    /// Disable the append-path fsync-at-interval (buffer flushes at
    /// interval instead); pair with a background thread calling
    /// sync_written(). Durability lag becomes flush cadence + one buffer.
    void set_inline_fsync(bool inline_fsync) { inline_fsync_ = inline_fsync; }

    /// Seal the active segment (sync + close + on_seal) — the next append
    /// opens a fresh file. No-op when no segment is open.
    void rotate() noexcept;

    /// sync + close without sealing the active segment as rotation would;
    /// the file stays replayable (close() is what clean shutdown calls).
    void close() noexcept;

    std::uint64_t appended() const { return appended_; }
    std::uint64_t appended_bytes() const { return appended_bytes_; }
    std::uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
    std::uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
    std::uint64_t segments_opened() const { return segments_opened_; }
    /// Bytes appended but not yet fsync'ed (the durability lag). Retired
    /// by sync() and — in group-commit mode — by each successful
    /// sync_written(), so it stays bounded under steady traffic.
    std::uint64_t unsynced_bytes() const {
        const std::uint64_t p = pending_bytes_.load(std::memory_order_relaxed);
        const std::uint64_t s = synced_bytes_.load(std::memory_order_relaxed);
        return p > s ? p - s : 0;
    }
    const std::string& active_path() const { return active_path_; }
    /// Sequence number the next opened segment file will carry. Right
    /// after construction this is the resume point — strictly greater
    /// than every segment a previous run left behind, which makes it
    /// usable as a per-incarnation epoch (the observe WAL derives
    /// restart-unique job ids from it; see RecognitionService).
    std::uint64_t next_segment_seq() const { return next_seq_; }

private:
    bool open_next() noexcept;
    bool flush_buffer() noexcept;
    /// Raise the durable watermark to `watermark` (CAS-max: the appender's
    /// sync() and the flusher's sync_written() race benignly).
    void advance_synced(std::uint64_t watermark) noexcept;
    /// A write() failed mid-buffer: the active file may end in a partial
    /// record that would misalign the length framing for everything after
    /// it. Close and seal the damaged segment so the next append opens a
    /// fresh one — replay then sees the damage as one torn tail instead of
    /// silently losing every later record.
    void abandon_segment() noexcept;

    std::string directory_;
    std::string prefix_;
    SegmentOptions options_;
    SealFn on_seal_;

    int fd_ = -1;
    int dir_fd_ = -1;  ///< fsync'ed after create/seal so renames survive a crash
    /// Guards fd_ *transitions* (open/rotate/close) against sync_written()'s
    /// dup(); the append/write fast path never takes it.
    std::mutex fd_mutex_;
    bool inline_fsync_ = true;
    std::string active_path_;
    std::string buffer_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t segment_bytes_ = 0;  ///< written + buffered bytes of the active file
    /// Durability-lag accounting as monotonic byte watermarks: pending_ =
    /// bytes that entered the user-space buffer, flushed_ = bytes write()n
    /// to a segment fd (both advanced by the appending thread only),
    /// synced_ = the durable high-water mark, raised by whichever of
    /// sync()/sync_written() fsyncs. unsynced_bytes() = pending - synced.
    std::atomic<std::uint64_t> pending_bytes_{0};
    std::atomic<std::uint64_t> flushed_bytes_{0};
    std::atomic<std::uint64_t> synced_bytes_{0};

    std::uint64_t appended_ = 0;
    std::uint64_t appended_bytes_ = 0;
    /// Buffer-drop events (appender thread only). append() uses the delta
    /// across its own flush/sync/rotate calls to report whether *this*
    /// record was dropped — errors_ won't do, since the flusher thread
    /// also counts fsync failures there, which are not record drops.
    std::uint64_t flush_drops_ = 0;
    /// After a failed interval fsync, no retry until pending_bytes_ passes
    /// this mark — one failing fsync per interval, not one per append
    /// (appender thread only).
    std::uint64_t inline_sync_backoff_until_ = 0;
    /// Atomic because the flusher thread's sync_written() counts failed
    /// fsyncs here too; everything else increments from the appender.
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> syncs_{0};  ///< bumped by appender and flusher
    std::uint64_t segments_opened_ = 0;
};

/// Accounting for one replay pass. A "tear" is an incomplete record at the
/// end of a segment (crashed writer); a "crc failure" is a complete record
/// whose payload no longer matches its checksum (bit rot) — the record is
/// skipped but scanning continues, since the length framing is intact.
struct ReplayStats {
    std::uint64_t segments = 0;       ///< files with a valid header
    std::uint64_t records = 0;        ///< complete, checksummed records delivered
    std::uint64_t bytes = 0;          ///< payload bytes delivered
    std::uint64_t torn_tails = 0;     ///< segments ending mid-record
    std::uint64_t torn_bytes = 0;     ///< bytes abandoned in torn tails
    std::uint64_t crc_failures = 0;   ///< records dropped on checksum mismatch
    std::uint64_t bad_segments = 0;   ///< files skipped: unreadable/bad magic/version
    std::uint64_t unknown_kinds = 0;  ///< valid records of a kind this version cannot parse
    std::uint64_t filtered = 0;       ///< valid records a replay predicate excluded

    void merge(const ReplayStats& o);
};

using RecordFn = std::function<void(std::string_view record)>;

/// Keep-predicate for filtered replay: return true to deliver the record.
/// The partition rebalance uses this to export only the records whose
/// digest block size falls in the moving key range (serve::record_in_range).
using RecordPredicate = std::function<bool(std::string_view record)>;

/// One directory pass computing, for each prefix, the sequence a restarted
/// writer should resume at (highest existing `<prefix><seq>.seg` + 1, or 0
/// when none). SegmentStore uses this so an N-shard restart scans the
/// shared directory once instead of N times. A missing directory yields
/// all zeros.
std::vector<std::uint64_t> scan_resume_sequences(const std::string& directory,
                                                 const std::vector<std::string>& prefixes);

/// Every `*.seg` file under `directory`, ordered by (stream prefix, numeric
/// sequence) — the canonical replay order, shared by replay_directory and
/// the serving layer's segment tailer. A missing directory yields an empty
/// list. When `error` is non-null it receives the directory iteration's
/// error code (cleared on success) — callers tracking per-file state (the
/// segment tail) must not mistake a transiently unreadable directory for
/// "every file vanished".
std::vector<std::string> list_segments(const std::string& directory,
                                       std::error_code* error = nullptr);

/// Read up to `max_bytes` of `path` starting at byte `offset` into `out`
/// (replacing its contents), via pread — safe against a writer appending
/// to the same file concurrently, since segment files are strictly
/// append-only and bytes below the current size never change. Returns the
/// number of bytes read: 0 on error, a missing file, or offset at/past the
/// end. This is the byte-level read the replication source uses to stream
/// sealed *and live* segments from a follower-supplied watermark.
std::size_t read_segment_range(const std::string& path, std::uint64_t offset,
                               std::size_t max_bytes, std::string& out);

/// Replay every complete record of one segment file, in append order.
/// Never throws: unreadable files and bad headers count as bad_segments,
/// torn tails and checksum mismatches are counted and skipped.
ReplayStats replay_segment(const std::string& path, const RecordFn& fn);

/// Filtered replay: records failing `keep` are counted (ReplayStats::
/// filtered) and not delivered; everything else is replay_segment above.
/// A null predicate keeps everything.
ReplayStats replay_segment(const std::string& path, const RecordFn& fn,
                           const RecordPredicate& keep);

/// Replay every `*.seg` file under `directory`, ordered by (stream
/// prefix, numeric sequence) — append order per shard stream, even when a
/// sequence outgrows its zero padding. A missing directory is an empty
/// replay, not an error.
ReplayStats replay_directory(const std::string& directory, const RecordFn& fn);

/// Filtered directory replay, same predicate contract as the single-file
/// overload.
ReplayStats replay_directory(const std::string& directory, const RecordFn& fn,
                             const RecordPredicate& keep);

}  // namespace siren::storage
