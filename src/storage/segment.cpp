#include "storage/segment.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "hashing/crc32c.hpp"
#include "util/error.hpp"

namespace siren::storage {

namespace fs = std::filesystem;

namespace {

void put_u32le(char* out, std::uint32_t v) {
    out[0] = static_cast<char>(v & 0xFF);
    out[1] = static_cast<char>((v >> 8) & 0xFF);
    out[2] = static_cast<char>((v >> 16) & 0xFF);
    out[3] = static_cast<char>((v >> 24) & 0xFF);
}

void put_u32le(std::string& out, std::uint32_t v) {
    char bytes[4];
    put_u32le(bytes, v);
    out.append(bytes, 4);
}

std::uint32_t get_u32le(const char* p) {
    const auto* b = reinterpret_cast<const unsigned char*>(p);
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
}

}  // namespace

SegmentWriter::SegmentWriter(std::string directory, std::string prefix, SegmentOptions options,
                             SealFn on_seal)
    : directory_(std::move(directory)),
      prefix_(std::move(prefix)),
      options_(options),
      on_seal_(std::move(on_seal)) {
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec) {
        throw util::SystemError("segment store: cannot create " + directory_ + ": " +
                                ec.message());
    }
    dir_fd_ = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    buffer_.reserve(options_.buffer_bytes + 4096);
}

SegmentWriter::~SegmentWriter() {
    close();
    if (dir_fd_ >= 0) ::close(dir_fd_);
}

bool SegmentWriter::open_next() noexcept {
    char name[32];
    std::snprintf(name, sizeof name, "%08llu", static_cast<unsigned long long>(next_seq_));
    active_path_ = directory_ + "/" + prefix_ + name + std::string(kSegmentSuffix);
    const int fd = ::open(active_path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        fd_ = fd;
    }
    if (fd_ < 0) {
        ++errors_;
        active_path_.clear();
        return false;
    }
    ++next_seq_;
    ++segments_opened_;
    // Make the new directory entry itself durable before data lands in it.
    if (options_.fsync_enabled && dir_fd_ >= 0) ::fsync(dir_fd_);
    buffer_.append(kSegmentMagic);
    put_u32le(buffer_, kSegmentVersion);
    put_u32le(buffer_, 0);  // reserved
    segment_bytes_ = kSegmentHeaderBytes;
    unsynced_bytes_ += kSegmentHeaderBytes;
    return true;
}

bool SegmentWriter::flush_buffer() noexcept {
    if (buffer_.empty()) return true;
    if (fd_ < 0) {
        // Nothing to write into: drop the buffered bytes, count the loss.
        ++errors_;
        buffer_.clear();
        return false;
    }
    const char* p = buffer_.data();
    std::size_t remaining = buffer_.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd_, p, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            // Disk trouble: drop what we could not write (counted) rather
            // than grow the buffer without bound.
            ++errors_;
            buffer_.clear();
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    buffer_.clear();
    return true;
}

bool SegmentWriter::append(std::string_view record) noexcept {
    if (record.size() > kMaxRecordBytes) {
        ++errors_;
        return false;
    }
    if (fd_ < 0 && !open_next()) return false;

    // One append for the frame header, one for the payload — the framing
    // cost must stay invisible next to the record memcpy.
    char frame[kRecordHeaderBytes];
    put_u32le(frame, static_cast<std::uint32_t>(record.size()));
    put_u32le(frame + 4, hash::crc32c(record));
    buffer_.append(frame, kRecordHeaderBytes);
    buffer_.append(record);

    const std::uint64_t framed = kRecordHeaderBytes + record.size();
    ++appended_;
    appended_bytes_ += framed;
    segment_bytes_ += framed;
    unsynced_bytes_ += framed;

    bool ok = true;
    if (buffer_.size() >= options_.buffer_bytes) ok = flush_buffer();
    // Group-commit mode skips the interval fsync entirely: the buffer_bytes
    // flush above keeps bytes flowing to the page cache and the flusher
    // thread's sync_written() makes them durable — unsynced_bytes_ then
    // only bounds the *idle* sync, it must not trigger per-append work.
    if (inline_fsync_ && unsynced_bytes_ >= options_.fsync_interval_bytes) sync();
    if (segment_bytes_ >= options_.max_segment_bytes) rotate();
    return ok;
}

void SegmentWriter::sync_written() noexcept {
    if (!options_.fsync_enabled) return;
    int dup_fd = -1;
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        if (fd_ < 0) return;
        dup_fd = ::dup(fd_);
    }
    if (dup_fd < 0) return;
    // fsync outside the lock: the appender can open/rotate freely while
    // the disk catches up; a rotation mid-fsync just means this dup keeps
    // the sealed file alive until its bytes are safe.
    ::fsync(dup_fd);
    ::close(dup_fd);
    syncs_.fetch_add(1, std::memory_order_relaxed);
}

void SegmentWriter::sync() noexcept {
    flush_buffer();
    if (fd_ >= 0 && options_.fsync_enabled && unsynced_bytes_ > 0) {
        ::fsync(fd_);
        syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    unsynced_bytes_ = 0;
}

void SegmentWriter::rotate() noexcept {
    if (fd_ < 0) return;
    sync();
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        ::close(fd_);
        fd_ = -1;
    }
    if (options_.fsync_enabled && dir_fd_ >= 0) ::fsync(dir_fd_);
    if (on_seal_) on_seal_(active_path_);
    active_path_.clear();
    segment_bytes_ = 0;
}

void SegmentWriter::close() noexcept {
    if (fd_ < 0) {
        buffer_.clear();
        return;
    }
    sync();
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        ::close(fd_);
        fd_ = -1;
    }
    segment_bytes_ = 0;
}

void ReplayStats::merge(const ReplayStats& o) {
    segments += o.segments;
    records += o.records;
    bytes += o.bytes;
    torn_tails += o.torn_tails;
    torn_bytes += o.torn_bytes;
    crc_failures += o.crc_failures;
    bad_segments += o.bad_segments;
}

ReplayStats replay_segment(const std::string& path, const RecordFn& fn) {
    ReplayStats stats;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats.bad_segments;
        return stats;
    }
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0) {
        ++stats.bad_segments;
        return stats;
    }
    const auto size = static_cast<std::uint64_t>(end);
    in.seekg(0);

    char header[kSegmentHeaderBytes];
    if (size < kSegmentHeaderBytes || !in.read(header, kSegmentHeaderBytes) ||
        std::memcmp(header, kSegmentMagic.data(), kSegmentMagic.size()) != 0 ||
        get_u32le(header + 8) != kSegmentVersion) {
        ++stats.bad_segments;
        return stats;
    }
    ++stats.segments;

    std::string payload;
    char rec[kRecordHeaderBytes];
    std::uint64_t pos = kSegmentHeaderBytes;
    while (pos < size) {
        if (size - pos < kRecordHeaderBytes) {
            // Partial record header: the writer died between the two
            // write()s (or mid-header) — classic torn tail.
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        if (!in.read(rec, kRecordHeaderBytes)) {
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        const std::uint32_t length = get_u32le(rec);
        const std::uint32_t crc = get_u32le(rec + 4);
        if (length > kMaxRecordBytes || size - pos - kRecordHeaderBytes < length) {
            // Length field points past the end of the file (torn payload)
            // or is implausible (corrupt framing): everything from here on
            // is unusable.
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        payload.resize(length);
        if (length > 0 && !in.read(payload.data(), length)) {
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        pos += kRecordHeaderBytes + length;
        if (hash::crc32c(payload) != crc) {
            // Complete record, wrong checksum: bit rot in the payload. The
            // framing is intact, so skip this record and keep scanning.
            ++stats.crc_failures;
            continue;
        }
        ++stats.records;
        stats.bytes += length;
        if (fn) fn(payload);
    }
    return stats;
}

ReplayStats replay_directory(const std::string& directory, const RecordFn& fn) {
    ReplayStats stats;
    std::error_code ec;
    std::vector<std::string> paths;
    for (fs::directory_iterator it(directory, ec), end; !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string name = it->path().filename().string();
        if (name.size() > kSegmentSuffix.size() && name.ends_with(kSegmentSuffix)) {
            paths.push_back(it->path().string());
        }
    }
    std::sort(paths.begin(), paths.end());
    for (const auto& path : paths) {
        stats.merge(replay_segment(path, fn));
    }
    return stats;
}

}  // namespace siren::storage
