#include "storage/segment.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "hashing/crc32c.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace siren::storage {

namespace fs = std::filesystem;

using util::get_u32le;
using util::put_u32le;

namespace {

/// Split `<head><digits>.seg` so segments can be matched to a stream and
/// ordered by numeric sequence: plain lexicographic order breaks once a
/// sequence outgrows its zero padding ("…-100000000.seg" would sort before
/// "…-11111112.seg" despite being appended later). The caller guarantees
/// `path` ends with kSegmentSuffix.
std::pair<std::string_view, std::string_view> split_segment_name(std::string_view path) {
    path.remove_suffix(kSegmentSuffix.size());
    std::size_t digits_at = path.size();
    while (digits_at > 0 && path[digits_at - 1] >= '0' && path[digits_at - 1] <= '9') {
        --digits_at;
    }
    return {path.substr(0, digits_at), path.substr(digits_at)};
}

}  // namespace

SegmentWriter::SegmentWriter(std::string directory, std::string prefix, SegmentOptions options,
                             SealFn on_seal, std::uint64_t resume_seq)
    : directory_(std::move(directory)),
      prefix_(std::move(prefix)),
      options_(options),
      on_seal_(std::move(on_seal)) {
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec) {
        throw util::SystemError("segment store: cannot create " + directory_ + ": " +
                                ec.message());
    }
    dir_fd_ = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    buffer_.reserve(options_.buffer_bytes + 4096);

    // Resume the sequence after whatever segments an earlier process left
    // here: a restart on the same durable directory (the documented crash
    // recovery workflow) must append *next to* the surviving data it will
    // later replay, never truncate over it.
    next_seq_ = resume_seq != kResumeByScan
                    ? resume_seq
                    : scan_resume_sequences(directory_, {prefix_}).front();
}

std::vector<std::uint64_t> scan_resume_sequences(const std::string& directory,
                                                 const std::vector<std::string>& prefixes) {
    std::vector<std::uint64_t> next(prefixes.size(), 0);
    std::error_code ec;
    for (fs::directory_iterator it(directory, ec), end; !ec && it != end; it.increment(ec)) {
        std::error_code file_ec;
        if (!it->is_regular_file(file_ec)) continue;
        const std::string name = it->path().filename().string();
        if (name.size() <= kSegmentSuffix.size() || !name.ends_with(kSegmentSuffix)) continue;
        // Match each prefix literally (not via split_segment_name's
        // trailing-digit heuristic): a prefix that itself ends in a digit
        // would otherwise never match and restart its stream at 0. No
        // early break — overlapping prefixes ("t-" and "t-1") each take
        // the conservative, higher resume point.
        for (std::size_t i = 0; i < prefixes.size(); ++i) {
            const std::string& prefix = prefixes[i];
            if (name.size() <= prefix.size() + kSegmentSuffix.size()) continue;
            if (!name.starts_with(prefix)) continue;
            const std::string_view digits(name.data() + prefix.size(),
                                          name.size() - prefix.size() - kSegmentSuffix.size());
            if (digits.empty() || digits.size() > 18) continue;
            std::uint64_t seq = 0;
            bool numeric = true;
            for (const char c : digits) {
                if (c < '0' || c > '9') {
                    numeric = false;
                    break;
                }
                seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
            }
            if (numeric && seq >= next[i]) next[i] = seq + 1;
        }
    }
    return next;
}

SegmentWriter::~SegmentWriter() {
    close();
    if (dir_fd_ >= 0) ::close(dir_fd_);
}

bool SegmentWriter::open_next() noexcept {
    if (const auto fp = SIREN_FAILPOINT("storage.segment.open");
        fp.action == util::failpoint::Action::kError) {
        // Injected open failure (ENOSPC, EMFILE, ...): same accounting as a
        // real one — counted, no active segment, the caller's append drops.
        ++errors_;
        active_path_.clear();
        return false;
    }
    // O_EXCL is belt-and-braces on top of the constructor's directory scan:
    // a name collision (another writer, a segment created since the scan)
    // advances the sequence instead of truncating someone else's data.
    int fd = -1;
    for (int attempt = 0; attempt < 65536; ++attempt) {
        char name[32];
        std::snprintf(name, sizeof name, "%08llu", static_cast<unsigned long long>(next_seq_));
        active_path_ = directory_ + "/" + prefix_ + name + std::string(kSegmentSuffix);
        fd = ::open(active_path_.c_str(), O_CREAT | O_WRONLY | O_EXCL | O_CLOEXEC, 0644);
        if (fd >= 0 || errno != EEXIST) break;
        ++next_seq_;
    }
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        fd_ = fd;
    }
    if (fd_ < 0) {
        ++errors_;
        active_path_.clear();
        return false;
    }
    ++next_seq_;
    ++segments_opened_;
    // Make the new directory entry itself durable before data lands in it.
    if (options_.fsync_enabled && dir_fd_ >= 0) ::fsync(dir_fd_);
    buffer_.append(kSegmentMagic);
    util::append_u32le(buffer_, kSegmentVersion);
    util::append_u32le(buffer_, 0);  // reserved
    segment_bytes_ = kSegmentHeaderBytes;
    pending_bytes_.fetch_add(kSegmentHeaderBytes, std::memory_order_relaxed);
    return true;
}

bool SegmentWriter::flush_buffer() noexcept {
    if (buffer_.empty()) return true;
    if (fd_ < 0) {
        // Nothing to write into: drop the buffered bytes, count the loss.
        ++errors_;
        ++flush_drops_;
        pending_bytes_.fetch_sub(buffer_.size(), std::memory_order_relaxed);
        buffer_.clear();
        return false;
    }
    const char* p = buffer_.data();
    std::size_t remaining = buffer_.size();
    while (remaining > 0) {
        ssize_t n;
        if (const auto fp = SIREN_FAILPOINT("storage.segment.write")) {
            if (fp.action == util::failpoint::Action::kShortWrite && remaining > 1) {
                // Land a real prefix before failing: the file ends mid-frame,
                // exactly the torn tail a crash between the two write()s
                // leaves, so replay-side torn_tails accounting is exercised
                // against genuine on-disk truncation.
                const ssize_t wrote = ::write(fd_, p, remaining / 2);
                if (wrote > 0) {
                    flushed_bytes_.fetch_add(static_cast<std::uint64_t>(wrote),
                                             std::memory_order_relaxed);
                    p += wrote;
                    remaining -= static_cast<std::size_t>(wrote);
                }
            }
            errno = fp.err != 0 ? fp.err : ENOSPC;
            n = -1;
        } else {
            n = ::write(fd_, p, remaining);
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            // Disk trouble: drop what we could not write (counted) rather
            // than grow the buffer without bound — and since an earlier
            // partial write() may have left a truncated record mid-file,
            // abandon this segment so the misaligned framing cannot poison
            // records appended after it.
            ++errors_;
            ++flush_drops_;
            pending_bytes_.fetch_sub(remaining, std::memory_order_relaxed);
            buffer_.clear();
            abandon_segment();
            return false;
        }
        flushed_bytes_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    buffer_.clear();
    return true;
}

void SegmentWriter::advance_synced(std::uint64_t watermark) noexcept {
    std::uint64_t cur = synced_bytes_.load(std::memory_order_relaxed);
    while (cur < watermark &&
           !synced_bytes_.compare_exchange_weak(cur, watermark, std::memory_order_relaxed)) {
    }
}

void SegmentWriter::abandon_segment() noexcept {
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        if (fd_ >= 0) ::close(fd_);
        fd_ = -1;
    }
    // The damaged file's written-but-unsynced bytes will never be fsynced;
    // they are lost (errors_), not lagging — stop reporting them.
    advance_synced(flushed_bytes_.load(std::memory_order_relaxed));
    if (on_seal_) on_seal_(active_path_);
    active_path_.clear();
    segment_bytes_ = 0;
}

bool SegmentWriter::append(std::string_view record, std::uint8_t kind) noexcept {
    if (record.size() > kMaxRecordBytes) {
        ++errors_;
        return false;
    }
    // A buffer drop while this record is in flight — in append's own
    // flush, in the interval sync() or inside rotate() — means the record
    // (possibly with earlier buffered ones) was lost: the caller must not
    // see it reported as journaled. Durability-only failures (a failed
    // fsync of bytes that did reach the file) are deliberately excluded;
    // those records exist and will replay.
    const std::uint64_t drops_before = flush_drops_;
    if (fd_ < 0 && !open_next()) return false;

    // One append for the frame header, one for the payload — the framing
    // cost must stay invisible next to the record memcpy.
    char frame[kRecordHeaderBytes];
    put_u32le(frame, static_cast<std::uint32_t>(record.size()) |
                         (static_cast<std::uint32_t>(kind) << kRecordKindShift));
    put_u32le(frame + 4, hash::crc32c(record));
    buffer_.append(frame, kRecordHeaderBytes);
    buffer_.append(record);
    if (const auto fp = SIREN_FAILPOINT("storage.segment.corrupt");
        fp.action == util::failpoint::Action::kCorrupt && !record.empty()) {
        // Flip a payload byte *after* the CRC was framed: replay sees a
        // complete record whose checksum lies — the bit-rot path.
        buffer_.back() = static_cast<char>(buffer_.back() ^ 0x01);
    }

    const std::uint64_t framed = kRecordHeaderBytes + record.size();
    ++appended_;
    appended_bytes_ += framed;
    segment_bytes_ += framed;
    pending_bytes_.fetch_add(framed, std::memory_order_relaxed);

    if (buffer_.size() >= options_.buffer_bytes) flush_buffer();
    // Group-commit mode skips the interval fsync entirely: the buffer_bytes
    // flush above keeps bytes flowing to the page cache and the flusher
    // thread's sync_written() makes them durable — the unsynced watermark
    // then only bounds the *idle* sync, it must not trigger per-append work.
    if (inline_fsync_ && unsynced_bytes() >= options_.fsync_interval_bytes &&
        pending_bytes_.load(std::memory_order_relaxed) >= inline_sync_backoff_until_) {
        sync();
        if (unsynced_bytes() >= options_.fsync_interval_bytes) {
            // fsync failed and left the lag in place (only that path can:
            // a flush drop zeroes the lag). Don't hammer an ailing disk
            // with one fsync per append — retry after another interval's
            // worth of appends.
            inline_sync_backoff_until_ =
                pending_bytes_.load(std::memory_order_relaxed) + options_.fsync_interval_bytes;
        }
    }
    if (segment_bytes_ >= options_.max_segment_bytes) rotate();
    return flush_drops_ == drops_before;
}

void SegmentWriter::sync_written() noexcept {
    if (!options_.fsync_enabled) return;
    // Compare against *flushed*, not pending: bytes still in the appender's
    // user-space buffer cannot be fsynced from here, so when nothing new
    // has been write()n since the last sync the fsync would be a no-op.
    if (flushed_bytes_.load(std::memory_order_relaxed) <=
        synced_bytes_.load(std::memory_order_relaxed)) {
        return;
    }
    int dup_fd = -1;
    std::uint64_t watermark = 0;
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        if (fd_ < 0) return;
        dup_fd = ::dup(fd_);
        // Snapshot under the lock: the fd cannot rotate away before the
        // load, so every byte counted here went to this fd or to an
        // already-synced predecessor — the fsync below makes all of them
        // durable even while the appender keeps writing past the mark.
        watermark = flushed_bytes_.load(std::memory_order_relaxed);
    }
    if (dup_fd < 0) {
        // fd exhaustion: nothing was fsynced, the lag stays visible and
        // the failure is counted — not a silent skip.
        ++errors_;
        return;
    }
    // fsync outside the lock: the appender can open/rotate freely while
    // the disk catches up; a rotation mid-fsync just means this dup keeps
    // the sealed file alive until its bytes are safe.
    int rc;
    if (const auto fp = SIREN_FAILPOINT("storage.segment.fsync");
        fp.action == util::failpoint::Action::kError) {
        errno = fp.err != 0 ? fp.err : EIO;
        rc = -1;
    } else {
        rc = ::fsync(dup_fd);
    }
    ::close(dup_fd);
    if (rc != 0) {
        // Not durable: leave the watermark where it was so the lag stays
        // visible and the next interval retries the fsync.
        ++errors_;
        return;
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    advance_synced(watermark);
}

void SegmentWriter::sync() noexcept {
    flush_buffer();
    if (fd_ >= 0 && options_.fsync_enabled && unsynced_bytes() > 0) {
        const bool injected = SIREN_FAILPOINT("storage.segment.fsync").action ==
                              util::failpoint::Action::kError;
        if (injected || ::fsync(fd_) != 0) {
            // Not durable: keep the lag visible, retry on the next sync.
            ++errors_;
            return;
        }
        syncs_.fetch_add(1, std::memory_order_relaxed);
    }
    advance_synced(flushed_bytes_.load(std::memory_order_relaxed));
}

void SegmentWriter::rotate() noexcept {
    if (fd_ < 0) return;
    sync();
    // sync()'s flush may have hit a write failure and already abandoned
    // (closed + sealed) the segment — nothing left to rotate.
    if (fd_ < 0) return;
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        ::close(fd_);
        fd_ = -1;
    }
    // If sync()'s fsync failed (counted in errors_), the fd it could have
    // retried against is now gone — reconcile the watermark so the sealed
    // segment's bytes stop reporting as retriable lag.
    advance_synced(flushed_bytes_.load(std::memory_order_relaxed));
    if (options_.fsync_enabled && dir_fd_ >= 0) ::fsync(dir_fd_);
    if (on_seal_) on_seal_(active_path_);
    active_path_.clear();
    segment_bytes_ = 0;
}

void SegmentWriter::close() noexcept {
    if (fd_ < 0) {
        pending_bytes_.fetch_sub(buffer_.size(), std::memory_order_relaxed);
        buffer_.clear();
        return;
    }
    sync();
    if (fd_ < 0) return;  // abandoned by a failed flush inside sync()
    {
        std::lock_guard<std::mutex> lock(fd_mutex_);
        ::close(fd_);
        fd_ = -1;
    }
    // As in rotate(): a failed final fsync has no fd left to retry against.
    advance_synced(flushed_bytes_.load(std::memory_order_relaxed));
    segment_bytes_ = 0;
}

void ReplayStats::merge(const ReplayStats& o) {
    segments += o.segments;
    records += o.records;
    bytes += o.bytes;
    torn_tails += o.torn_tails;
    torn_bytes += o.torn_bytes;
    crc_failures += o.crc_failures;
    bad_segments += o.bad_segments;
    unknown_kinds += o.unknown_kinds;
    filtered += o.filtered;
}

std::size_t read_segment_range(const std::string& path, std::uint64_t offset,
                               std::size_t max_bytes, std::string& out) {
    out.clear();
    if (max_bytes == 0) return 0;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return 0;
    out.resize(max_bytes);
    std::size_t total = 0;
    while (total < max_bytes) {
        const ssize_t n = ::pread(fd, out.data() + total, max_bytes - total,
                                  static_cast<off_t>(offset + total));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        total += static_cast<std::size_t>(n);
    }
    ::close(fd);
    out.resize(total);
    return total;
}

ReplayStats replay_segment(const std::string& path, const RecordFn& fn) {
    ReplayStats stats;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats.bad_segments;
        return stats;
    }
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end < 0) {
        ++stats.bad_segments;
        return stats;
    }
    const auto size = static_cast<std::uint64_t>(end);
    in.seekg(0);

    char header[kSegmentHeaderBytes];
    if (size < kSegmentHeaderBytes || !in.read(header, kSegmentHeaderBytes) ||
        std::memcmp(header, kSegmentMagic.data(), kSegmentMagic.size()) != 0 ||
        get_u32le(header + 8) != kSegmentVersion) {
        ++stats.bad_segments;
        return stats;
    }
    ++stats.segments;

    std::string payload;
    char rec[kRecordHeaderBytes];
    std::uint64_t pos = kSegmentHeaderBytes;
    while (pos < size) {
        if (size - pos < kRecordHeaderBytes) {
            // Partial record header: the writer died between the two
            // write()s (or mid-header) — classic torn tail.
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        if (!in.read(rec, kRecordHeaderBytes)) {
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        const std::uint32_t word = get_u32le(rec);
        const std::uint8_t kind = static_cast<std::uint8_t>(word >> kRecordKindShift);
        const std::uint32_t length = word & kRecordLengthMask;
        const std::uint32_t crc = get_u32le(rec + 4);
        if (size - pos - kRecordHeaderBytes < length) {
            // Length field points past the end of the file: torn payload.
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        payload.resize(length);
        if (length > 0 && !in.read(payload.data(), length)) {
            ++stats.torn_tails;
            stats.torn_bytes += size - pos;
            break;
        }
        pos += kRecordHeaderBytes + length;
        if (hash::crc32c(payload) != crc) {
            // Complete record, wrong checksum: bit rot in the payload (or a
            // corrupt frame word that mis-framed this read). The framing as
            // parsed is intact, so skip this record and keep scanning.
            ++stats.crc_failures;
            continue;
        }
        if (kind != kRecordKindRaw) {
            // A well-formed record of a kind this version does not speak —
            // written by a newer process sharing the directory. Count and
            // skip; treating it as corruption would wedge mixed-version
            // fleets on the first future-format record.
            ++stats.unknown_kinds;
            continue;
        }
        ++stats.records;
        stats.bytes += length;
        if (fn) fn(payload);
    }
    return stats;
}

namespace {

bool segment_order(const std::string& a, const std::string& b) {
    const auto [head_a, seq_a] = split_segment_name(a);
    const auto [head_b, seq_b] = split_segment_name(b);
    if (head_a != head_b) return head_a < head_b;
    std::string_view na = seq_a.substr(std::min(seq_a.find_first_not_of('0'), seq_a.size()));
    std::string_view nb = seq_b.substr(std::min(seq_b.find_first_not_of('0'), seq_b.size()));
    if (na.size() != nb.size()) return na.size() < nb.size();  // shorter number = smaller
    if (na != nb) return na < nb;
    return a < b;  // numeric tie (padding difference): keep the order total
}

}  // namespace

std::vector<std::string> list_segments(const std::string& directory, std::error_code* error) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (fs::directory_iterator it(directory, ec), end; !ec && it != end; it.increment(ec)) {
        std::error_code file_ec;
        if (!it->is_regular_file(file_ec)) continue;
        const std::string name = it->path().filename().string();
        if (name.size() > kSegmentSuffix.size() && name.ends_with(kSegmentSuffix)) {
            paths.push_back(it->path().string());
        }
    }
    if (error != nullptr) *error = ec;
    std::sort(paths.begin(), paths.end(), segment_order);
    return paths;
}

ReplayStats replay_segment(const std::string& path, const RecordFn& fn,
                           const RecordPredicate& keep) {
    if (!keep) return replay_segment(path, fn);
    std::uint64_t filtered = 0;
    ReplayStats stats = replay_segment(path, [&](std::string_view record) {
        if (!keep(record)) {
            ++filtered;
            return;
        }
        if (fn) fn(record);
    });
    stats.filtered = filtered;
    return stats;
}

ReplayStats replay_directory(const std::string& directory, const RecordFn& fn) {
    ReplayStats stats;
    for (const auto& path : list_segments(directory)) {
        stats.merge(replay_segment(path, fn));
    }
    return stats;
}

ReplayStats replay_directory(const std::string& directory, const RecordFn& fn,
                             const RecordPredicate& keep) {
    ReplayStats stats;
    for (const auto& path : list_segments(directory)) {
        stats.merge(replay_segment(path, fn, keep));
    }
    return stats;
}

}  // namespace siren::storage
