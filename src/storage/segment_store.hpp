#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/segment.hpp"

namespace siren::storage {

/// A directory of segment files shared by N writer shards — the durable
/// landing zone of the ingest daemon (and the WAL of ReceiverService's
/// durable mode).
///
/// Each shard owns a private SegmentWriter with a shard-tagged filename
/// prefix (`shard<k>-<seq>.seg`), so concurrent appends never contend on a
/// lock; cross-shard record order is not preserved, which is fine — SIREN
/// messages are unordered by design (the consolidator keys on header
/// fields, not arrival order). Sealed segments become compaction
/// candidates once marked consolidated; replay walks every `*.seg` in the
/// directory, including segments a previous (crashed) process left behind.
class SegmentStore {
public:
    /// Throws util::SystemError when the directory cannot be created.
    explicit SegmentStore(std::string directory, std::size_t shards = 1,
                          SegmentOptions options = {});

    SegmentStore(const SegmentStore&) = delete;
    SegmentStore& operator=(const SegmentStore&) = delete;

    const std::string& directory() const { return directory_; }
    std::size_t shards() const { return writers_.size(); }

    /// Append one record to `shard`'s stream. Each shard must be fed by at
    /// most one thread at a time (the writers are single-threaded by
    /// design); distinct shards are safe concurrently.
    bool append(std::size_t shard, std::string_view record) noexcept;

    /// Direct writer access for per-shard idle syncs and stats.
    SegmentWriter& writer(std::size_t shard) { return *writers_[shard]; }

    /// Durability barrier across every shard.
    void sync_all() noexcept;

    /// Seal every active segment and close the writers (clean shutdown).
    void close() noexcept;

    /// Replay every complete record currently in the directory (all
    /// shards, plus leftovers from earlier runs). Flushes writers first so
    /// the replay sees everything appended so far.
    ReplayStats replay(const RecordFn& fn);

    /// Sealed (rotated-out) segments not yet compacted, in seal order.
    std::vector<std::string> sealed_segments() const;

    /// Mark a sealed segment as fully consolidated — its records have been
    /// applied downstream (database rows, aggregates) and the segment is
    /// no longer needed for crash recovery.
    void mark_consolidated(const std::string& path);

    /// Delete every sealed segment that has been marked consolidated;
    /// returns how many files were removed. The active segments are never
    /// touched. Safe to call from a background thread.
    std::size_t compact() noexcept;

    // Aggregated counters across shards.
    std::uint64_t appended() const;
    std::uint64_t appended_bytes() const;
    std::uint64_t errors() const;
    std::uint64_t segments_sealed() const;
    std::uint64_t segments_compacted() const { return compacted_; }

private:
    struct Sealed {
        std::string path;
        bool consolidated = false;
    };

    std::string directory_;
    std::vector<std::unique_ptr<SegmentWriter>> writers_;

    mutable std::mutex sealed_mutex_;
    std::vector<Sealed> sealed_;
    std::uint64_t sealed_count_ = 0;
    std::uint64_t compacted_ = 0;
};

}  // namespace siren::storage
