#include "storage/segment_store.hpp"

#include <cstdio>
#include <filesystem>

#include "util/error.hpp"

namespace siren::storage {

SegmentStore::SegmentStore(std::string directory, std::size_t shards, SegmentOptions options)
    : directory_(std::move(directory)) {
    util::require(shards >= 1, "SegmentStore needs at least one shard");
    std::vector<std::string> prefixes;
    prefixes.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        char prefix[32];
        std::snprintf(prefix, sizeof prefix, "shard%03zu-", s);
        prefixes.emplace_back(prefix);
    }
    // One pass over the shared directory computes every shard's restart
    // resume point — per-writer scans would walk the same (potentially
    // huge) listing `shards` times.
    const auto resume = scan_resume_sequences(directory_, prefixes);
    writers_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        writers_.push_back(std::make_unique<SegmentWriter>(
            directory_, prefixes[s], options,
            [this](const std::string& path) {
                std::lock_guard<std::mutex> lock(sealed_mutex_);
                sealed_.push_back({path, false});
                ++sealed_count_;
            },
            resume[s]));
    }
}

bool SegmentStore::append(std::size_t shard, std::string_view record) noexcept {
    return writers_[shard % writers_.size()]->append(record);
}

void SegmentStore::sync_all() noexcept {
    for (auto& w : writers_) w->sync();
}

void SegmentStore::close() noexcept {
    for (auto& w : writers_) w->rotate();
}

ReplayStats SegmentStore::replay(const RecordFn& fn) {
    sync_all();
    return replay_directory(directory_, fn);
}

std::vector<std::string> SegmentStore::sealed_segments() const {
    std::lock_guard<std::mutex> lock(sealed_mutex_);
    std::vector<std::string> paths;
    paths.reserve(sealed_.size());
    for (const auto& s : sealed_) paths.push_back(s.path);
    return paths;
}

void SegmentStore::mark_consolidated(const std::string& path) {
    std::lock_guard<std::mutex> lock(sealed_mutex_);
    for (auto& s : sealed_) {
        if (s.path == path) {
            s.consolidated = true;
            return;
        }
    }
}

std::size_t SegmentStore::compact() noexcept {
    std::lock_guard<std::mutex> lock(sealed_mutex_);
    std::size_t removed = 0;
    std::vector<Sealed> keep;
    keep.reserve(sealed_.size());
    for (auto& s : sealed_) {
        if (!s.consolidated) {
            keep.push_back(std::move(s));
            continue;
        }
        std::error_code ec;
        std::filesystem::remove(s.path, ec);
        if (ec) {
            keep.push_back(std::move(s));  // try again next sweep
        } else {
            ++removed;
        }
    }
    sealed_.swap(keep);
    compacted_ += removed;
    return removed;
}

std::uint64_t SegmentStore::appended() const {
    std::uint64_t total = 0;
    for (const auto& w : writers_) total += w->appended();
    return total;
}

std::uint64_t SegmentStore::appended_bytes() const {
    std::uint64_t total = 0;
    for (const auto& w : writers_) total += w->appended_bytes();
    return total;
}

std::uint64_t SegmentStore::errors() const {
    std::uint64_t total = 0;
    for (const auto& w : writers_) total += w->errors();
    return total;
}

std::uint64_t SegmentStore::segments_sealed() const {
    std::lock_guard<std::mutex> lock(sealed_mutex_);
    return sealed_count_;
}

}  // namespace siren::storage
