#pragma once

/// Umbrella header for the recognition layer — the operational half of the
/// paper's title ("identification AND recognition"):
///  - similarity_index.hpp  inverted 7-gram index; sub-linear fuzzy search
///  - cluster.hpp           union-find similarity clustering (lineages)
///  - registry.hpp          incremental known-software registry

#include "recognize/cluster.hpp"           // IWYU pragma: export
#include "recognize/registry.hpp"          // IWYU pragma: export
#include "recognize/similarity_index.hpp"  // IWYU pragma: export
