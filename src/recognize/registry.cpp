#include "recognize/registry.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "hashing/fnv.hpp"
#include "util/error.hpp"

namespace siren::recognize {

/// Family names live inside the line-oriented, space-separated save format,
/// so every whitespace byte and every control character is a format
/// injection vector: a name carrying '\n' would terminate its `family` line
/// early and leave the remainder to be parsed as an attacker-shaped record.
/// Map the whole hostile class to '_' (labels in the wild are token-shaped
/// already).
std::string sanitize_label(std::string_view name) {
    std::string out(name);
    for (char& c : out) {
        const auto u = static_cast<unsigned char>(c);
        if (u <= ' ' || u == 0x7F) c = '_';
    }
    return out;
}

namespace {

/// Every internal rename path funnels through this: the save format needs
/// names to be nonempty single tokens, so an empty name falls back to the
/// anonymous "family-<id>" form instead of emitting a missing-token line
/// that load() would reject.
std::string family_name_or_default(std::string_view name, FamilyId id) {
    if (name.empty()) return "family-" + std::to_string(id);
    return sanitize_label(name);
}

}  // namespace

Registry::Registry(RegistryOptions options) : options_(options) {}

FamilyId Registry::found_family(std::string_view name_hint) {
    const auto id = static_cast<FamilyId>(families_.size());
    FamilyInfo info;
    info.id = id;
    info.name = family_name_or_default(name_hint, id);
    families_.push_back(std::move(info));
    return id;
}

Observation Registry::observe(const fuzzy::FuzzyDigest& digest, std::string_view name_hint) {
    ++total_sightings_;
    Observation obs;

    const auto matches = index_.query(digest, options_.match_threshold, 1);
    if (matches.empty()) {
        obs.family = found_family(name_hint);
        obs.new_family = true;
        obs.new_exemplar = true;
        exemplar_owner_.push_back(obs.family);
        index_.add(digest);
        auto& fam = families_.mutate(obs.family);
        fam.sightings = 1;
        fam.exemplars = 1;
        return obs;
    }

    obs.family = exemplar_owner_[matches.front().id];
    obs.best_score = matches.front().score;
    auto& fam = families_.mutate(obs.family);
    ++fam.sightings;

    // Post-analysis labeling: the first labeled sighting names an
    // anonymous family (UNKNOWN -> icon in the paper's Table 7 flow).
    if (!name_hint.empty() && fam.name.starts_with("family-")) {
        fam.name = sanitize_label(name_hint);
    }

    // Retain drifted variants as exemplars so the family's reach extends
    // across version chains; near-duplicates (score >= exemplar_add_below)
    // add nothing and are not stored.
    if (obs.best_score < options_.exemplar_add_below &&
        fam.exemplars < options_.max_exemplars_per_family) {
        exemplar_owner_.push_back(obs.family);
        index_.add(digest);
        ++fam.exemplars;
        obs.new_exemplar = true;
    }
    return obs;
}

std::optional<FamilyId> Registry::family_named(std::string_view name) const {
    if (name.empty()) return std::nullopt;
    const std::string wanted = sanitize_label(name);
    // Linear scan: this runs only when a behavioral sighting missed every
    // behavior exemplar (new trace shapes are rare once a fleet warms up),
    // and names mutate through rename/lazy-labeling, which a side map
    // would have to chase through every path.
    for (std::size_t f = 0; f < families_.size(); ++f) {
        const FamilyInfo& fam = families_[f];
        if (fam.name == wanted) return fam.id;
    }
    return std::nullopt;
}

Observation Registry::observe_behavior(const fuzzy::FuzzyDigest& digest,
                                       std::string_view name_hint) {
    ++total_sightings_;
    Observation obs;

    const auto matches = behavior_index_.query(digest, options_.match_threshold, 1);
    if (matches.empty()) {
        // No known trace shape. Prefer attaching to the family the hint
        // names (that is how content-founded families gain a behavioral
        // signature); found a behavior-only family otherwise.
        if (const auto named = family_named(name_hint)) {
            obs.family = *named;
            auto& fam = families_.mutate(obs.family);
            ++fam.sightings;
            if (fam.behavior_exemplars < options_.max_exemplars_per_family) {
                behavior_owner_.push_back(obs.family);
                behavior_index_.add(digest);
                ++fam.behavior_exemplars;
                obs.new_exemplar = true;
            }
            return obs;
        }
        obs.family = found_family(name_hint);
        obs.new_family = true;
        obs.new_exemplar = true;
        behavior_owner_.push_back(obs.family);
        behavior_index_.add(digest);
        auto& fam = families_.mutate(obs.family);
        fam.sightings = 1;
        fam.behavior_exemplars = 1;
        return obs;
    }

    obs.family = behavior_owner_[matches.front().id];
    obs.best_score = matches.front().score;
    auto& fam = families_.mutate(obs.family);
    ++fam.sightings;
    if (!name_hint.empty() && fam.name.starts_with("family-")) {
        fam.name = sanitize_label(name_hint);
    }
    if (obs.best_score < options_.exemplar_add_below &&
        fam.behavior_exemplars < options_.max_exemplars_per_family) {
        behavior_owner_.push_back(obs.family);
        behavior_index_.add(digest);
        ++fam.behavior_exemplars;
        obs.new_exemplar = true;
    }
    return obs;
}

std::optional<Observation> Registry::best_match(const fuzzy::FuzzyDigest& digest) const {
    const auto matches = index_.query(digest, options_.match_threshold, 1);
    if (matches.empty()) return std::nullopt;
    Observation obs;
    obs.family = exemplar_owner_[matches.front().id];
    obs.best_score = matches.front().score;
    return obs;
}

std::optional<Observation> Registry::best_match_behavior(
    const fuzzy::FuzzyDigest& digest) const {
    const auto matches = behavior_index_.query(digest, options_.match_threshold, 1);
    if (matches.empty()) return std::nullopt;
    Observation obs;
    obs.family = behavior_owner_[matches.front().id];
    obs.best_score = matches.front().score;
    return obs;
}

std::vector<Observation> Registry::top_families(const fuzzy::FuzzyDigest& digest,
                                                std::size_t k) const {
    std::vector<Observation> out;
    if (k == 0) return out;
    // The index ranks exemplars best-first, so the first hit per family is
    // that family's best score. No top_n cap on the index query: the k
    // requested *families* may hide behind many exemplars of one family.
    const auto matches = index_.query(digest, options_.match_threshold, 0);
    std::vector<bool> seen(families_.size(), false);
    for (const auto& m : matches) {
        const FamilyId fam = exemplar_owner_[m.id];
        if (seen[fam]) continue;
        seen[fam] = true;
        Observation obs;
        obs.family = fam;
        obs.best_score = m.score;
        out.push_back(obs);
        if (out.size() == k) break;
    }
    return out;
}

std::vector<Observation> Registry::top_families_behavior(const fuzzy::FuzzyDigest& digest,
                                                         std::size_t k) const {
    std::vector<Observation> out;
    if (k == 0) return out;
    const auto matches = behavior_index_.query(digest, options_.match_threshold, 0);
    std::vector<bool> seen(families_.size(), false);
    for (const auto& m : matches) {
        const FamilyId fam = behavior_owner_[m.id];
        if (seen[fam]) continue;
        seen[fam] = true;
        Observation obs;
        obs.family = fam;
        obs.best_score = m.score;
        out.push_back(obs);
        if (out.size() == k) break;
    }
    return out;
}

int Registry::fuse_scores(int content_score, int behavior_score, bool both_probed) const {
    // With a single probe only that channel can score, so the fused value
    // is a pass-through. With both probes supplied, a channel that found
    // nothing contributes its zero to the weighted mean — a family the
    // probe matched on both channels must outrank a family one channel
    // matched marginally harder, or fusion would be worse than either
    // channel alone whenever they disagree.
    if (!both_probed) return std::max(content_score, behavior_score);
    const int wc = options_.content_weight;
    const int wb = options_.behavior_weight;
    if (wc + wb <= 0) return std::max(content_score, behavior_score);
    return (wc * content_score + wb * behavior_score) / (wc + wb);
}

std::vector<FusedMatch> Registry::top_families_fused(const fuzzy::FuzzyDigest* content,
                                                     const fuzzy::FuzzyDigest* behavior,
                                                     std::size_t k) const {
    std::vector<FusedMatch> out;
    if (k == 0) return out;
    // Best per-channel score per family; 0 = "this channel had no match at
    // or above threshold" (channel scores of matched exemplars are always
    // >= match_threshold > 0, so 0 is unambiguous as a sentinel).
    std::vector<int> content_best(families_.size(), 0);
    std::vector<int> behavior_best(families_.size(), 0);
    if (content != nullptr) {
        for (const auto& m : index_.query(*content, options_.match_threshold, 0)) {
            int& best = content_best[exemplar_owner_[m.id]];
            if (m.score > best) best = m.score;
        }
    }
    if (behavior != nullptr) {
        for (const auto& m :
             behavior_index_.query(*behavior, options_.match_threshold, 0)) {
            int& best = behavior_best[behavior_owner_[m.id]];
            if (m.score > best) best = m.score;
        }
    }
    const bool both_probed = content != nullptr && behavior != nullptr;
    for (FamilyId fam = 0; fam < families_.size(); ++fam) {
        if (content_best[fam] == 0 && behavior_best[fam] == 0) continue;
        FusedMatch match;
        match.family = fam;
        match.content_score = content_best[fam];
        match.behavior_score = behavior_best[fam];
        match.score = fuse_scores(match.content_score, match.behavior_score, both_probed);
        out.push_back(match);
    }
    // Fused score descending, family id ascending on ties: the ranking
    // must be bit-deterministic for the replication convergence audit and
    // the gated bench.
    std::sort(out.begin(), out.end(), [](const FusedMatch& a, const FusedMatch& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.family < b.family;
    });
    if (out.size() > k) out.resize(k);
    return out;
}

std::size_t Registry::fused_family_count() const {
    std::size_t fused = 0;
    for (std::size_t f = 0; f < families_.size(); ++f) {
        const FamilyInfo& fam = families_[f];
        if (fam.exemplars > 0 && fam.behavior_exemplars > 0) ++fused;
    }
    return fused;
}

std::vector<FamilyInfo> Registry::families() const {
    std::vector<FamilyInfo> out;
    out.reserve(families_.size());
    for (std::size_t f = 0; f < families_.size(); ++f) out.push_back(families_[f]);
    return out;
}

const FamilyInfo& Registry::family(FamilyId id) const { return families_.at(id); }

void Registry::rename(FamilyId id, std::string_view name) {
    if (id >= families_.size()) throw std::out_of_range("registry: unknown family id");
    families_.mutate(id).name = family_name_or_default(name, id);
}

void Registry::merge(const Registry& other) {
    // Group the other registry's exemplars by family and channel, in
    // digest-id order (the order they were retained, oldest anchor first).
    std::vector<std::vector<DigestId>> exemplars_of(other.families_.size());
    for (std::size_t i = 0; i < other.exemplar_owner_.size(); ++i) {
        exemplars_of[other.exemplar_owner_[i]].push_back(static_cast<DigestId>(i));
    }
    std::vector<std::vector<DigestId>> behavior_of(other.families_.size());
    for (std::size_t i = 0; i < other.behavior_owner_.size(); ++i) {
        behavior_of[other.behavior_owner_[i]].push_back(static_cast<DigestId>(i));
    }

    for (std::size_t f = 0; f < other.families_.size(); ++f) {
        const FamilyInfo& fam = other.families_[f];
        // Anchor: the first exemplar that matches an existing family here —
        // content first (the stronger signal), behavior as fallback for
        // behavior-only families.
        FamilyId target = 0;
        bool matched = false;
        for (const DigestId ex : exemplars_of[fam.id]) {
            const auto hits =
                index_.query(other.index_.digest(ex), options_.match_threshold, 1);
            if (!hits.empty()) {
                target = exemplar_owner_[hits.front().id];
                matched = true;
                break;
            }
        }
        for (std::size_t i = 0; !matched && i < behavior_of[fam.id].size(); ++i) {
            const auto hits = behavior_index_.query(
                other.behavior_index_.digest(behavior_of[fam.id][i]),
                options_.match_threshold, 1);
            if (!hits.empty()) {
                target = behavior_owner_[hits.front().id];
                matched = true;
            }
        }
        if (!matched) {
            const bool anonymous = fam.name.starts_with("family-");
            target = found_family(anonymous ? std::string_view{} : std::string_view(fam.name));
        } else if (!fam.name.starts_with("family-") &&
                   families_[target].name.starts_with("family-")) {
            families_.mutate(target).name = fam.name;  // the incoming side had the label
        }

        auto& target_fam = families_.mutate(target);
        target_fam.sightings += fam.sightings;
        total_sightings_ += fam.sightings;

        // Import exemplars that add reach, under each channel's budget.
        for (const DigestId ex : exemplars_of[fam.id]) {
            if (target_fam.exemplars >= options_.max_exemplars_per_family) break;
            const auto& digest = other.index_.digest(ex);
            const auto near = index_.query(digest, options_.exemplar_add_below, 1);
            const bool redundant =
                !near.empty() && exemplar_owner_[near.front().id] == target;
            if (redundant) continue;
            exemplar_owner_.push_back(target);
            index_.add(digest);
            ++target_fam.exemplars;
        }
        for (const DigestId ex : behavior_of[fam.id]) {
            if (target_fam.behavior_exemplars >= options_.max_exemplars_per_family) break;
            const auto& digest = other.behavior_index_.digest(ex);
            const auto near =
                behavior_index_.query(digest, options_.exemplar_add_below, 1);
            const bool redundant =
                !near.empty() && behavior_owner_[near.front().id] == target;
            if (redundant) continue;
            behavior_owner_.push_back(target);
            behavior_index_.add(digest);
            ++target_fam.behavior_exemplars;
        }
    }
}

void Registry::save(std::ostream& out) const {
    for (std::size_t f = 0; f < families_.size(); ++f) {
        const FamilyInfo& fam = families_[f];
        // Names were sanitized on the way in (found_family/rename/merge),
        // but save is the format boundary — re-sanitize so no future code
        // path that smuggles raw bytes into FamilyInfo::name can corrupt
        // the line framing.
        out << "family " << fam.id << ' ' << fam.sightings << ' '
            << family_name_or_default(fam.name, fam.id) << '\n';
    }
    for (std::size_t i = 0; i < exemplar_owner_.size(); ++i) {
        out << "exemplar " << exemplar_owner_[i] << ' '
            << index_.digest(static_cast<DigestId>(i)).to_string() << '\n';
    }
    // Behavior exemplars follow content ones: old save files (no
    // bexemplar lines) stay loadable, and fingerprint() — which hashes
    // this text — covers the behavior channel with no extra code, so
    // behavioral divergence between replicas is as loud as content
    // divergence.
    for (std::size_t i = 0; i < behavior_owner_.size(); ++i) {
        out << "bexemplar " << behavior_owner_[i] << ' '
            << behavior_index_.digest(static_cast<DigestId>(i)).to_string() << '\n';
    }
}

std::uint64_t Registry::fingerprint() const {
    // Incremental form of "hash the save-format text": each storage chunk
    // memoizes the fnv1a64 of exactly the save() lines its elements emit,
    // and the fingerprint hashes the ordered sequence of chunk hashes
    // (with a tag byte per section so family/exemplar/bexemplar chunk
    // sequences cannot alias). The chunk layout is a pure function of the
    // element counts the save text encodes, so registries with identical
    // save() text — the replication-convergence equivalence — still have
    // identical fingerprints; a registry that changed by a small delta
    // re-hashes only the chunks the delta touched (memos invalidate on
    // mutation/clone, see util::CowVec).
    std::string combined;
    combined.reserve(8 * (families_.chunk_count() + exemplar_owner_.chunk_count() +
                          behavior_owner_.chunk_count()) +
                     3);
    const auto append_hash = [&combined](std::uint64_t h) {
        for (int b = 0; b < 8; ++b) {
            combined.push_back(static_cast<char>((h >> (8 * b)) & 0xFF));
        }
    };
    std::string scratch;

    combined.push_back('f');
    for (std::size_t c = 0; c < families_.chunk_count(); ++c) {
        append_hash(families_.chunk_memo(
            c, [&](std::size_t base, const std::vector<FamilyInfo>& items) {
                (void)base;
                scratch.clear();
                for (const FamilyInfo& fam : items) {
                    scratch += "family ";
                    scratch += std::to_string(fam.id);
                    scratch += ' ';
                    scratch += std::to_string(fam.sightings);
                    scratch += ' ';
                    scratch += family_name_or_default(fam.name, fam.id);
                    scratch += '\n';
                }
                return hash::fnv1a64(scratch);
            }));
    }
    // Owner chunks memoize their whole section slice — owner ids *and* the
    // digest text of the same id range. Digests are immutable once added
    // and every index add pairs with exactly one owner push_back, so an
    // owner chunk's memo invalidates exactly when its slice changes.
    const auto exemplar_section = [&](const char tag, const auto& owners,
                                      const SimilarityIndex& index, std::string_view kind) {
        combined.push_back(tag);
        for (std::size_t c = 0; c < owners.chunk_count(); ++c) {
            append_hash(owners.chunk_memo(
                c, [&](std::size_t base, const std::vector<FamilyId>& items) {
                    scratch.clear();
                    for (std::size_t i = 0; i < items.size(); ++i) {
                        scratch += kind;
                        scratch += ' ';
                        scratch += std::to_string(items[i]);
                        scratch += ' ';
                        scratch += index.digest(static_cast<DigestId>(base + i)).to_string();
                        scratch += '\n';
                    }
                    return hash::fnv1a64(scratch);
                }));
        }
    };
    exemplar_section('e', exemplar_owner_, index_, "exemplar");
    exemplar_section('b', behavior_owner_, behavior_index_, "bexemplar");

    return hash::fnv1a64(combined);
}

std::string Registry::export_range(std::uint64_t lo, std::uint64_t hi) const {
    std::vector<std::string> lines;
    const auto collect = [&](const char kind, const auto& owners, const SimilarityIndex& index) {
        for (std::size_t i = 0; i < owners.size(); ++i) {
            const auto& digest = index.digest(static_cast<DigestId>(i));
            if (digest.block_size < lo || digest.block_size > hi) continue;
            const FamilyInfo& fam = families_[owners[i]];
            // Anonymous families carry the auto-derived "family-<id>" name;
            // the id is registry-local, so canonicalize to "-" or the same
            // stream replayed on another shard would never converge.
            const bool anonymous = fam.name == "family-" + std::to_string(fam.id);
            std::string line(1, kind);
            line.push_back(' ');
            line += digest.to_string();
            line.push_back(' ');
            line += anonymous ? "-" : family_name_or_default(fam.name, fam.id);
            line.push_back('\n');
            lines.push_back(std::move(line));
        }
    };
    collect('x', exemplar_owner_, index_);
    collect('b', behavior_owner_, behavior_index_);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const auto& line : lines) out += line;
    return out;
}

std::uint64_t Registry::fingerprint_range(std::uint64_t lo, std::uint64_t hi) const {
    return hash::fnv1a64(export_range(lo, hi));
}

Registry::Sharing Registry::sharing_with(const Registry& prev) const {
    Sharing s;
    const auto add_index = [&s](const SimilarityIndex& mine, const SimilarityIndex& theirs) {
        const auto is = mine.sharing_with(theirs);
        s.shared_buckets += is.shared_buckets;
        s.total_buckets += is.total_buckets;
        s.shared_chunks += is.shared_chunks;
        s.total_chunks += is.total_chunks;
    };
    add_index(index_, prev.index_);
    add_index(behavior_index_, prev.behavior_index_);
    const auto add_column = [&s](const auto& mine, const auto& theirs) {
        s.shared_chunks += mine.shared_chunks_with(theirs);
        s.total_chunks += mine.chunk_count();
    };
    add_column(families_, prev.families_);
    add_column(exemplar_owner_, prev.exemplar_owner_);
    add_column(behavior_owner_, prev.behavior_owner_);
    return s;
}

bool Registry::self_check(std::string* why) const {
    const auto fail = [why](std::string message) {
        if (why != nullptr) *why = std::move(message);
        return false;
    };
    if (exemplar_owner_.size() != index_.size()) {
        return fail("content owner column and index sizes disagree");
    }
    if (behavior_owner_.size() != behavior_index_.size()) {
        return fail("behavior owner column and index sizes disagree");
    }
    std::vector<std::size_t> exemplars(families_.size(), 0);
    std::vector<std::size_t> behavior_exemplars(families_.size(), 0);
    for (std::size_t i = 0; i < exemplar_owner_.size(); ++i) {
        const FamilyId owner = exemplar_owner_[i];
        if (owner >= families_.size()) return fail("content exemplar owned by unknown family");
        ++exemplars[owner];
    }
    for (std::size_t i = 0; i < behavior_owner_.size(); ++i) {
        const FamilyId owner = behavior_owner_[i];
        if (owner >= families_.size()) return fail("behavior exemplar owned by unknown family");
        ++behavior_exemplars[owner];
    }
    std::uint64_t sightings = 0;
    for (std::size_t f = 0; f < families_.size(); ++f) {
        const FamilyInfo& fam = families_[f];
        if (fam.id != f) return fail("family ids are not dense");
        if (fam.exemplars != exemplars[f]) {
            return fail("family content exemplar tally disagrees with owner column");
        }
        if (fam.behavior_exemplars != behavior_exemplars[f]) {
            return fail("family behavior exemplar tally disagrees with owner column");
        }
        sightings += fam.sightings;
    }
    if (sightings != total_sightings_) {
        return fail("total_sightings disagrees with per-family sum");
    }
    return true;
}

Registry Registry::load(std::istream& in, RegistryOptions options) {
    Registry reg(options);
    std::string line;
    std::string trailing;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind == "family") {
            FamilyInfo info;
            fields >> info.id >> info.sightings >> info.name;
            if (fields.fail() || info.id != reg.families_.size() || (fields >> trailing)) {
                throw util::ParseError("registry: bad family line " + std::to_string(line_no));
            }
            reg.families_.push_back(info);
            reg.total_sightings_ += info.sightings;
        } else if (kind == "exemplar") {
            FamilyId owner = 0;
            std::string digest;
            fields >> owner >> digest;
            if (fields.fail() || owner >= reg.families_.size() || (fields >> trailing)) {
                throw util::ParseError("registry: bad exemplar line " + std::to_string(line_no));
            }
            // Clamp to this registry's exemplar budget: a file saved under a
            // larger max_exemplars_per_family must not overshoot the new
            // budget forever (observe() only checks the budget on *add*).
            // Exemplars were saved in retention order, so skipping the
            // overflow keeps the oldest — the family's original anchors.
            if (reg.families_[owner].exemplars >= options.max_exemplars_per_family) continue;
            reg.exemplar_owner_.push_back(owner);
            reg.index_.add(fuzzy::FuzzyDigest::parse(digest));
            ++reg.families_.mutate(owner).exemplars;
        } else if (kind == "bexemplar") {
            FamilyId owner = 0;
            std::string digest;
            fields >> owner >> digest;
            if (fields.fail() || owner >= reg.families_.size() || (fields >> trailing)) {
                throw util::ParseError("registry: bad bexemplar line " +
                                       std::to_string(line_no));
            }
            if (reg.families_[owner].behavior_exemplars >= options.max_exemplars_per_family) {
                continue;
            }
            reg.behavior_owner_.push_back(owner);
            reg.behavior_index_.add(fuzzy::FuzzyDigest::parse(digest));
            ++reg.families_.mutate(owner).behavior_exemplars;
        } else {
            throw util::ParseError("registry: unknown record '" + kind + "' at line " +
                                   std::to_string(line_no));
        }
    }
    return reg;
}

}  // namespace siren::recognize
