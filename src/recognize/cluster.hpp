#pragma once

#include <cstdint>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "recognize/similarity_index.hpp"
#include "util/thread_pool.hpp"

namespace siren::recognize {

/// Disjoint-set forest with union by rank and path halving.
/// The substrate for similarity clustering: digests are nodes, scores at
/// or above the threshold are edges, clusters are connected components.
class UnionFind {
public:
    explicit UnionFind(std::size_t n);

    /// Representative of x's component (with path halving; amortized
    /// near-constant).
    std::size_t find(std::size_t x);

    /// Merge the components of a and b; false when already joined.
    bool unite(std::size_t a, std::size_t b);

    /// Number of elements.
    std::size_t size() const { return parent_.size(); }

    /// Current number of disjoint components.
    std::size_t components() const { return components_; }

private:
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint8_t> rank_;
    std::size_t components_;
};

/// Options for cluster_digests.
struct ClusterOptions {
    /// Minimum fuzzy::compare score for two digests to be joined.
    /// The paper's Table 7 ladder suggests >= ~60 keeps same-software
    /// variants together while unrelated codes score 0.
    int threshold = 60;

    /// Worker pool for the scoring stage; nullptr = single-threaded.
    util::ThreadPool* pool = nullptr;
};

/// Group digests into similarity clusters (connected components of the
/// "score >= threshold" graph). This is SIREN's *recognition* primitive at
/// corpus scale: each cluster is one software lineage — the same
/// application across versions, compilers, and rebuild drift.
///
/// Candidate pairs come from a SimilarityIndex, so the pair scoring stage
/// is near-linear in practice instead of O(n²); scoring parallelizes over
/// the pool, the union-find stage is serial (it is a tiny fraction of the
/// work).
///
/// Returns clusters as member-id vectors (ids = positions in `digests`),
/// each sorted ascending, clusters ordered by size descending then by
/// smallest member. Singletons are included.
std::vector<std::vector<DigestId>> cluster_digests(
    const std::vector<fuzzy::FuzzyDigest>& digests, const ClusterOptions& options = {});

}  // namespace siren::recognize
