#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "recognize/similarity_index.hpp"
#include "util/cow_vec.hpp"

namespace siren::recognize {

/// Identifier of a software family inside a Registry.
using FamilyId = std::uint32_t;

/// The registry's name mapping: every whitespace/control byte becomes '_'.
/// Family names live inside the line-oriented, space-separated save format,
/// so this is the format-injection boundary — exported so protocol clients
/// (serve::QueryClient) apply provably the same rule before shipping a
/// label over the wire.
std::string sanitize_label(std::string_view name);

/// Tuning knobs for Registry::observe.
struct RegistryOptions {
    /// Minimum score against any exemplar to join an existing family.
    int match_threshold = 60;

    /// A sighting scoring below this against its best exemplar is kept as
    /// an additional exemplar (it extends the family's reach across drift:
    /// v1 ~ v2 ~ v3 chains stay one family even when v1 vs v3 scores 0).
    int exemplar_add_below = 95;

    /// Exemplar budget per family *and channel*; bounds memory and query
    /// cost on long-running deployments.
    std::size_t max_exemplars_per_family = 16;

    /// Integer weights of the fused score combiner (top_families_fused):
    /// with both probes supplied, fused = (content_weight * cs +
    /// behavior_weight * bs) / (content_weight + behavior_weight), where a
    /// channel that found no match contributes 0 — so a family both
    /// channels agree on outranks a family one channel matched marginally
    /// harder. With a single probe the channel's score passes through.
    /// Integer math keeps the fused ranking bit-deterministic across
    /// platforms. Content weighs more by default — an exact byte match is
    /// stronger evidence than a similar counter curve.
    int content_weight = 3;
    int behavior_weight = 2;
};

/// Result of one Registry::observe call.
struct Observation {
    FamilyId family = 0;
    int best_score = 0;          ///< against the matched exemplar (0 if new)
    bool new_family = false;     ///< no exemplar reached match_threshold
    bool new_exemplar = false;   ///< sighting was retained as an exemplar
};

/// Per-channel provenance of one fused identification: which signal(s)
/// put this family in the ranking and how strongly each scored.
struct FusedMatch {
    FamilyId family = 0;
    int score = 0;           ///< fused (or single-channel pass-through) score
    int content_score = 0;   ///< 0 when the content channel had no match
    int behavior_score = 0;  ///< 0 when the behavior channel had no match
};

/// Aggregate view of one family.
struct FamilyInfo {
    FamilyId id = 0;
    std::string name;            ///< first non-empty hint, else "family-<id>"
    std::uint64_t sightings = 0;
    std::size_t exemplars = 0;           ///< content-channel exemplars
    std::size_t behavior_exemplars = 0;  ///< behavior-channel exemplars
};

/// Incremental software-recognition registry — the operational form of the
/// paper's use case: "recognition of repeated executions of known
/// applications, and similarity-based identification of unknown
/// applications" (§1).
///
/// Feed it the FILE_H fuzzy digest of every newly seen executable (the
/// same stream a SIREN deployment produces). Each sighting is either
/// matched to an existing family (index-accelerated search over the
/// retained exemplars) or founds a new one. Labels are attached lazily:
/// a family created from an anonymous `a.out` is renamed by the first
/// labeled sighting that lands in it — exactly the paper's post-analysis
/// flow where UNKNOWN resolves to `icon`.
class Registry {
public:
    explicit Registry(RegistryOptions options = {});

    /// Record a sighting. `name_hint` is the derived label when one exists
    /// (file-name regex match); pass empty for nondescript names.
    Observation observe(const fuzzy::FuzzyDigest& digest, std::string_view name_hint = {});

    /// Record a behavioral sighting (a shapelet digest of the process's
    /// runtime counter trace — see src/behavior/shapelet.hpp). Matching
    /// runs against the behavior channel's exemplars only. On a miss, a
    /// non-empty `name_hint` that names an existing family attaches the
    /// trace to it — that is how a family founded by content sightings
    /// grows its behavioral signature and becomes recognizable after its
    /// binary is renamed or recompiled past content-match range; with no
    /// such family the sighting founds a new (behavior-only) one.
    Observation observe_behavior(const fuzzy::FuzzyDigest& digest,
                                 std::string_view name_hint = {});

    /// Best-scoring family for a probe without recording anything;
    /// nullopt when nothing reaches match_threshold.
    std::optional<Observation> best_match(const fuzzy::FuzzyDigest& digest) const;

    /// best_match over the behavior channel.
    std::optional<Observation> best_match_behavior(const fuzzy::FuzzyDigest& digest) const;

    /// The `k` best families for a probe (each family once, scored by its
    /// best exemplar, best first; ties by ascending exemplar id). The
    /// identification view for ambiguous probes — "which known software
    /// does this unknown binary resemble, ranked".
    std::vector<Observation> top_families(const fuzzy::FuzzyDigest& digest,
                                          std::size_t k) const;

    /// top_families over the behavior channel.
    std::vector<Observation> top_families_behavior(const fuzzy::FuzzyDigest& digest,
                                                   std::size_t k) const;

    /// Fused identification: rank families by the weighted combination of
    /// their best content score against `content` and best behavior score
    /// against `behavior` (either probe may be null — the other channel
    /// then carries the ranking alone). Each channel applies
    /// match_threshold before fusion; with both probes supplied a channel
    /// that found nothing contributes 0 to the weighted mean, so
    /// two-channel agreement dominates a lone marginal match. Per-channel
    /// scores survive into the result for provenance. Ties break by
    /// ascending family id — the ranking is bit-deterministic.
    std::vector<FusedMatch> top_families_fused(const fuzzy::FuzzyDigest* content,
                                               const fuzzy::FuzzyDigest* behavior,
                                               std::size_t k) const;

    /// Families, id order.
    std::vector<FamilyInfo> families() const;

    const FamilyInfo& family(FamilyId id) const;

    std::size_t family_count() const { return families_.size(); }
    std::uint64_t total_sightings() const { return total_sightings_; }

    /// Channel sizes, as surfaced in STATS: retained exemplars per channel
    /// and how many families hold signatures in *both* channels.
    std::size_t content_digest_count() const { return exemplar_owner_.size(); }
    std::size_t behavior_digest_count() const { return behavior_owner_.size(); }
    std::size_t fused_family_count() const;

    /// Deterministic 64-bit digest of the full registry state (families in
    /// id order with name and sightings, exemplars in retention order) —
    /// the convergence audit hook of the replication layer: a follower that
    /// applied the same record stream as the leader reports the same
    /// fingerprint, so "did the replica converge" is one integer compare
    /// instead of a family-by-family diff (exposed as `fingerprint` in the
    /// service's STATS response, see docs/replication.md).
    ///
    /// Computed incrementally: each immutable storage chunk memoizes the
    /// hash of its canonical text (the same lines save() emits), and the
    /// fingerprint is a hash over the ordered chunk hashes — so a registry
    /// that changed by a small delta since the last call re-hashes only
    /// the touched chunks. Two registries with identical save() text have
    /// identical chunk layouts (layout is a pure function of element
    /// counts), hence identical fingerprints.
    std::uint64_t fingerprint() const;

    /// Canonical text of the registry state restricted to exemplars whose
    /// digest block size lies in [lo, hi] — the unit a partition rebalance
    /// moves and audits (docs/sharding.md). One line per in-range exemplar,
    ///   `x <digest> <label>`   (content channel)
    ///   `b <digest> <label>`   (behavior channel)
    /// where label is the owning family's name, or `-` when the family is
    /// anonymous (its name is still the auto-derived "family-<id>" form:
    /// ids are registry-local and would never survive a replay on another
    /// shard). Lines are sorted, so two registries that saw the same
    /// in-range sightings in different orders — or interleaved with
    /// different out-of-range traffic — export identical text. Sighting
    /// counts are deliberately excluded: they tally per family, not per
    /// block size, so no per-range conservation holds for them.
    std::string export_range(std::uint64_t lo, std::uint64_t hi) const;

    /// fnv1a64 of export_range(lo, hi) — the one-integer convergence check
    /// a rebalance polls (FPRANGE verb) before cutting a range over.
    /// O(in-range exemplars) per call, not memoized: rebalances are rare
    /// and polled at human cadence, unlike STATS' full fingerprint.
    std::uint64_t fingerprint_range(std::uint64_t lo, std::uint64_t hi) const;

    /// Structural sharing between this registry and `prev` (typically the
    /// previously published snapshot): buckets and chunks — index bucket
    /// chunks, digest chunks, family and owner-column chunks — that are
    /// pointer-identical in both. Cost is O(total chunks), independent of
    /// element count; the publish path surfaces the numbers as STATS
    /// counters and the structural-sharing regression test pins them.
    struct Sharing {
        std::size_t shared_buckets = 0;
        std::size_t total_buckets = 0;
        std::size_t shared_chunks = 0;
        std::size_t total_chunks = 0;
    };
    Sharing sharing_with(const Registry& prev) const;

    /// Internal consistency audit — the torn-snapshot oracle for the chaos
    /// harness: owner columns and index sizes agree, every owner id names
    /// an existing family, per-family exemplar tallies match the columns,
    /// and total_sightings is conserved. A snapshot assembled from a
    /// half-mutated registry would trip one of these. O(registry); returns
    /// false and fills `why` (when non-null) on the first violation.
    bool self_check(std::string* why = nullptr) const;

    /// Channel indexes, for structural-sharing introspection in tests
    /// (bucket_identity / bucket_chunk_identities pointer pins).
    const SimilarityIndex& content_index() const { return index_; }
    const SimilarityIndex& behavior_index() const { return behavior_index_; }

    /// Rename a family (post-analysis labeling).
    void rename(FamilyId id, std::string_view name);

    /// Fold another registry into this one — the multi-receiver deployment
    /// flow (one registry per login node / receiver, merged centrally).
    ///
    /// Each of `other`'s families is re-anchored here: its exemplars are
    /// matched against this registry's exemplars; when any exemplar reaches
    /// match_threshold the whole family folds into the matched family
    /// (keeping this registry's name unless it was anonymous), otherwise
    /// the family is re-founded with its name and exemplars. Sighting
    /// counts are added, so total_sightings is conserved across a merge.
    void merge(const Registry& other);

    /// Line-oriented text persistence (full grammar in
    /// docs/recognition_service.md):
    ///   `family <id> <sightings> <name>`
    ///   `exemplar <family-id> <digest>`
    ///   `bexemplar <family-id> <digest>`   (behavior channel)
    /// Names are stored with every whitespace/control byte mapped to `_`
    /// (the label vocabulary in the wild is token-shaped already); the
    /// mapping happens when names enter the registry and again defensively
    /// at save time, so a hostile hint can never corrupt the line framing.
    void save(std::ostream& out) const;

    /// Rebuild a registry from save() output; throws siren::util::ParseError
    /// on malformed input (including trailing junk on a record line). Each
    /// family's exemplars are clamped to `options.max_exemplars_per_family`,
    /// keeping the oldest — a registry saved under a larger budget loads
    /// under the smaller one instead of overshooting it forever.
    static Registry load(std::istream& in, RegistryOptions options = {});

private:
    FamilyId found_family(std::string_view name_hint);
    /// Family whose current name equals sanitize_label(name), if any — the
    /// behavioral attach-by-hint lookup (runs only on a channel miss).
    std::optional<FamilyId> family_named(std::string_view name) const;
    int fuse_scores(int content_score, int behavior_score, bool both_probed) const;

    /// Rows per FamilyInfo chunk. Deliberately small: observe() bumps
    /// `sightings` on a *random* family for every record, so a publish
    /// after a batch of B observes clones up to B family chunks — small
    /// chunks keep that clone cost O(B * rows), flat in registry size.
    static constexpr std::size_t kFamilyChunkRows = 64;
    /// Rows per owner-column chunk. Owner columns are append-only (only
    /// the tail chunk is ever cloned), so larger chunks just mean fewer
    /// pointers per copy. Matches SimilarityIndex::kChunkRows so owner
    /// chunks and digest chunks cover the same id ranges.
    static constexpr std::size_t kOwnerChunkRows = SimilarityIndex::kChunkRows;

    RegistryOptions options_;
    SimilarityIndex index_;           ///< content exemplars, chunked COW buckets
    /// content digest id -> family; chunk memos carry the incremental
    /// fingerprint of the exemplar section (owner + digest text): digests
    /// are immutable once added and every index add pairs with one owner
    /// push_back, so an owner chunk's memo invalidates exactly when its
    /// section's content changes.
    util::CowVec<FamilyId, kOwnerChunkRows> exemplar_owner_;
    SimilarityIndex behavior_index_;  ///< behavior exemplars, chunked COW buckets
    util::CowVec<FamilyId, kOwnerChunkRows> behavior_owner_;  ///< behavior id -> family
    util::CowVec<FamilyInfo, kFamilyChunkRows> families_;
    std::uint64_t total_sightings_ = 0;
};

}  // namespace siren::recognize
