#include "recognize/cluster.hpp"

#include <algorithm>

namespace siren::recognize {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), components_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
}

std::size_t UnionFind::find(std::size_t x) {
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];  // path halving
        x = parent_[x];
    }
    return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = static_cast<std::uint32_t>(ra);
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return true;
}

std::vector<std::vector<DigestId>> cluster_digests(const std::vector<fuzzy::FuzzyDigest>& digests,
                                                   const ClusterOptions& options) {
    SimilarityIndex index;
    for (const auto& d : digests) index.add(d);

    // Stage 1 (parallel): per-digest edge lists over the prepared index.
    // Each digest queries for matches with a *larger* id so every edge
    // appears exactly once, the stage is write-disjoint, and peak memory
    // stays at the filtered half-edge set (not every self/back match).
    std::vector<std::vector<DigestId>> edges(digests.size());
    const auto score_one = [&](std::size_t i) {
        for (const ScoredMatch& m : index.query(digests[i], options.threshold)) {
            if (m.id > i) edges[i].push_back(m.id);
        }
    };
    if (options.pool != nullptr && digests.size() > 1) {
        options.pool->parallel_for(digests.size(), score_one);
    } else {
        for (std::size_t i = 0; i < digests.size(); ++i) score_one(i);
    }

    // Stage 2 (serial): union the edges.
    UnionFind uf(digests.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        for (const DigestId j : edges[i]) uf.unite(i, j);
    }

    // Materialize components.
    std::vector<std::vector<DigestId>> clusters;
    std::vector<std::int64_t> root_to_cluster(digests.size(), -1);
    for (std::size_t i = 0; i < digests.size(); ++i) {
        const std::size_t root = uf.find(i);
        if (root_to_cluster[root] < 0) {
            root_to_cluster[root] = static_cast<std::int64_t>(clusters.size());
            clusters.emplace_back();
        }
        clusters[static_cast<std::size_t>(root_to_cluster[root])].push_back(
            static_cast<DigestId>(i));
    }
    // Members are ascending by construction; order clusters large-first.
    std::sort(clusters.begin(), clusters.end(),
              [](const std::vector<DigestId>& a, const std::vector<DigestId>& b) {
                  if (a.size() != b.size()) return a.size() > b.size();
                  return a.front() < b.front();
              });
    return clusters;
}

}  // namespace siren::recognize
