#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzy/compare.hpp"
#include "fuzzy/ctph.hpp"
#include "fuzzy/prepared.hpp"
#include "util/cow_vec.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace siren::recognize {

/// Identifier of a digest inside a SimilarityIndex (its insertion order).
using DigestId = std::uint32_t;

/// One scored search result.
struct ScoredMatch {
    DigestId id = 0;
    int score = 0;  ///< fuzzy::compare score, 1..100

    friend bool operator==(const ScoredMatch&, const ScoredMatch&) = default;
};

/// Block-size-bucketed prepared-digest index: sub-linear candidate lookup
/// for similarity search over registry-scale corpora.
///
/// Storage is one bucket per distinct block size, each holding its
/// digests' prepared forms plus struct-of-arrays columns per digest part:
/// the Bloom 7-gram signatures (fuzzy::PreparedDigest) and sorted packed
/// 7-gram arrays. A probe at block size bs is comparable only with the
/// bs/2, bs and 2*bs buckets (the digest1/digest2 pairing rule), so a
/// query scans at most three buckets: per candidate an 8-byte signature
/// AND, then — full-length digests saturate a 64-bit Bloom, so the AND
/// mostly gates short and sparse parts — an exact two-pointer merge of
/// sorted gram words, and only confirmed candidates are rescored.
///
/// Bucket storage is segmented into immutable refcounted chunks of
/// kChunkRows rows (BucketChunk) so the whole index copies in O(chunks)
/// pointer copies and two copies structurally share every chunk neither
/// mutated afterwards — the O(delta) snapshot-publication substrate
/// (docs/recognition_service.md). Appends touch only the tail chunk of one
/// bucket; the ownership protocol mirrors util::CowVec: copying (either
/// direction) demotes both instances to copy-on-write, and a mutator
/// clones the bucket header and tail chunk it is about to write unless
/// this instance still owns them.
///
/// Correctness rests on a property of fuzzy::compare: a nonzero score
/// requires either byte-identical collapsed digests or a common substring
/// of kCommonSubstringLength (7) characters between the pair of digest
/// strings that the block-size rule selects. Two strings can share a
/// 7-gram only if their Bloom signatures share a bit (and identical short
/// strings share their whole-string bit), so the signature AND admits a
/// **superset** of all digests scoring > 0 against any probe: false
/// positives are rescored and discarded, false negatives cannot happen.
/// `tests/test_recognize.cpp` asserts this equivalence against brute force
/// over campaign-scale corpora.
class SimilarityIndex {
public:
    /// Rows per immutable bucket chunk (and per digest chunk). Power of
    /// two, small enough that cloning one tail chunk per touched bucket
    /// keeps publish cost O(batch), large enough that the SIMD scan's
    /// per-chunk setup amortizes (the signature bitmap covers a whole
    /// chunk per call).
    static constexpr std::size_t kChunkRows = 256;

    SimilarityIndex() = default;

    /// Copies share every bucket and chunk structurally; both sides fall
    /// back to copy-on-write for subsequent mutation (see class comment).
    SimilarityIndex(const SimilarityIndex& other);
    SimilarityIndex& operator=(const SimilarityIndex& other);
    SimilarityIndex(SimilarityIndex&&) noexcept = default;
    SimilarityIndex& operator=(SimilarityIndex&&) noexcept = default;

    /// Insert a digest; returns its id (insertion order, dense from 0).
    /// Digest parts must respect the kSpamsumLength cap (guaranteed by
    /// fuzzy_hash and FuzzyDigest::parse); a hand-built digest with an
    /// oversize part throws util::Error from the preparation step.
    DigestId add(fuzzy::FuzzyDigest digest);

    /// All candidates scoring >= min_score (clamped to >= 1) against the
    /// probe, best first (ties by ascending id); at most top_n results
    /// (0 = unlimited). Scans only the comparable block-size buckets and
    /// uses min_score to band the edit-distance scan of each rescore.
    /// Like add(), preparing the probe throws util::Error for hand-built
    /// digests whose parts exceed kSpamsumLength (also applies to
    /// query_many).
    std::vector<ScoredMatch> query(const fuzzy::FuzzyDigest& probe, int min_score = 1,
                                   std::size_t top_n = 0) const;

    /// Same, for an already-prepared probe (no per-call preparation work).
    std::vector<ScoredMatch> query(const fuzzy::PreparedDigest& probe, int min_score = 1,
                                   std::size_t top_n = 0) const;

    /// Batch query: one result vector per probe, each with query()'s exact
    /// contract. Probes are prepared once up front; with a pool the scan is
    /// chunked across its workers (results are identical either way).
    std::vector<std::vector<ScoredMatch>> query_many(
        const std::vector<fuzzy::FuzzyDigest>& probes, int min_score = 1,
        std::size_t top_n = 0, util::ThreadPool* pool = nullptr) const;

    /// Same contract as query() but scans every stored digest with the
    /// legacy (unprepared) comparator. Exists as the oracle for recall
    /// tests and the ablation baseline.
    std::vector<ScoredMatch> query_bruteforce(const fuzzy::FuzzyDigest& probe,
                                              int min_score = 1, std::size_t top_n = 0) const;

    /// Number of stored digests.
    std::size_t size() const { return digests_.size(); }

    const fuzzy::FuzzyDigest& digest(DigestId id) const { return digests_.at(id); }

    /// Number of distinct block-size buckets (diagnostics / bench
    /// reporting); bounded by the ~60 possible 3 * 2^k block sizes.
    std::size_t bucket_count() const { return buckets_.size(); }

    // ---- structural-sharing introspection -------------------------------

    /// How much of this index is pointer-identical with `prev` (typically
    /// the previous published snapshot): whole buckets untouched since the
    /// copy, and individual chunks (bucket chunks + digest chunks). The
    /// publish path surfaces these as the shared_buckets / shared_chunks
    /// STATS counters; the structural-sharing regression test pins them.
    struct Sharing {
        std::size_t shared_buckets = 0;
        std::size_t total_buckets = 0;
        std::size_t shared_chunks = 0;
        std::size_t total_chunks = 0;
    };
    Sharing sharing_with(const SimilarityIndex& prev) const;

    /// Stable identity of the bucket holding `block_size` (nullptr when
    /// absent) — pointer-equal across two indexes iff neither touched the
    /// bucket since they were copies of each other.
    const void* bucket_identity(std::uint64_t block_size) const;

    /// Identities of that bucket's chunks, in order (empty when absent).
    std::vector<const void*> bucket_chunk_identities(std::uint64_t block_size) const;

    /// Chunk view of the stored digests (Registry's incremental
    /// fingerprint aligns its memo chunks with these ids).
    std::size_t digest_chunk_count() const { return digests_.chunk_count(); }
    const void* digest_chunk_identity(std::size_t c) const {
        return digests_.chunk_identity(c);
    }

private:
    /// One digest part's worth of scan-side data across a chunk, SoA:
    /// the Bloom signatures contiguously (8 bytes per candidate on the
    /// reject path) and the sorted packed 7-gram arrays flattened with an
    /// offset table (the exact confirm is a two-pointer merge against the
    /// probe's sorted grams — no digest bytes touched until rescore).
    struct PartColumn {
        std::vector<std::uint64_t> sigs;
        std::vector<std::uint64_t> grams;      ///< sorted per digest, flattened
        std::vector<std::uint32_t> gram_ends;  ///< exclusive end per digest
    };

    /// Up to kChunkRows digests of one bucket, immutable once shared.
    struct BucketChunk {
        PartColumn part1;
        PartColumn part2;
        std::vector<DigestId> ids;
        std::vector<fuzzy::PreparedDigest> prepared;

        std::size_t rows() const { return ids.size(); }
    };

    /// All digests sharing one block size: a header over shared chunks.
    /// `chunk_owned` parallels `chunks` and is meaningful only while the
    /// enclosing index owns this Bucket object (bucket_owned_): a cloned
    /// header starts with every chunk demoted to copy-on-write.
    struct Bucket {
        std::uint64_t block_size = 0;
        std::size_t size = 0;  ///< total rows across chunks
        std::vector<std::shared_ptr<BucketChunk>> chunks;
        std::vector<bool> chunk_owned;
    };

    /// Probe-side scratch for one query: each part's sorted packed grams.
    struct ProbeGrams {
        std::array<std::uint64_t, fuzzy::kSpamsumLength> grams1{};
        std::array<std::uint64_t, fuzzy::kSpamsumLength> grams2{};
        std::size_t count1 = 0;
        std::size_t count2 = 0;
    };

    /// How a probe's parts pair with a bucket's (the block-size rule).
    enum class Pairing { kEqual, kProbeCoarser, kCandidateCoarser };

    const Bucket* find_bucket(std::uint64_t block_size) const;
    /// The bucket for `block_size`, cloned first (header only — chunks
    /// stay shared) unless this instance owns it; created when absent.
    Bucket& owned_bucket(std::uint64_t block_size);
    /// The bucket's tail chunk with room for one more row, cloned first
    /// unless owned; a fresh chunk when the tail is full (or none exists).
    BucketChunk& owned_tail_chunk(Bucket& bucket);

    /// Dispatches on util::simd::active_level() per chunk: the scalar scan
    /// is the reference (and the baseline the CI speedup ratio measures);
    /// the SIMD scan computes the same candidate superset with vector
    /// kernels, so both produce identical matches (parity suite).
    void scan_bucket(const Bucket& bucket, const fuzzy::PreparedDigest& probe,
                     const ProbeGrams& probe_grams, Pairing pairing, int min_score,
                     std::vector<ScoredMatch>& matches) const;
    void scan_chunk_scalar(const BucketChunk& chunk, const fuzzy::PreparedDigest& probe,
                           const ProbeGrams& probe_grams, Pairing pairing, int min_score,
                           std::vector<ScoredMatch>& matches) const;
    /// Three-phase vectorized scan: (1) a signature-AND bitmap over the SoA
    /// sig columns, 2-4 candidates per instruction; (2) per survivor, the
    /// exact gram confirm via the galloping/block-compare intersection;
    /// (3) confirmed candidates rescored four at a time (compare_x4).
    void scan_chunk_simd(const BucketChunk& chunk, const fuzzy::PreparedDigest& probe,
                         const ProbeGrams& probe_grams, Pairing pairing, int min_score,
                         util::simd::Level level, std::vector<ScoredMatch>& matches) const;

    std::vector<std::shared_ptr<Bucket>> buckets_;  ///< a handful; linear lookup
    /// Which bucket headers this instance may mutate in place; mutable
    /// because copying demotes the source to copy-on-write too.
    mutable std::vector<bool> bucket_owned_;
    util::CowVec<fuzzy::FuzzyDigest, kChunkRows> digests_;
};

}  // namespace siren::recognize
