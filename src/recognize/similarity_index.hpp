#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fuzzy/compare.hpp"
#include "fuzzy/ctph.hpp"

namespace siren::recognize {

/// Identifier of a digest inside a SimilarityIndex (its insertion order).
using DigestId = std::uint32_t;

/// One scored search result.
struct ScoredMatch {
    DigestId id = 0;
    int score = 0;  ///< fuzzy::compare score, 1..100

    friend bool operator==(const ScoredMatch&, const ScoredMatch&) = default;
};

/// Inverted 7-gram index over fuzzy digests: sub-linear candidate lookup
/// for similarity search, the standard ssdeep-scaling technique.
///
/// Correctness rests on a property of fuzzy::compare: a nonzero score
/// requires either byte-identical collapsed digests or a common substring
/// of kCommonSubstringLength (7) characters between the pair of digest
/// strings that the block-size rule selects. Therefore indexing every
/// 7-gram of every (sequence-collapsed) digest string — tagged with the
/// effective block size it was computed at — yields a candidate set that
/// is a **superset** of all digests scoring > 0 against any probe: the
/// prefilter can return false positives (rescored and discarded) but never
/// false negatives. `tests/test_recognize.cpp` asserts this equivalence
/// against brute force over campaign-scale corpora.
///
/// Block-size tagging covers all three comparable configurations
/// (equal, probe at 2x, candidate at 2x) because each digest is indexed
/// twice: digest1 under its block size and digest2 under twice that, so
/// two entries are comparable exactly when they share a tag.
class SimilarityIndex {
public:
    SimilarityIndex() = default;

    /// Insert a digest; returns its id (insertion order, dense from 0).
    DigestId add(fuzzy::FuzzyDigest digest);

    /// All candidates scoring >= min_score against the probe, best first
    /// (ties by ascending id); at most top_n results (0 = unlimited).
    /// Uses the gram index to restrict rescoring to plausible candidates.
    std::vector<ScoredMatch> query(const fuzzy::FuzzyDigest& probe, int min_score = 1,
                                   std::size_t top_n = 0) const;

    /// Same contract as query() but scans every stored digest. Exists as
    /// the oracle for recall tests and the ablation baseline.
    std::vector<ScoredMatch> query_bruteforce(const fuzzy::FuzzyDigest& probe,
                                              int min_score = 1, std::size_t top_n = 0) const;

    /// Number of stored digests.
    std::size_t size() const { return digests_.size(); }

    const fuzzy::FuzzyDigest& digest(DigestId id) const { return digests_.at(id); }

    /// Number of distinct posting keys (diagnostics / bench reporting).
    std::size_t posting_keys() const { return postings_.size(); }

private:
    void index_string(std::string_view collapsed, std::uint64_t block_tag, DigestId id);
    /// Gathers pointers to the matching posting lists (so callers can size
    /// the candidate buffer before a single concatenation pass).
    void collect_candidates(std::string_view collapsed, std::uint64_t block_tag,
                            std::vector<const std::vector<DigestId>*>& out) const;

    std::vector<fuzzy::FuzzyDigest> digests_;
    std::unordered_map<std::uint64_t, std::vector<DigestId>> postings_;
};

}  // namespace siren::recognize
