#include "recognize/similarity_index.hpp"

#include <algorithm>

#include "hashing/fnv.hpp"

namespace siren::recognize {

namespace {

/// Posting key for a gram (or short whole string) at a block-size tag.
/// The tag participates in the hash so grams only collide within a
/// comparable block-size lane.
std::uint64_t posting_key(std::string_view gram, std::uint64_t block_tag) {
    std::uint64_t h = hash::fnv1a64(gram);
    h ^= block_tag * hash::kFnv64Prime;
    h *= hash::kFnv64Prime;
    return h;
}

/// Sort matches best-first, break ties by id, truncate to top_n. With a
/// top_n cap only the returned prefix is ordered (partial_sort: O(n log k)
/// instead of O(n log n) — candidate sets run to thousands on campaign
/// corpora while callers typically keep the top handful).
void finalize(std::vector<ScoredMatch>& matches, std::size_t top_n) {
    const auto better = [](const ScoredMatch& a, const ScoredMatch& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.id < b.id;
    };
    if (top_n != 0 && matches.size() > top_n) {
        std::partial_sort(matches.begin(), matches.begin() + static_cast<std::ptrdiff_t>(top_n),
                          matches.end(), better);
        matches.resize(top_n);
    } else {
        std::sort(matches.begin(), matches.end(), better);
    }
}

}  // namespace

DigestId SimilarityIndex::add(fuzzy::FuzzyDigest digest) {
    const auto id = static_cast<DigestId>(digests_.size());
    const std::string c1 = fuzzy::eliminate_sequences(digest.digest1);
    const std::string c2 = fuzzy::eliminate_sequences(digest.digest2);
    index_string(c1, digest.block_size, id);
    index_string(c2, digest.block_size * 2, id);
    digests_.push_back(std::move(digest));
    return id;
}

void SimilarityIndex::index_string(std::string_view collapsed, std::uint64_t block_tag,
                                   DigestId id) {
    if (collapsed.empty()) return;
    const auto push = [this, id](std::uint64_t key) {
        auto& list = postings_[key];
        // The same gram can repeat within one digest; posting lists are
        // per-digest deduplicated because ids arrive in insertion order.
        if (list.empty() || list.back() != id) list.push_back(id);
    };
    if (collapsed.size() < fuzzy::kCommonSubstringLength) {
        // Too short for the common-substring rule: the only way this
        // string contributes to a nonzero score is byte-identical digests
        // (the compare() == 100 fast path), caught by a whole-string key.
        push(posting_key(collapsed, block_tag ^ 0x5349524Eu /* "SIRN" lane */));
        return;
    }
    for (std::size_t i = 0; i + fuzzy::kCommonSubstringLength <= collapsed.size(); ++i) {
        push(posting_key(collapsed.substr(i, fuzzy::kCommonSubstringLength), block_tag));
    }
}

void SimilarityIndex::collect_candidates(std::string_view collapsed, std::uint64_t block_tag,
                                         std::vector<const std::vector<DigestId>*>& out) const {
    if (collapsed.empty()) return;
    const auto gather = [this, &out](std::uint64_t key) {
        const auto it = postings_.find(key);
        if (it != postings_.end()) out.push_back(&it->second);
    };
    if (collapsed.size() < fuzzy::kCommonSubstringLength) {
        gather(posting_key(collapsed, block_tag ^ 0x5349524Eu));
        return;
    }
    for (std::size_t i = 0; i + fuzzy::kCommonSubstringLength <= collapsed.size(); ++i) {
        gather(posting_key(collapsed.substr(i, fuzzy::kCommonSubstringLength), block_tag));
    }
}

std::vector<ScoredMatch> SimilarityIndex::query(const fuzzy::FuzzyDigest& probe, int min_score,
                                                std::size_t top_n) const {
    // Two-phase gather: resolve the posting lists first so the candidate
    // buffer is reserved in one shot instead of growing through appends.
    std::vector<const std::vector<DigestId>*> lists;
    const std::string c1 = fuzzy::eliminate_sequences(probe.digest1);
    const std::string c2 = fuzzy::eliminate_sequences(probe.digest2);
    collect_candidates(c1, probe.block_size, lists);
    collect_candidates(c2, probe.block_size * 2, lists);

    std::size_t upper_bound = 0;
    for (const auto* list : lists) upper_bound += list->size();
    std::vector<DigestId> candidates;
    candidates.reserve(upper_bound);
    for (const auto* list : lists) candidates.insert(candidates.end(), list->begin(), list->end());

    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

    std::vector<ScoredMatch> matches;
    for (const DigestId id : candidates) {
        const int score = fuzzy::compare(probe, digests_[id]);
        if (score >= min_score) matches.push_back({id, score});
    }
    finalize(matches, top_n);
    return matches;
}

std::vector<ScoredMatch> SimilarityIndex::query_bruteforce(const fuzzy::FuzzyDigest& probe,
                                                           int min_score,
                                                           std::size_t top_n) const {
    std::vector<ScoredMatch> matches;
    for (DigestId id = 0; id < digests_.size(); ++id) {
        const int score = fuzzy::compare(probe, digests_[id]);
        if (score >= min_score) matches.push_back({id, score});
    }
    finalize(matches, top_n);
    return matches;
}

}  // namespace siren::recognize
