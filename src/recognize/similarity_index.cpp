#include "recognize/similarity_index.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

namespace siren::recognize {

namespace {

/// Sort matches best-first, break ties by id, truncate to top_n. With a
/// top_n cap only the returned prefix is ordered (partial_sort: O(n log k)
/// instead of O(n log n) — candidate sets run to thousands on campaign
/// corpora while callers typically keep the top handful).
void finalize(std::vector<ScoredMatch>& matches, std::size_t top_n) {
    const auto better = [](const ScoredMatch& a, const ScoredMatch& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.id < b.id;
    };
    if (top_n != 0 && matches.size() > top_n) {
        std::partial_sort(matches.begin(), matches.begin() + static_cast<std::ptrdiff_t>(top_n),
                          matches.end(), better);
        matches.resize(top_n);
    } else {
        std::sort(matches.begin(), matches.end(), better);
    }
}

bool intersect_sorted(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
                      std::size_t nb) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

}  // namespace

SimilarityIndex::SimilarityIndex(const SimilarityIndex& other)
    : buckets_(other.buckets_),
      bucket_owned_(other.buckets_.size(), false),
      digests_(other.digests_) {
    // Both sides now reach the same bucket headers: demote the source to
    // copy-on-write as well (same protocol as util::CowVec — the digests_
    // member copy above already did this for the digest chunks).
    other.bucket_owned_.assign(other.buckets_.size(), false);
}

SimilarityIndex& SimilarityIndex::operator=(const SimilarityIndex& other) {
    if (this == &other) return *this;
    buckets_ = other.buckets_;
    bucket_owned_.assign(buckets_.size(), false);
    other.bucket_owned_.assign(other.buckets_.size(), false);
    digests_ = other.digests_;
    return *this;
}

SimilarityIndex::Bucket& SimilarityIndex::owned_bucket(std::uint64_t block_size) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i]->block_size != block_size) continue;
        if (!bucket_owned_[i]) {
            // Header clone only: the chunk pointers are shared with the
            // original, so the clone starts with every chunk demoted to
            // copy-on-write.
            auto clone = std::make_shared<Bucket>(*buckets_[i]);
            clone->chunk_owned.assign(clone->chunks.size(), false);
            buckets_[i] = std::move(clone);
            bucket_owned_[i] = true;
        }
        return *buckets_[i];
    }
    auto fresh = std::make_shared<Bucket>();
    fresh->block_size = block_size;
    buckets_.push_back(std::move(fresh));
    bucket_owned_.push_back(true);
    return *buckets_.back();
}

SimilarityIndex::BucketChunk& SimilarityIndex::owned_tail_chunk(Bucket& bucket) {
    if (bucket.chunks.empty() || bucket.chunks.back()->rows() == kChunkRows) {
        bucket.chunks.push_back(std::make_shared<BucketChunk>());
        bucket.chunk_owned.push_back(true);
    } else if (!bucket.chunk_owned.back()) {
        bucket.chunks.back() = std::make_shared<BucketChunk>(*bucket.chunks.back());
        bucket.chunk_owned.back() = true;
    }
    return *bucket.chunks.back();
}

DigestId SimilarityIndex::add(fuzzy::FuzzyDigest digest) {
    const auto id = static_cast<DigestId>(digests_.size());
    fuzzy::PreparedDigest prepared(digest);

    Bucket& bucket = owned_bucket(digest.block_size);
    BucketChunk& chunk = owned_tail_chunk(bucket);

    // Append one SoA row per part: the Bloom signature plus the sorted
    // packed gram array (empty for parts shorter than 7 chars).
    const auto push_part = [](PartColumn& column, std::uint64_t sig, std::string_view part) {
        column.sigs.push_back(sig);
        std::array<std::uint64_t, fuzzy::kSpamsumLength> grams;
        const std::size_t count = fuzzy::pack_grams(part, grams.data());
        std::sort(grams.begin(), grams.begin() + static_cast<std::ptrdiff_t>(count));
        column.grams.insert(column.grams.end(), grams.begin(),
                            grams.begin() + static_cast<std::ptrdiff_t>(count));
        column.gram_ends.push_back(static_cast<std::uint32_t>(column.grams.size()));
    };
    push_part(chunk.part1, prepared.signature1(), prepared.part1());
    push_part(chunk.part2, prepared.signature2(), prepared.part2());
    chunk.ids.push_back(id);
    chunk.prepared.push_back(prepared);
    ++bucket.size;

    digests_.push_back(std::move(digest));
    return id;
}

const SimilarityIndex::Bucket* SimilarityIndex::find_bucket(std::uint64_t block_size) const {
    for (const auto& b : buckets_) {
        if (b->block_size == block_size) return b.get();
    }
    return nullptr;
}

const void* SimilarityIndex::bucket_identity(std::uint64_t block_size) const {
    return find_bucket(block_size);
}

std::vector<const void*> SimilarityIndex::bucket_chunk_identities(
    std::uint64_t block_size) const {
    std::vector<const void*> out;
    if (const Bucket* b = find_bucket(block_size)) {
        out.reserve(b->chunks.size());
        for (const auto& chunk : b->chunks) out.push_back(chunk.get());
    }
    return out;
}

SimilarityIndex::Sharing SimilarityIndex::sharing_with(const SimilarityIndex& prev) const {
    std::unordered_set<const void*> prior;
    for (const auto& b : prev.buckets_) {
        prior.insert(b.get());
        for (const auto& chunk : b->chunks) prior.insert(chunk.get());
    }
    for (std::size_t c = 0; c < prev.digests_.chunk_count(); ++c) {
        prior.insert(prev.digests_.chunk_identity(c));
    }

    Sharing s;
    s.total_buckets = buckets_.size();
    for (const auto& b : buckets_) {
        if (prior.contains(b.get())) ++s.shared_buckets;
        for (const auto& chunk : b->chunks) {
            ++s.total_chunks;
            if (prior.contains(chunk.get())) ++s.shared_chunks;
        }
    }
    for (std::size_t c = 0; c < digests_.chunk_count(); ++c) {
        ++s.total_chunks;
        if (prior.contains(digests_.chunk_identity(c))) ++s.shared_chunks;
    }
    return s;
}

void SimilarityIndex::scan_bucket(const Bucket& bucket, const fuzzy::PreparedDigest& probe,
                                  const ProbeGrams& probe_grams, Pairing pairing, int min_score,
                                  std::vector<ScoredMatch>& matches) const {
    const auto level = util::simd::active_level();
    for (const auto& chunk : bucket.chunks) {
        if (level == util::simd::Level::kScalar) {
            scan_chunk_scalar(*chunk, probe, probe_grams, pairing, min_score, matches);
        } else {
            scan_chunk_simd(*chunk, probe, probe_grams, pairing, min_score, level, matches);
        }
    }
}

void SimilarityIndex::scan_chunk_scalar(const BucketChunk& chunk,
                                        const fuzzy::PreparedDigest& probe,
                                        const ProbeGrams& probe_grams, Pairing pairing,
                                        int min_score,
                                        std::vector<ScoredMatch>& matches) const {
    // Plausibility of one (probe part, candidate part) pair — the pair the
    // block-size rule will actually score. A nonzero compare() needs
    // byte-identical collapsed digests or a shared 7-gram in this pair;
    // grams imply the signature AND and the sorted-gram intersection both
    // fire, identical short parts share their whole-string Bloom bit and
    // pass the equality arm. False positives rescore to < min_score and
    // drop; false negatives cannot happen.
    const auto part_plausible = [&](std::uint64_t probe_sig, const std::uint64_t* grams,
                                    std::size_t gram_count, std::string_view probe_part,
                                    const PartColumn& column, std::size_t i,
                                    std::string_view candidate_part) {
        if ((probe_sig & column.sigs[i]) == 0) return false;
        const std::size_t begin = i == 0 ? 0 : column.gram_ends[i - 1];
        const std::size_t end = column.gram_ends[i];
        if (gram_count != 0 && end != begin) {
            return intersect_sorted(grams, gram_count, column.grams.data() + begin,
                                    end - begin);
        }
        // At least one side is shorter than a 7-gram: only byte-identical
        // parts can contribute (the == 100 fast path).
        return !probe_part.empty() && probe_part == candidate_part;
    };

    const std::size_t n = chunk.rows();
    for (std::size_t i = 0; i < n; ++i) {
        bool plausible = false;
        switch (pairing) {
            case Pairing::kEqual:
                plausible =
                    part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                   probe_grams.count1, probe.part1(), chunk.part1, i,
                                   chunk.prepared[i].part1()) ||
                    part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                   probe_grams.count2, probe.part2(), chunk.part2, i,
                                   chunk.prepared[i].part2());
                break;
            case Pairing::kProbeCoarser:  // probe bs == 2 * candidate bs
                plausible = part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                           probe_grams.count1, probe.part1(), chunk.part2, i,
                                           chunk.prepared[i].part2());
                break;
            case Pairing::kCandidateCoarser:  // candidate bs == 2 * probe bs
                plausible = part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                           probe_grams.count2, probe.part2(), chunk.part1, i,
                                           chunk.prepared[i].part1());
                break;
        }
        if (!plausible) continue;
        const int score = fuzzy::compare(probe, chunk.prepared[i], min_score);
        if (score >= min_score) matches.push_back({chunk.ids[i], score});
    }
}

void SimilarityIndex::scan_chunk_simd(const BucketChunk& chunk,
                                      const fuzzy::PreparedDigest& probe,
                                      const ProbeGrams& probe_grams, Pairing pairing,
                                      int min_score, util::simd::Level level,
                                      std::vector<ScoredMatch>& matches) const {
    namespace simd = util::simd;

    // Same contract as the scalar part_plausible, with the exact confirm
    // routed through the vector/galloping intersection (identical answers).
    const auto part_plausible = [&](std::uint64_t probe_sig, const std::uint64_t* grams,
                                    std::size_t gram_count, std::string_view probe_part,
                                    const PartColumn& column, std::size_t i,
                                    std::string_view candidate_part) {
        if ((probe_sig & column.sigs[i]) == 0) return false;
        const std::size_t begin = i == 0 ? 0 : column.gram_ends[i - 1];
        const std::size_t end = column.gram_ends[i];
        if (gram_count != 0 && end != begin) {
            return simd::sorted_intersect(grams, gram_count, column.grams.data() + begin,
                                          end - begin, level);
        }
        return !probe_part.empty() && probe_part == candidate_part;
    };
    // Bitmap survivors re-run the per-part signature AND above: for the
    // equal pairing the OR-bitmap cannot say which side fired, and for the
    // coarser pairings the recheck is one load against a column already in
    // cache.
    const auto plausible_at = [&](std::size_t i) {
        switch (pairing) {
            case Pairing::kEqual:
                return part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                      probe_grams.count1, probe.part1(), chunk.part1, i,
                                      chunk.prepared[i].part1()) ||
                       part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                      probe_grams.count2, probe.part2(), chunk.part2, i,
                                      chunk.prepared[i].part2());
            case Pairing::kProbeCoarser:
                return part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                      probe_grams.count1, probe.part1(), chunk.part2, i,
                                      chunk.prepared[i].part2());
            case Pairing::kCandidateCoarser:
                return part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                      probe_grams.count2, probe.part2(), chunk.part1, i,
                                      chunk.prepared[i].part1());
        }
        return false;
    };

    // Confirmed candidates rescore four at a time; compare_x4 reproduces
    // compare() per lane, so scores (and thus matches) are unchanged.
    const fuzzy::PreparedDigest* pending[4];
    std::size_t pending_at[4];
    std::size_t n_pending = 0;
    const auto flush_pending = [&] {
        int scores[4];
        fuzzy::compare_x4(probe, pending, n_pending, min_score, scores);
        for (std::size_t k = 0; k < n_pending; ++k) {
            if (scores[k] >= min_score) {
                matches.push_back({chunk.ids[pending_at[k]], scores[k]});
            }
        }
        n_pending = 0;
    };

    // Phase 1: the signature prefilter as a vectorized bitmap over the
    // chunk's SoA sig columns — a chunk is at most kChunkRows rows, so the
    // bitmap lives on the stack and the sig stream fits one L1 round.
    std::uint64_t bitmap[kChunkRows / 64];
    const std::size_t m = chunk.rows();
    switch (pairing) {
        case Pairing::kEqual:
            simd::sig_gate_bitmap_or(chunk.part1.sigs.data(), probe.signature1(),
                                     chunk.part2.sigs.data(), probe.signature2(), m, bitmap,
                                     level);
            break;
        case Pairing::kProbeCoarser:
            simd::sig_gate_bitmap(chunk.part2.sigs.data(), m, probe.signature1(), bitmap,
                                  level);
            break;
        case Pairing::kCandidateCoarser:
            simd::sig_gate_bitmap(chunk.part1.sigs.data(), m, probe.signature2(), bitmap,
                                  level);
            break;
    }
    const std::size_t words = (m + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = bitmap[w];
        while (bits != 0) {
            const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::size_t i = w * 64 + bit;
            if (!plausible_at(i)) continue;
            pending[n_pending] = &chunk.prepared[i];
            pending_at[n_pending] = i;
            if (++n_pending == 4) flush_pending();
        }
    }
    flush_pending();
}

std::vector<ScoredMatch> SimilarityIndex::query(const fuzzy::PreparedDigest& probe,
                                                int min_score, std::size_t top_n) const {
    min_score = std::max(min_score, 1);
    std::vector<ScoredMatch> matches;

    // The probe's sorted gram arrays are built once per query and shared
    // by every candidate's two-pointer intersection.
    ProbeGrams probe_grams;
    probe_grams.count1 = fuzzy::pack_grams(probe.part1(), probe_grams.grams1.data());
    probe_grams.count2 = fuzzy::pack_grams(probe.part2(), probe_grams.grams2.data());
    std::sort(probe_grams.grams1.begin(),
              probe_grams.grams1.begin() + static_cast<std::ptrdiff_t>(probe_grams.count1));
    std::sort(probe_grams.grams2.begin(),
              probe_grams.grams2.begin() + static_cast<std::ptrdiff_t>(probe_grams.count2));

    const std::uint64_t bs = probe.block_size();
    if (const Bucket* b = find_bucket(bs)) {
        scan_bucket(*b, probe, probe_grams, Pairing::kEqual, min_score, matches);
    }
    if (bs % 2 == 0) {
        if (const Bucket* b = find_bucket(bs / 2)) {
            scan_bucket(*b, probe, probe_grams, Pairing::kProbeCoarser, min_score, matches);
        }
    }
    if (const Bucket* b = find_bucket(bs * 2)) {
        scan_bucket(*b, probe, probe_grams, Pairing::kCandidateCoarser, min_score, matches);
    }

    finalize(matches, top_n);
    return matches;
}

std::vector<ScoredMatch> SimilarityIndex::query(const fuzzy::FuzzyDigest& probe, int min_score,
                                                std::size_t top_n) const {
    return query(fuzzy::PreparedDigest(probe), min_score, top_n);
}

std::vector<std::vector<ScoredMatch>> SimilarityIndex::query_many(
    const std::vector<fuzzy::FuzzyDigest>& probes, int min_score, std::size_t top_n,
    util::ThreadPool* pool) const {
    std::vector<fuzzy::PreparedDigest> prepared;
    prepared.reserve(probes.size());
    for (const auto& p : probes) prepared.emplace_back(p);

    std::vector<std::vector<ScoredMatch>> results(probes.size());
    const auto query_one = [&](std::size_t i) { results[i] = query(prepared[i], min_score, top_n); };
    if (pool != nullptr && probes.size() > 1) {
        pool->parallel_for(probes.size(), query_one);
    } else {
        for (std::size_t i = 0; i < probes.size(); ++i) query_one(i);
    }
    return results;
}

std::vector<ScoredMatch> SimilarityIndex::query_bruteforce(const fuzzy::FuzzyDigest& probe,
                                                           int min_score,
                                                           std::size_t top_n) const {
    min_score = std::max(min_score, 1);
    std::vector<ScoredMatch> matches;
    for (DigestId id = 0; id < digests_.size(); ++id) {
        const int score = fuzzy::compare(probe, digests_[id]);
        if (score >= min_score) matches.push_back({id, score});
    }
    finalize(matches, top_n);
    return matches;
}

}  // namespace siren::recognize
