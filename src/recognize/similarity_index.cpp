#include "recognize/similarity_index.hpp"

#include <algorithm>
#include <bit>

namespace siren::recognize {

namespace {

/// Sort matches best-first, break ties by id, truncate to top_n. With a
/// top_n cap only the returned prefix is ordered (partial_sort: O(n log k)
/// instead of O(n log n) — candidate sets run to thousands on campaign
/// corpora while callers typically keep the top handful).
void finalize(std::vector<ScoredMatch>& matches, std::size_t top_n) {
    const auto better = [](const ScoredMatch& a, const ScoredMatch& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.id < b.id;
    };
    if (top_n != 0 && matches.size() > top_n) {
        std::partial_sort(matches.begin(), matches.begin() + static_cast<std::ptrdiff_t>(top_n),
                          matches.end(), better);
        matches.resize(top_n);
    } else {
        std::sort(matches.begin(), matches.end(), better);
    }
}

}  // namespace

namespace {

bool intersect_sorted(const std::uint64_t* a, std::size_t na, const std::uint64_t* b,
                      std::size_t nb) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < na && j < nb) {
        if (a[i] < b[j]) {
            ++i;
        } else if (a[i] > b[j]) {
            ++j;
        } else {
            return true;
        }
    }
    return false;
}

}  // namespace

DigestId SimilarityIndex::add(fuzzy::FuzzyDigest digest) {
    const auto id = static_cast<DigestId>(digests_.size());
    fuzzy::PreparedDigest prepared(digest);

    Bucket* bucket = nullptr;
    for (auto& b : buckets_) {
        if (b.block_size == digest.block_size) {
            bucket = &b;
            break;
        }
    }
    if (bucket == nullptr) {
        buckets_.emplace_back();
        bucket = &buckets_.back();
        bucket->block_size = digest.block_size;
    }
    // Append one SoA row per part: the Bloom signature plus the sorted
    // packed gram array (empty for parts shorter than 7 chars).
    const auto push_part = [](PartColumn& column, std::uint64_t sig, std::string_view part) {
        column.sigs.push_back(sig);
        std::array<std::uint64_t, fuzzy::kSpamsumLength> grams;
        const std::size_t count = fuzzy::pack_grams(part, grams.data());
        std::sort(grams.begin(), grams.begin() + static_cast<std::ptrdiff_t>(count));
        column.grams.insert(column.grams.end(), grams.begin(),
                            grams.begin() + static_cast<std::ptrdiff_t>(count));
        column.gram_ends.push_back(static_cast<std::uint32_t>(column.grams.size()));
    };
    push_part(bucket->part1, prepared.signature1(), prepared.part1());
    push_part(bucket->part2, prepared.signature2(), prepared.part2());
    bucket->ids.push_back(id);
    bucket->prepared.push_back(prepared);

    digests_.push_back(std::move(digest));
    return id;
}

const SimilarityIndex::Bucket* SimilarityIndex::find_bucket(std::uint64_t block_size) const {
    for (const auto& b : buckets_) {
        if (b.block_size == block_size) return &b;
    }
    return nullptr;
}

void SimilarityIndex::scan_bucket(const Bucket& bucket, const fuzzy::PreparedDigest& probe,
                                  const ProbeGrams& probe_grams, Pairing pairing, int min_score,
                                  std::vector<ScoredMatch>& matches) const {
    const auto level = util::simd::active_level();
    if (level == util::simd::Level::kScalar) {
        scan_bucket_scalar(bucket, probe, probe_grams, pairing, min_score, matches);
        return;
    }
    scan_bucket_simd(bucket, probe, probe_grams, pairing, min_score, level, matches);
}

void SimilarityIndex::scan_bucket_scalar(const Bucket& bucket,
                                         const fuzzy::PreparedDigest& probe,
                                         const ProbeGrams& probe_grams, Pairing pairing,
                                         int min_score,
                                         std::vector<ScoredMatch>& matches) const {
    // Plausibility of one (probe part, candidate part) pair — the pair the
    // block-size rule will actually score. A nonzero compare() needs
    // byte-identical collapsed digests or a shared 7-gram in this pair;
    // grams imply the signature AND and the sorted-gram intersection both
    // fire, identical short parts share their whole-string Bloom bit and
    // pass the equality arm. False positives rescore to < min_score and
    // drop; false negatives cannot happen.
    const auto part_plausible = [&](std::uint64_t probe_sig, const std::uint64_t* grams,
                                    std::size_t gram_count, std::string_view probe_part,
                                    const PartColumn& column, std::size_t i,
                                    std::string_view candidate_part) {
        if ((probe_sig & column.sigs[i]) == 0) return false;
        const std::size_t begin = i == 0 ? 0 : column.gram_ends[i - 1];
        const std::size_t end = column.gram_ends[i];
        if (gram_count != 0 && end != begin) {
            return intersect_sorted(grams, gram_count, column.grams.data() + begin,
                                    end - begin);
        }
        // At least one side is shorter than a 7-gram: only byte-identical
        // parts can contribute (the == 100 fast path).
        return !probe_part.empty() && probe_part == candidate_part;
    };

    const std::size_t n = bucket.ids.size();
    for (std::size_t i = 0; i < n; ++i) {
        bool plausible = false;
        switch (pairing) {
            case Pairing::kEqual:
                plausible =
                    part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                   probe_grams.count1, probe.part1(), bucket.part1, i,
                                   bucket.prepared[i].part1()) ||
                    part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                   probe_grams.count2, probe.part2(), bucket.part2, i,
                                   bucket.prepared[i].part2());
                break;
            case Pairing::kProbeCoarser:  // probe bs == 2 * candidate bs
                plausible = part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                           probe_grams.count1, probe.part1(), bucket.part2, i,
                                           bucket.prepared[i].part2());
                break;
            case Pairing::kCandidateCoarser:  // candidate bs == 2 * probe bs
                plausible = part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                           probe_grams.count2, probe.part2(), bucket.part1, i,
                                           bucket.prepared[i].part1());
                break;
        }
        if (!plausible) continue;
        const int score = fuzzy::compare(probe, bucket.prepared[i], min_score);
        if (score >= min_score) matches.push_back({bucket.ids[i], score});
    }
}

void SimilarityIndex::scan_bucket_simd(const Bucket& bucket, const fuzzy::PreparedDigest& probe,
                                       const ProbeGrams& probe_grams, Pairing pairing,
                                       int min_score, util::simd::Level level,
                                       std::vector<ScoredMatch>& matches) const {
    namespace simd = util::simd;

    // Same contract as the scalar part_plausible, with the exact confirm
    // routed through the vector/galloping intersection (identical answers).
    const auto part_plausible = [&](std::uint64_t probe_sig, const std::uint64_t* grams,
                                    std::size_t gram_count, std::string_view probe_part,
                                    const PartColumn& column, std::size_t i,
                                    std::string_view candidate_part) {
        if ((probe_sig & column.sigs[i]) == 0) return false;
        const std::size_t begin = i == 0 ? 0 : column.gram_ends[i - 1];
        const std::size_t end = column.gram_ends[i];
        if (gram_count != 0 && end != begin) {
            return simd::sorted_intersect(grams, gram_count, column.grams.data() + begin,
                                          end - begin, level);
        }
        return !probe_part.empty() && probe_part == candidate_part;
    };
    // Bitmap survivors re-run the per-part signature AND above: for the
    // equal pairing the OR-bitmap cannot say which side fired, and for the
    // coarser pairings the recheck is one load against a column already in
    // cache.
    const auto plausible_at = [&](std::size_t i) {
        switch (pairing) {
            case Pairing::kEqual:
                return part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                      probe_grams.count1, probe.part1(), bucket.part1, i,
                                      bucket.prepared[i].part1()) ||
                       part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                      probe_grams.count2, probe.part2(), bucket.part2, i,
                                      bucket.prepared[i].part2());
            case Pairing::kProbeCoarser:
                return part_plausible(probe.signature1(), probe_grams.grams1.data(),
                                      probe_grams.count1, probe.part1(), bucket.part2, i,
                                      bucket.prepared[i].part2());
            case Pairing::kCandidateCoarser:
                return part_plausible(probe.signature2(), probe_grams.grams2.data(),
                                      probe_grams.count2, probe.part2(), bucket.part1, i,
                                      bucket.prepared[i].part1());
        }
        return false;
    };

    // Confirmed candidates rescore four at a time; compare_x4 reproduces
    // compare() per lane, so scores (and thus matches) are unchanged.
    const fuzzy::PreparedDigest* pending[4];
    std::size_t pending_at[4];
    std::size_t n_pending = 0;
    const auto flush_pending = [&] {
        int scores[4];
        fuzzy::compare_x4(probe, pending, n_pending, min_score, scores);
        for (std::size_t k = 0; k < n_pending; ++k) {
            if (scores[k] >= min_score) {
                matches.push_back({bucket.ids[pending_at[k]], scores[k]});
            }
        }
        n_pending = 0;
    };

    // Phase 1 per chunk: the signature prefilter as a vectorized bitmap
    // over the SoA sig columns (the chunk bound keeps the bitmap on the
    // stack, and chunks stay within one round of the L1 sig stream).
    constexpr std::size_t kChunk = 512;
    std::uint64_t bitmap[kChunk / 64];
    const std::size_t n = bucket.ids.size();
    for (std::size_t chunk = 0; chunk < n; chunk += kChunk) {
        const std::size_t m = std::min(kChunk, n - chunk);
        switch (pairing) {
            case Pairing::kEqual:
                simd::sig_gate_bitmap_or(bucket.part1.sigs.data() + chunk, probe.signature1(),
                                         bucket.part2.sigs.data() + chunk, probe.signature2(),
                                         m, bitmap, level);
                break;
            case Pairing::kProbeCoarser:
                simd::sig_gate_bitmap(bucket.part2.sigs.data() + chunk, m, probe.signature1(),
                                      bitmap, level);
                break;
            case Pairing::kCandidateCoarser:
                simd::sig_gate_bitmap(bucket.part1.sigs.data() + chunk, m, probe.signature2(),
                                      bitmap, level);
                break;
        }
        const std::size_t words = (m + 63) / 64;
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t bits = bitmap[w];
            while (bits != 0) {
                const auto bit = static_cast<std::size_t>(std::countr_zero(bits));
                bits &= bits - 1;
                const std::size_t i = chunk + w * 64 + bit;
                if (!plausible_at(i)) continue;
                pending[n_pending] = &bucket.prepared[i];
                pending_at[n_pending] = i;
                if (++n_pending == 4) flush_pending();
            }
        }
    }
    flush_pending();
}

std::vector<ScoredMatch> SimilarityIndex::query(const fuzzy::PreparedDigest& probe,
                                                int min_score, std::size_t top_n) const {
    min_score = std::max(min_score, 1);
    std::vector<ScoredMatch> matches;

    // The probe's sorted gram arrays are built once per query and shared
    // by every candidate's two-pointer intersection.
    ProbeGrams probe_grams;
    probe_grams.count1 = fuzzy::pack_grams(probe.part1(), probe_grams.grams1.data());
    probe_grams.count2 = fuzzy::pack_grams(probe.part2(), probe_grams.grams2.data());
    std::sort(probe_grams.grams1.begin(),
              probe_grams.grams1.begin() + static_cast<std::ptrdiff_t>(probe_grams.count1));
    std::sort(probe_grams.grams2.begin(),
              probe_grams.grams2.begin() + static_cast<std::ptrdiff_t>(probe_grams.count2));

    const std::uint64_t bs = probe.block_size();
    if (const Bucket* b = find_bucket(bs)) {
        scan_bucket(*b, probe, probe_grams, Pairing::kEqual, min_score, matches);
    }
    if (bs % 2 == 0) {
        if (const Bucket* b = find_bucket(bs / 2)) {
            scan_bucket(*b, probe, probe_grams, Pairing::kProbeCoarser, min_score, matches);
        }
    }
    if (const Bucket* b = find_bucket(bs * 2)) {
        scan_bucket(*b, probe, probe_grams, Pairing::kCandidateCoarser, min_score, matches);
    }

    finalize(matches, top_n);
    return matches;
}

std::vector<ScoredMatch> SimilarityIndex::query(const fuzzy::FuzzyDigest& probe, int min_score,
                                                std::size_t top_n) const {
    return query(fuzzy::PreparedDigest(probe), min_score, top_n);
}

std::vector<std::vector<ScoredMatch>> SimilarityIndex::query_many(
    const std::vector<fuzzy::FuzzyDigest>& probes, int min_score, std::size_t top_n,
    util::ThreadPool* pool) const {
    std::vector<fuzzy::PreparedDigest> prepared;
    prepared.reserve(probes.size());
    for (const auto& p : probes) prepared.emplace_back(p);

    std::vector<std::vector<ScoredMatch>> results(probes.size());
    const auto query_one = [&](std::size_t i) { results[i] = query(prepared[i], min_score, top_n); };
    if (pool != nullptr && probes.size() > 1) {
        pool->parallel_for(probes.size(), query_one);
    } else {
        for (std::size_t i = 0; i < probes.size(); ++i) query_one(i);
    }
    return results;
}

std::vector<ScoredMatch> SimilarityIndex::query_bruteforce(const fuzzy::FuzzyDigest& probe,
                                                           int min_score,
                                                           std::size_t top_n) const {
    min_score = std::max(min_score, 1);
    std::vector<ScoredMatch> matches;
    for (DigestId id = 0; id < digests_.size(); ++id) {
        const int score = fuzzy::compare(probe, digests_[id]);
        if (score >= min_score) matches.push_back({id, score});
    }
    finalize(matches, top_n);
    return matches;
}

}  // namespace siren::recognize
