// libsiren_preload.so — the real injectable collector.
//
// Usage:
//   SIREN_PORT=9742 LD_PRELOAD=$PWD/libsiren_preload.so ls
//
// A constructor runs before main() and a destructor at process exit (the
// paper's siren.so architecture, §3). Both collect process metadata,
// environment information and — when SIREN_PRELOAD_HASH=1 and the
// executable is small enough — fuzzy hashes of the executable, and ship
// everything as chunked UDP datagrams.
//
// Absolute rule (graceful failure): nothing in here may crash, block, or
// otherwise disturb the hooked process. Every entry point swallows all
// exceptions; sockets are fire-and-forget.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "elfio/extract.hpp"
#include "fuzzy/ctph.hpp"
#include "hashing/xxhash.hpp"
#include "net/chunker.hpp"
#include "net/codec.hpp"
#include "net/udp.hpp"

namespace {

using siren::net::Layer;
using siren::net::Message;
using siren::net::MsgType;

std::string getenv_or(const char* name, const char* fallback) {
    const char* v = std::getenv(name);
    return v != nullptr ? v : fallback;
}

std::string read_self_exe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    return buf;
}

std::string read_whole_file(const char* path, std::size_t max_bytes) {
    std::ifstream in(path);
    if (!in) return {};
    std::string out;
    char buf[8192];
    while (in.read(buf, sizeof buf) || in.gcount() > 0) {
        out.append(buf, static_cast<std::size_t>(in.gcount()));
        if (out.size() >= max_bytes) break;
    }
    return out;
}

void send_field(siren::net::UdpSender& sender, const Message& header, MsgType type,
                const std::string& content) {
    Message typed = header;
    typed.type = type;
    for (const auto& chunk : siren::net::chunk_content(typed, content)) {
        sender.send(siren::net::encode(chunk));
    }
}

void collect(const char* phase) noexcept {
    try {
        const std::string port_str = getenv_or("SIREN_PORT", "");
        if (port_str.empty()) return;  // not configured: stay silent
        const auto port = static_cast<std::uint16_t>(std::strtoul(port_str.c_str(), nullptr, 10));
        if (port == 0) return;

        // Paper §3.1: collect only for SLURM_PROCID=0 — other MPI ranks of
        // the same step would ship duplicate data. Non-Slurm processes have
        // no SLURM_PROCID and collect normally.
        const std::string procid = getenv_or("SLURM_PROCID", "0");
        if (std::strtoul(procid.c_str(), nullptr, 10) != 0) return;

        siren::net::UdpSender sender(getenv_or("SIREN_HOST", "127.0.0.1"), port);

        const std::string exe = read_self_exe();

        Message header;
        header.job_id = std::strtoull(getenv_or("SLURM_JOB_ID", "0").c_str(), nullptr, 10);
        header.step_id = static_cast<std::uint32_t>(
            std::strtoul(getenv_or("SLURM_STEP_ID", "0").c_str(), nullptr, 10));
        header.pid = ::getpid();
        header.exe_hash = siren::hash::xxh128(exe).hex();
        char host[256] = {0};
        ::gethostname(host, sizeof host - 1);
        header.host = host;
        header.time = static_cast<std::int64_t>(::time(nullptr));
        header.layer = Layer::kSelf;

        // Identifiers (phase tags constructor vs destructor collection).
        std::string ids = "pid=" + std::to_string(::getpid()) +
                          " ppid=" + std::to_string(::getppid()) +
                          " uid=" + std::to_string(::getuid()) +
                          " gid=" + std::to_string(::getgid()) + " procid=" +
                          getenv_or("SLURM_PROCID", "0") + " phase=" + phase + " exe=" + exe;
        send_field(sender, header, MsgType::kIds, ids);

        // Executable file metadata.
        struct stat st{};
        if (!exe.empty() && ::stat(exe.c_str(), &st) == 0) {
            char meta[256];
            std::snprintf(meta, sizeof meta,
                          "inode=%llu size=%lld mode=%o uid=%u gid=%u atime=%lld mtime=%lld ctime=%lld",
                          static_cast<unsigned long long>(st.st_ino),
                          static_cast<long long>(st.st_size), st.st_mode & 07777, st.st_uid,
                          st.st_gid, static_cast<long long>(st.st_atime),
                          static_cast<long long>(st.st_mtime),
                          static_cast<long long>(st.st_ctime));
            send_field(sender, header, MsgType::kFileMeta, meta);
        }

        // Loaded modules (LMOD) and memory map.
        send_field(sender, header, MsgType::kModules, getenv_or("LOADEDMODULES", ""));
        const std::string maps = read_whole_file("/proc/self/maps", 256 * 1024);
        if (!maps.empty()) send_field(sender, header, MsgType::kMemMap, maps);

        // Optional fuzzy hashing of the executable itself (constructor
        // only; bounded size so huge binaries don't stall startup).
        if (std::strcmp(phase, "constructor") == 0 &&
            getenv_or("SIREN_PRELOAD_HASH", "0") == std::string("1") && !exe.empty() &&
            st.st_size > 0 && st.st_size <= 64 * 1024 * 1024) {
            const std::string bytes = read_whole_file(exe.c_str(), 64 * 1024 * 1024);
            if (!bytes.empty()) {
                send_field(sender, header, MsgType::kFileHash,
                           siren::fuzzy::fuzzy_hash(bytes).to_string());
                const auto strings = siren::elfio::printable_strings(
                    {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
                send_field(sender, header, MsgType::kStringsHash,
                           siren::fuzzy::fuzzy_hash(siren::elfio::strings_blob(strings)).to_string());
            }
        }
    } catch (...) {
        // Graceful failure: never disturb the hooked process.
    }
}

__attribute__((constructor)) void siren_preload_init() { collect("constructor"); }
__attribute__((destructor)) void siren_preload_fini() { collect("destructor"); }

}  // namespace
