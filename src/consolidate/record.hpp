#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzzy/prepared.hpp"
#include "sim/cluster.hpp"

namespace siren::consolidate {

/// Analysis category of a process (paper §3.1/§4.1): where its executable
/// came from. kUnknown appears only when the IDS message of a process was
/// lost entirely.
enum class Category : std::uint8_t { kSystem = 0, kUser = 1, kPython = 2, kUnknown = 3 };

std::string_view to_string(Category c);

/// One consolidated per-process record: the merge of all UDP messages
/// (chunks and layers) of one (JOBID, STEPID, PID, HASH, HOST) — the single
/// database entry per process the paper's post-processing produces.
struct ProcessRecord {
    // Header identity.
    std::uint64_t job_id = 0;
    std::uint32_t step_id = 0;
    std::int64_t pid = 0;
    std::string exe_hash;  ///< xxh128(path) — separates exec() chains on one PID
    std::string host;
    std::int64_t time = 0;

    // From IDS.
    std::int64_t ppid = 0;
    std::int64_t uid = 0;
    std::int64_t gid = 0;
    std::uint32_t slurm_procid = 0;
    std::string exe_path;

    Category category = Category::kUnknown;

    // From FILEMETA.
    std::optional<sim::FileMeta> exe_meta;

    // Environment lists.
    std::vector<std::string> modules;
    std::vector<std::string> objects;
    std::vector<std::string> compilers;
    std::vector<std::string> memmap_paths;  ///< mapped file paths only

    // Fuzzy hashes (paper's MO_H / OB_H / CO_H / MA_H and FI_H / ST_H / SY_H).
    std::string modules_hash;
    std::string objects_hash;
    std::string compilers_hash;
    std::string memmap_hash;
    std::string file_hash;
    std::string strings_hash;
    std::string symbols_hash;

    // Python (merged from the SCRIPT layer).
    std::string script_path;
    std::optional<sim::FileMeta> script_meta;
    std::string script_hash;
    std::vector<std::string> python_packages;  ///< post-processed from memmap

    /// TYPE names whose chunked content arrived incomplete (UDP loss).
    std::vector<std::string> incomplete_fields;

    bool has_missing_fields() const { return !incomplete_fields.empty(); }

    /// Memberwise equality — the owned and zero-copy consolidation paths
    /// are tested to produce identical records.
    friend bool operator==(const ProcessRecord&, const ProcessRecord&) = default;
};

/// The six similarity dimensions of a record (paper Table 7), parsed and
/// prepared once for repeated zero-alloc comparison. Records whose hash
/// strings are empty or truncated (UDP loss) get the dimension's valid bit
/// cleared; comparing an invalid dimension scores 0, exactly like the
/// legacy string-parsing comparator.
///
/// This is the cached form similarity consumers keep next to a sample
/// record (analytics::ExeStat) so a 100k-candidate search never re-parses
/// digest strings.
struct PreparedHashes {
    enum Dimension : std::uint8_t {
        kModules = 1u << 0,
        kCompilers = 1u << 1,
        kObjects = 1u << 2,
        kFile = 1u << 3,
        kStrings = 1u << 4,
        kSymbols = 1u << 5,
    };

    fuzzy::PreparedDigest modules;
    fuzzy::PreparedDigest compilers;
    fuzzy::PreparedDigest objects;
    fuzzy::PreparedDigest file;
    fuzzy::PreparedDigest strings;
    fuzzy::PreparedDigest symbols;
    std::uint8_t valid = 0;  ///< Dimension bits whose source string parsed

    bool has(Dimension d) const { return (valid & d) != 0; }

    /// Prepare all six dimensions of a record.
    static PreparedHashes from(const ProcessRecord& record);
};

}  // namespace siren::consolidate
