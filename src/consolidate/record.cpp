#include "consolidate/record.hpp"

#include "util/error.hpp"

namespace siren::consolidate {

namespace {

/// Parse-and-prepare one hash string; returns false (dimension invalid)
/// when the string is empty or malformed — collector output can contain
/// truncated fields after UDP loss, and those must score 0, not throw.
bool prepare_dimension(const std::string& text, fuzzy::PreparedDigest& out) {
    if (text.empty()) return false;
    try {
        out = fuzzy::PreparedDigest(fuzzy::FuzzyDigest::parse(text));
        return true;
    } catch (const util::ParseError&) {
        return false;
    }
}

}  // namespace

PreparedHashes PreparedHashes::from(const ProcessRecord& record) {
    PreparedHashes p;
    if (prepare_dimension(record.modules_hash, p.modules)) p.valid |= kModules;
    if (prepare_dimension(record.compilers_hash, p.compilers)) p.valid |= kCompilers;
    if (prepare_dimension(record.objects_hash, p.objects)) p.valid |= kObjects;
    if (prepare_dimension(record.file_hash, p.file)) p.valid |= kFile;
    if (prepare_dimension(record.strings_hash, p.strings)) p.valid |= kStrings;
    if (prepare_dimension(record.symbols_hash, p.symbols)) p.valid |= kSymbols;
    return p;
}

std::string_view to_string(Category c) {
    switch (c) {
        case Category::kSystem: return "system";
        case Category::kUser: return "user";
        case Category::kPython: return "python";
        case Category::kUnknown: return "unknown";
    }
    return "?";
}

}  // namespace siren::consolidate
