#include "consolidate/record.hpp"

namespace siren::consolidate {

std::string_view to_string(Category c) {
    switch (c) {
        case Category::kSystem: return "system";
        case Category::kUser: return "user";
        case Category::kPython: return "python";
        case Category::kUnknown: return "unknown";
    }
    return "?";
}

}  // namespace siren::consolidate
