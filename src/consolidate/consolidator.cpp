#include "consolidate/consolidator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "collect/policy.hpp"
#include "collect/python.hpp"
#include "db/message_store.hpp"
#include "net/chunker.hpp"
#include "sim/fsnames.hpp"
#include "util/strings.hpp"

namespace siren::consolidate {

namespace {

/// Parse the IDS content ("pid=.. ppid=.. uid=.. gid=.. procid=.. exe=..").
void parse_ids(const std::string& content, ProcessRecord& r) {
    const std::size_t exe_pos = content.find("exe=");
    if (exe_pos != std::string::npos) {
        r.exe_path = content.substr(exe_pos + 4);
    }
    for (const auto& token : util::split_nonempty(
             exe_pos == std::string::npos ? content : content.substr(0, exe_pos), ' ')) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (value.empty()) continue;
        try {
            if (key == "pid") r.pid = std::stoll(value);
            else if (key == "ppid") r.ppid = std::stoll(value);
            else if (key == "uid") r.uid = std::stoll(value);
            else if (key == "gid") r.gid = std::stoll(value);
            else if (key == "procid") r.slurm_procid = static_cast<std::uint32_t>(std::stoul(value));
        } catch (...) {
            // Damaged numeric field (truncated chunk): leave default.
        }
    }
}

Category categorize(const std::string& exe_path) {
    if (exe_path.empty()) return Category::kUnknown;
    if (sim::is_python_interpreter(exe_path) &&
        sim::categorize_path(exe_path) == sim::PathCategory::kSystem) {
        return Category::kPython;
    }
    return sim::categorize_path(exe_path) == sim::PathCategory::kSystem ? Category::kSystem
                                                                        : Category::kUser;
}

std::vector<std::string> memmap_file_paths(const std::string& content) {
    std::vector<std::string> out;
    for (const auto& line : util::split_nonempty(content, '\n')) {
        // "<start>-<end> <perms> <path>"; path may be empty for anon maps.
        const auto fields = util::split_nonempty(line, ' ');
        if (fields.size() >= 3) out.push_back(fields[2]);
    }
    return out;
}

void apply_field(ProcessRecord& r, net::Layer layer, net::MsgType type,
                 const std::string& content) {
    using net::Layer;
    using net::MsgType;

    if (layer == Layer::kScript) {
        switch (type) {
            case MsgType::kIds:
                if (util::starts_with(content, "script=")) r.script_path = content.substr(7);
                break;
            case MsgType::kFileMeta:
                try {
                    r.script_meta = sim::FileMeta::parse(content);
                } catch (...) {
                    // truncated metadata: leave unset
                }
                break;
            case MsgType::kScriptHash: r.script_hash = content; break;
            default: break;
        }
        return;
    }

    switch (type) {
        case MsgType::kIds: parse_ids(content, r); break;
        case MsgType::kFileMeta:
            try {
                r.exe_meta = sim::FileMeta::parse(content);
            } catch (...) {
            }
            break;
        case MsgType::kModules: r.modules = util::split_nonempty(content, ':'); break;
        case MsgType::kObjects: r.objects = util::split_nonempty(content, '\n'); break;
        case MsgType::kCompilers: r.compilers = util::split_nonempty(content, '\n'); break;
        case MsgType::kMemMap: r.memmap_paths = memmap_file_paths(content); break;
        case MsgType::kModulesHash: r.modules_hash = content; break;
        case MsgType::kObjectsHash: r.objects_hash = content; break;
        case MsgType::kCompilersHash: r.compilers_hash = content; break;
        case MsgType::kMemMapHash: r.memmap_hash = content; break;
        case MsgType::kFileHash: r.file_hash = content; break;
        case MsgType::kStringsHash: r.strings_hash = content; break;
        case MsgType::kSymbolsHash: r.symbols_hash = content; break;
        case MsgType::kScriptHash: r.script_hash = content; break;
    }
}

/// Fields the collector emits for each category (Table 1 policy); a record
/// of that category lacking one of these lost the entire message to UDP —
/// the paper's "jobs with missing fields" accounting must see it.
std::vector<std::pair<net::Layer, net::MsgType>> expected_fields(Category category,
                                                                 bool has_script_layer) {
    using net::Layer;
    using net::MsgType;
    std::vector<std::pair<Layer, MsgType>> out = {{Layer::kSelf, MsgType::kIds}};
    switch (category) {
        case Category::kSystem:
            out.push_back({Layer::kSelf, MsgType::kFileMeta});
            out.push_back({Layer::kSelf, MsgType::kObjects});
            out.push_back({Layer::kSelf, MsgType::kObjectsHash});
            break;
        case Category::kUser:
            for (const auto type :
                 {MsgType::kFileMeta, MsgType::kObjects, MsgType::kObjectsHash,
                  MsgType::kModules, MsgType::kModulesHash, MsgType::kCompilers,
                  MsgType::kCompilersHash, MsgType::kMemMap, MsgType::kMemMapHash,
                  MsgType::kFileHash, MsgType::kStringsHash, MsgType::kSymbolsHash}) {
                out.push_back({Layer::kSelf, type});
            }
            break;
        case Category::kPython:
            for (const auto type : {MsgType::kFileMeta, MsgType::kObjects,
                                    MsgType::kObjectsHash, MsgType::kMemMap,
                                    MsgType::kMemMapHash}) {
                out.push_back({Layer::kSelf, type});
            }
            if (has_script_layer) {
                out.push_back({Layer::kScript, MsgType::kIds});
                out.push_back({Layer::kScript, MsgType::kFileMeta});
                out.push_back({Layer::kScript, MsgType::kScriptHash});
            }
            break;
        case Category::kUnknown:
            break;  // IDS absence is reported by the caller
    }
    return out;
}

}  // namespace

ConsolidationResult consolidate(const std::vector<net::Message>& messages) {
    // Stage 1: reassemble chunked content per (process, layer, type).
    net::Reassembler reassembler;
    for (const auto& m : messages) reassembler.add(m);

    // Stage 2: fold assembled fields into per-process records. The map key
    // is the paper's disambiguator: JOBID/STEPID/PID/HASH/HOST — HASH (of
    // the exe path) separates exec() chains that reuse a PID within one
    // timestamp.
    std::map<std::string, ProcessRecord> records;
    std::map<std::string, std::set<std::pair<net::Layer, net::MsgType>>> received;
    for (auto& assembled : reassembler.assemble()) {
        const net::Message& m = assembled.merged;
        ProcessRecord& r = records[m.process_key()];
        received[m.process_key()].insert({m.layer, m.type});
        r.job_id = m.job_id;
        r.step_id = m.step_id;
        r.pid = m.pid;
        r.exe_hash = m.exe_hash;
        r.host = m.host;
        r.time = std::max(r.time, m.time);
        if (assembled.complete()) {
            apply_field(r, m.layer, m.type, m.content);
        } else {
            // Partial content is still applied (lists shrink, hashes may be
            // damaged) but the field is flagged so analyses can exclude it.
            apply_field(r, m.layer, m.type, m.content);
            std::string tag(net::to_string(m.layer));
            tag += ":";
            tag += net::to_string(m.type);
            r.incomplete_fields.push_back(std::move(tag));
        }
    }

    // Stage 3: derive category and Python package imports; accumulate loss
    // accounting per job.
    ConsolidationResult result;
    result.records.reserve(records.size());
    std::set<std::uint64_t> jobs;
    std::set<std::uint64_t> jobs_missing;

    for (auto& [key, record] : records) {
        record.category = categorize(record.exe_path);
        if (record.category == Category::kPython && !record.memmap_paths.empty()) {
            record.python_packages = collect::extract_python_packages(record.memmap_paths);
        }

        // Wholly lost messages: fields the category's policy promises but
        // that never arrived.
        const auto& seen = received[key];
        const bool has_script_layer =
            std::any_of(seen.begin(), seen.end(),
                        [](const auto& lt) { return lt.first == net::Layer::kScript; });
        if (record.category == Category::kUnknown) {
            record.incomplete_fields.push_back("SELF:IDS");
        }
        for (const auto& [layer, type] : expected_fields(record.category, has_script_layer)) {
            if (seen.count({layer, type}) != 0) continue;
            std::string tag(net::to_string(layer));
            tag += ":";
            tag += net::to_string(type);
            record.incomplete_fields.push_back(std::move(tag));
        }

        std::sort(record.incomplete_fields.begin(), record.incomplete_fields.end());
        record.incomplete_fields.erase(
            std::unique(record.incomplete_fields.begin(), record.incomplete_fields.end()),
            record.incomplete_fields.end());

        jobs.insert(record.job_id);
        if (record.has_missing_fields()) {
            jobs_missing.insert(record.job_id);
            ++result.processes_with_missing_fields;
            result.incomplete_field_groups += record.incomplete_fields.size();
        }
        result.records.push_back(std::move(record));
    }

    result.total_jobs = jobs.size();
    result.jobs_with_missing_fields = jobs_missing.size();
    return result;
}

ConsolidationResult consolidate(const db::Database& db) {
    const db::Table& table = db.table(db::kMessagesTable);
    std::vector<net::Message> messages;
    messages.reserve(table.row_count());
    for (std::size_t i = 0; i < table.row_count(); ++i) {
        messages.push_back(db::message_from_row(table, i));
    }
    return consolidate(messages);
}

}  // namespace siren::consolidate
