#include "consolidate/consolidator.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "collect/policy.hpp"
#include "collect/python.hpp"
#include "db/message_store.hpp"
#include "net/chunker.hpp"
#include "sim/fsnames.hpp"
#include "util/strings.hpp"

namespace siren::consolidate {

namespace {

/// Parse the IDS content ("pid=.. ppid=.. uid=.. gid=.. procid=.. exe=..").
void parse_ids(const std::string& content, ProcessRecord& r) {
    const std::size_t exe_pos = content.find("exe=");
    if (exe_pos != std::string::npos) {
        r.exe_path = content.substr(exe_pos + 4);
    }
    for (const auto& token : util::split_nonempty(
             exe_pos == std::string::npos ? content : content.substr(0, exe_pos), ' ')) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (value.empty()) continue;
        try {
            if (key == "pid") r.pid = std::stoll(value);
            else if (key == "ppid") r.ppid = std::stoll(value);
            else if (key == "uid") r.uid = std::stoll(value);
            else if (key == "gid") r.gid = std::stoll(value);
            else if (key == "procid") r.slurm_procid = static_cast<std::uint32_t>(std::stoul(value));
        } catch (...) {
            // Damaged numeric field (truncated chunk): leave default.
        }
    }
}

Category categorize(const std::string& exe_path) {
    if (exe_path.empty()) return Category::kUnknown;
    if (sim::is_python_interpreter(exe_path) &&
        sim::categorize_path(exe_path) == sim::PathCategory::kSystem) {
        return Category::kPython;
    }
    return sim::categorize_path(exe_path) == sim::PathCategory::kSystem ? Category::kSystem
                                                                        : Category::kUser;
}

std::vector<std::string> memmap_file_paths(const std::string& content) {
    std::vector<std::string> out;
    for (const auto& line : util::split_nonempty(content, '\n')) {
        // "<start>-<end> <perms> <path>"; path may be empty for anon maps.
        const auto fields = util::split_nonempty(line, ' ');
        if (fields.size() >= 3) out.push_back(fields[2]);
    }
    return out;
}

void apply_field(ProcessRecord& r, net::Layer layer, net::MsgType type,
                 const std::string& content) {
    using net::Layer;
    using net::MsgType;

    if (layer == Layer::kScript) {
        switch (type) {
            case MsgType::kIds:
                if (util::starts_with(content, "script=")) r.script_path = content.substr(7);
                break;
            case MsgType::kFileMeta:
                try {
                    r.script_meta = sim::FileMeta::parse(content);
                } catch (...) {
                    // truncated metadata: leave unset
                }
                break;
            case MsgType::kScriptHash: r.script_hash = content; break;
            default: break;
        }
        return;
    }

    switch (type) {
        case MsgType::kIds: parse_ids(content, r); break;
        case MsgType::kFileMeta:
            try {
                r.exe_meta = sim::FileMeta::parse(content);
            } catch (...) {
            }
            break;
        case MsgType::kModules: r.modules = util::split_nonempty(content, ':'); break;
        case MsgType::kObjects: r.objects = util::split_nonempty(content, '\n'); break;
        case MsgType::kCompilers: r.compilers = util::split_nonempty(content, '\n'); break;
        case MsgType::kMemMap: r.memmap_paths = memmap_file_paths(content); break;
        case MsgType::kModulesHash: r.modules_hash = content; break;
        case MsgType::kObjectsHash: r.objects_hash = content; break;
        case MsgType::kCompilersHash: r.compilers_hash = content; break;
        case MsgType::kMemMapHash: r.memmap_hash = content; break;
        case MsgType::kFileHash: r.file_hash = content; break;
        case MsgType::kStringsHash: r.strings_hash = content; break;
        case MsgType::kSymbolsHash: r.symbols_hash = content; break;
        case MsgType::kScriptHash: r.script_hash = content; break;
    }
}

/// Fields the collector emits for each category (Table 1 policy); a record
/// of that category lacking one of these lost the entire message to UDP —
/// the paper's "jobs with missing fields" accounting must see it.
std::vector<std::pair<net::Layer, net::MsgType>> expected_fields(Category category,
                                                                 bool has_script_layer) {
    using net::Layer;
    using net::MsgType;
    std::vector<std::pair<Layer, MsgType>> out = {{Layer::kSelf, MsgType::kIds}};
    switch (category) {
        case Category::kSystem:
            out.push_back({Layer::kSelf, MsgType::kFileMeta});
            out.push_back({Layer::kSelf, MsgType::kObjects});
            out.push_back({Layer::kSelf, MsgType::kObjectsHash});
            break;
        case Category::kUser:
            for (const auto type :
                 {MsgType::kFileMeta, MsgType::kObjects, MsgType::kObjectsHash,
                  MsgType::kModules, MsgType::kModulesHash, MsgType::kCompilers,
                  MsgType::kCompilersHash, MsgType::kMemMap, MsgType::kMemMapHash,
                  MsgType::kFileHash, MsgType::kStringsHash, MsgType::kSymbolsHash}) {
                out.push_back({Layer::kSelf, type});
            }
            break;
        case Category::kPython:
            for (const auto type : {MsgType::kFileMeta, MsgType::kObjects,
                                    MsgType::kObjectsHash, MsgType::kMemMap,
                                    MsgType::kMemMapHash}) {
                out.push_back({Layer::kSelf, type});
            }
            if (has_script_layer) {
                out.push_back({Layer::kScript, MsgType::kIds});
                out.push_back({Layer::kScript, MsgType::kFileMeta});
                out.push_back({Layer::kScript, MsgType::kScriptHash});
            }
            break;
        case Category::kUnknown:
            break;  // IDS absence is reported by the caller
    }
    return out;
}

/// Per-process accumulation shared by the owned and view pipelines: the
/// record under construction plus which (layer, type) fields arrived at all.
struct Accum {
    ProcessRecord record;
    std::set<std::pair<net::Layer, net::MsgType>> seen;
};

void tag_incomplete(ProcessRecord& r, net::Layer layer, net::MsgType type) {
    std::string tag(net::to_string(layer));
    tag += ":";
    tag += net::to_string(type);
    r.incomplete_fields.push_back(std::move(tag));
}

/// Stage 3, shared by both decode paths: derive category and Python package
/// imports; accumulate loss accounting per job. Keyed by process key so both
/// paths emit records in the same order.
ConsolidationResult finish(std::map<std::string, Accum>&& accums) {
    ConsolidationResult result;
    result.records.reserve(accums.size());
    std::set<std::uint64_t> jobs;
    std::set<std::uint64_t> jobs_missing;

    for (auto& [key, accum] : accums) {
        ProcessRecord& record = accum.record;
        record.category = categorize(record.exe_path);
        if (record.category == Category::kPython && !record.memmap_paths.empty()) {
            record.python_packages = collect::extract_python_packages(record.memmap_paths);
        }

        // Wholly lost messages: fields the category's policy promises but
        // that never arrived.
        const auto& seen = accum.seen;
        const bool has_script_layer =
            std::any_of(seen.begin(), seen.end(),
                        [](const auto& lt) { return lt.first == net::Layer::kScript; });
        if (record.category == Category::kUnknown) {
            record.incomplete_fields.push_back("SELF:IDS");
        }
        for (const auto& [layer, type] : expected_fields(record.category, has_script_layer)) {
            if (seen.count({layer, type}) != 0) continue;
            tag_incomplete(record, layer, type);
        }

        std::sort(record.incomplete_fields.begin(), record.incomplete_fields.end());
        record.incomplete_fields.erase(
            std::unique(record.incomplete_fields.begin(), record.incomplete_fields.end()),
            record.incomplete_fields.end());

        jobs.insert(record.job_id);
        if (record.has_missing_fields()) {
            jobs_missing.insert(record.job_id);
            ++result.processes_with_missing_fields;
            result.incomplete_field_groups += record.incomplete_fields.size();
        }
        result.records.push_back(std::move(record));
    }

    result.total_jobs = jobs.size();
    result.jobs_with_missing_fields = jobs_missing.size();
    return result;
}

}  // namespace

ConsolidationResult consolidate(const std::vector<net::Message>& messages) {
    // Stage 1: reassemble chunked content per (process, layer, type).
    net::Reassembler reassembler;
    for (const auto& m : messages) reassembler.add(m);

    // Stage 2: fold assembled fields into per-process records. The map key
    // is the paper's disambiguator: JOBID/STEPID/PID/HASH/HOST — HASH (of
    // the exe path) separates exec() chains that reuse a PID within one
    // timestamp.
    std::map<std::string, Accum> accums;
    for (auto& assembled : reassembler.assemble()) {
        const net::Message& m = assembled.merged;
        Accum& a = accums[m.process_key()];
        ProcessRecord& r = a.record;
        a.seen.insert({m.layer, m.type});
        r.job_id = m.job_id;
        r.step_id = m.step_id;
        r.pid = m.pid;
        r.exe_hash = m.exe_hash;
        r.host = m.host;
        r.time = std::max(r.time, m.time);
        apply_field(r, m.layer, m.type, m.content);
        if (!assembled.complete()) {
            // Partial content is still applied (lists shrink, hashes may be
            // damaged) but the field is flagged so analyses can exclude it.
            tag_incomplete(r, m.layer, m.type);
        }
    }

    return finish(std::move(accums));
}

ConsolidationResult ViewConsolidator::consolidate(std::span<const net::MessageView> messages) {
    // Stage 1: group chunks by process identity. Identity compares the raw
    // wire bytes (both sides of a group came through the same encoder, so
    // escaped-vs-raw never disagrees within a process). The linear group
    // scan is O(#processes) per message — the inline shard flushes one
    // process at a time, so in the hot path it is a single compare.
    chunks_.clear();
    groups_.clear();
    std::uint32_t arrival = 0;
    for (const net::MessageView& m : messages) {
        std::uint32_t g = 0;
        for (; g < groups_.size(); ++g) {
            GroupRef& group = groups_[g];
            if (group.job_id == m.job_id && group.step_id == m.step_id &&
                group.pid == m.pid && group.exe_hash == m.exe_hash && group.host == m.host) {
                group.time = std::max(group.time, m.time);
                break;
            }
        }
        if (g == groups_.size()) {
            groups_.push_back({m.job_id, m.step_id, m.pid, m.exe_hash, m.host,
                               m.host_escaped, m.time});
        }
        chunks_.push_back({g, m.layer, m.type, m.seq, m.total, arrival++, m.content,
                           m.content_escaped});
    }

    // Stage 2: sort chunks into (process, layer, type, seq) runs — in-place,
    // no per-message allocation — and assemble each run's content into the
    // reused scratch buffer, unescaping lazily.
    std::sort(chunks_.begin(), chunks_.end(), [](const ChunkRef& a, const ChunkRef& b) {
        if (a.group != b.group) return a.group < b.group;
        if (a.layer != b.layer) return a.layer < b.layer;
        if (a.type != b.type) return a.type < b.type;
        if (a.seq != b.seq) return a.seq < b.seq;
        return a.arrival < b.arrival;
    });

    std::map<std::string, Accum> accums;
    std::vector<Accum*> group_accum(groups_.size(), nullptr);
    std::string key;

    for (std::size_t i = 0; i < chunks_.size();) {
        const ChunkRef& head = chunks_[i];
        // One run = all chunks of one (process, layer, type).
        std::uint32_t expected = 0;
        std::uint32_t received = 0;
        scratch_.clear();
        std::size_t j = i;
        for (; j < chunks_.size(); ++j) {
            const ChunkRef& c = chunks_[j];
            if (c.group != head.group || c.layer != head.layer || c.type != head.type) break;
            // TOTAL should agree across chunks; a corrupted packet that
            // disagrees keeps the larger claim so completeness stays
            // conservative. Duplicate SEQs: the first arrival wins.
            expected = std::max(expected, c.total);
            if (j > i && c.seq == chunks_[j - 1].seq) continue;
            ++received;
            if (!c.escaped) {
                scratch_.append(c.content);
            } else {
                util::unescape_field_into(c.content, scratch_);
            }
        }

        Accum*& accum = group_accum[head.group];
        if (accum == nullptr) {
            const GroupRef& group = groups_[head.group];
            key.clear();
            net::MessageView id;
            id.job_id = group.job_id;
            id.step_id = group.step_id;
            id.pid = group.pid;
            id.exe_hash = group.exe_hash;
            id.host = group.host;
            id.host_escaped = group.host_escaped;
            id.process_key_into(key);
            accum = &accums[key];
            ProcessRecord& r = accum->record;
            r.job_id = group.job_id;
            r.step_id = group.step_id;
            r.pid = group.pid;
            r.exe_hash = std::string(group.exe_hash);
            r.host = group.host_escaped ? util::unescape_field(group.host)
                                        : std::string(group.host);
            r.time = group.time;
        }
        accum->seen.insert({head.layer, head.type});
        apply_field(accum->record, head.layer, head.type, scratch_);
        if (received != expected) tag_incomplete(accum->record, head.layer, head.type);
        i = j;
    }

    return finish(std::move(accums));
}

ConsolidationResult consolidate(std::span<const net::MessageView> messages) {
    ViewConsolidator consolidator;
    return consolidator.consolidate(messages);
}

ConsolidationResult consolidate(const db::Database& db) {
    const db::Table& table = db.table(db::kMessagesTable);
    std::vector<net::Message> messages;
    messages.reserve(table.row_count());
    for (std::size_t i = 0; i < table.row_count(); ++i) {
        messages.push_back(db::message_from_row(table, i));
    }
    return consolidate(messages);
}

}  // namespace siren::consolidate
