#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "consolidate/record.hpp"
#include "db/database.hpp"
#include "net/message.hpp"

namespace siren::consolidate {

/// Post-processing outcome plus the loss accounting the paper reports
/// ("approximately 0.02% of the jobs have missing fields that can be
/// attributed to the loss of UDP messages").
struct ConsolidationResult {
    std::vector<ProcessRecord> records;

    std::uint64_t total_jobs = 0;
    std::uint64_t jobs_with_missing_fields = 0;
    std::uint64_t processes_with_missing_fields = 0;
    std::uint64_t incomplete_field_groups = 0;

    double job_missing_ratio() const {
        return total_jobs == 0
                   ? 0.0
                   : static_cast<double>(jobs_with_missing_fields) / static_cast<double>(total_jobs);
    }
};

/// Merge raw UDP messages into one record per process:
///  - chunks of one (process, layer, type) are reassembled in SEQ order;
///  - SCRIPT-layer rows (Python input scripts) are merged into their parent
///    interpreter row;
///  - the process category (system/user/python) is derived from the
///    executable path;
///  - Python package imports are extracted from interpreter memory maps;
///  - fields whose chunks were lost are listed per record, never dropped.
ConsolidationResult consolidate(const std::vector<net::Message>& messages);

/// Same, reading from the raw-message table a ReceiverService populated.
ConsolidationResult consolidate(const db::Database& db);

}  // namespace siren::consolidate
