#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "consolidate/record.hpp"
#include "db/database.hpp"
#include "net/message.hpp"

namespace siren::consolidate {

/// Post-processing outcome plus the loss accounting the paper reports
/// ("approximately 0.02% of the jobs have missing fields that can be
/// attributed to the loss of UDP messages").
struct ConsolidationResult {
    std::vector<ProcessRecord> records;

    std::uint64_t total_jobs = 0;
    std::uint64_t jobs_with_missing_fields = 0;
    std::uint64_t processes_with_missing_fields = 0;
    std::uint64_t incomplete_field_groups = 0;

    double job_missing_ratio() const {
        return total_jobs == 0
                   ? 0.0
                   : static_cast<double>(jobs_with_missing_fields) / static_cast<double>(total_jobs);
    }
};

/// Merge raw UDP messages into one record per process:
///  - chunks of one (process, layer, type) are reassembled in SEQ order;
///  - SCRIPT-layer rows (Python input scripts) are merged into their parent
///    interpreter row;
///  - the process category (system/user/python) is derived from the
///    executable path;
///  - Python package imports are extracted from interpreter memory maps;
///  - fields whose chunks were lost are listed per record, never dropped.
ConsolidationResult consolidate(const std::vector<net::Message>& messages);

/// Same semantics over zero-copy views (the inline campaign path): chunk
/// grouping and reassembly never copy or unescape a byte until a field's
/// content is materialized for its record. The views' backing bytes must
/// stay alive for the duration of the call.
ConsolidationResult consolidate(std::span<const net::MessageView> messages);

/// Same, reading from the raw-message table a ReceiverService populated.
ConsolidationResult consolidate(const db::Database& db);

/// Stateful variant of the view overload for steady-state callers (one per
/// campaign shard): grouping and reassembly scratch is retained between
/// calls, so consolidating one process's flush performs no per-message heap
/// allocation once capacities are warm.
class ViewConsolidator {
public:
    ConsolidationResult consolidate(std::span<const net::MessageView> messages);

private:
    /// One (process, layer, type) chunk, tagged for in-place run sorting.
    struct ChunkRef {
        std::uint32_t group = 0;
        net::Layer layer = net::Layer::kSelf;
        net::MsgType type = net::MsgType::kFileMeta;
        std::uint32_t seq = 0;
        std::uint32_t total = 1;
        std::uint32_t arrival = 0;  ///< tie-break so duplicate SEQs keep the first arrival
        std::string_view content;
        bool escaped = false;
    };
    /// Identity of one process (views into the caller's message bytes).
    struct GroupRef {
        std::uint64_t job_id = 0;
        std::uint32_t step_id = 0;
        std::int64_t pid = 0;
        std::string_view exe_hash;
        std::string_view host;
        bool host_escaped = false;
        std::int64_t time = 0;
    };

    std::vector<ChunkRef> chunks_;   // reused across calls
    std::vector<GroupRef> groups_;   // reused across calls
    std::string scratch_;            // reused content-assembly buffer
};

}  // namespace siren::consolidate
