#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/table.hpp"

namespace siren::db {

/// A named collection of tables with directory-based persistence — the
/// embedded stand-in for the paper's SQLite file.
///
/// Persistence format: one `<table>.tsv` per table; the first line holds
/// `name:TYPE` column declarations, subsequent lines hold escaped cells.
/// Human-diffable on purpose: experiment outputs can be inspected and
/// compared with standard tools.
class Database {
public:
    /// Create a table; throws if the name exists.
    Table& create_table(const std::string& name, std::vector<Column> columns);

    /// Lookup; throws siren::util::Error when absent.
    Table& table(const std::string& name);
    const Table& table(const std::string& name) const;

    bool has_table(const std::string& name) const;
    std::vector<std::string> table_names() const;

    /// Write every table into `directory` (created if needed).
    void save(const std::string& directory) const;

    /// Load every `*.tsv` in `directory` into a fresh database.
    static Database load(const std::string& directory);

private:
    std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace siren::db
