#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace siren::db {

/// Column storage classes of the embedded store (a deliberate subset of
/// SQLite's: INTEGER, REAL, TEXT — SIREN's schema needs nothing else).
enum class ColumnType : std::uint8_t { kInt = 0, kReal = 1, kText = 2 };

/// One cell. The variant alternative must match the column's declared type;
/// Table::append validates this on insert.
using Value = std::variant<std::int64_t, double, std::string>;

inline const char* to_string(ColumnType t) {
    switch (t) {
        case ColumnType::kInt: return "INT";
        case ColumnType::kReal: return "REAL";
        case ColumnType::kText: return "TEXT";
    }
    return "?";
}

/// Variant index expected for a column type.
inline std::size_t variant_index(ColumnType t) {
    return static_cast<std::size_t>(t);
}

struct Column {
    std::string name;
    ColumnType type = ColumnType::kText;
};

}  // namespace siren::db
