#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "storage/segment.hpp"
#include "storage/segment_store.hpp"

namespace siren::db {

/// Name of the raw-message table every receiver writes into.
inline constexpr const char* kMessagesTable = "messages";

/// Create the raw UDP-message table with the paper's column set
/// (JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE + SEQ/TOTAL/CONTENT).
Table& create_message_table(Database& db);

/// Append one decoded message as a row.
void insert_message(Table& table, const net::Message& m);

/// Reconstruct a net::Message from a stored row (used by consolidation).
net::Message message_from_row(const Table& table, std::size_t row);

/// The receiver server: drains a MessageQueue into the messages table with
/// `workers` threads — the C++ rendition of the paper's Go server reading a
/// buffered channel and inserting into SQLite. Stop by closing the queue;
/// the destructor joins.
///
/// Durable mode: pass a storage::SegmentStore (with at least `workers`
/// writer shards) and every message is re-encoded to its wire form and
/// journaled to worker-private segment streams before insertion — the
/// in-memory table gains a crash-recoverable WAL. Rebuild with
/// replay_segments() after a crash.
class ReceiverService {
public:
    ReceiverService(net::MessageQueue& queue, Database& db, std::size_t workers = 2,
                    storage::SegmentStore* wal = nullptr);
    ~ReceiverService();

    ReceiverService(const ReceiverService&) = delete;
    ReceiverService& operator=(const ReceiverService&) = delete;

    /// Blocks until the queue is closed and fully drained, then joins.
    /// In durable mode, also syncs the WAL.
    void finish();

    std::uint64_t inserted() const { return inserted_.load(); }
    /// Messages journaled to the WAL (durable mode only).
    std::uint64_t journaled() const { return journaled_.load(); }

private:
    net::MessageQueue& queue_;
    Table& table_;
    storage::SegmentStore* wal_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> inserted_{0};
    std::atomic<std::uint64_t> journaled_{0};
};

/// Outcome of rebuilding the messages table from a segment directory.
struct SegmentReplayResult {
    storage::ReplayStats storage;    ///< segment-level accounting (tears, CRC)
    std::uint64_t inserted = 0;      ///< records decoded and inserted as rows
    std::uint64_t malformed = 0;     ///< records that were not SIREN datagrams
};

/// Crash recovery: decode every complete record under `directory` (see
/// storage::replay_directory) and insert it into `db`'s messages table,
/// creating the table if needed. Torn tails and checksum failures are
/// reported in the result, never thrown.
SegmentReplayResult replay_segments(const std::string& directory, Database& db);

}  // namespace siren::db
