#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"

namespace siren::db {

/// Name of the raw-message table every receiver writes into.
inline constexpr const char* kMessagesTable = "messages";

/// Create the raw UDP-message table with the paper's column set
/// (JOBID, STEPID, PID, HASH, HOST, TIME, LAYER, TYPE + SEQ/TOTAL/CONTENT).
Table& create_message_table(Database& db);

/// Append one decoded message as a row.
void insert_message(Table& table, const net::Message& m);

/// Reconstruct a net::Message from a stored row (used by consolidation).
net::Message message_from_row(const Table& table, std::size_t row);

/// The receiver server: drains a MessageQueue into the messages table with
/// `workers` threads — the C++ rendition of the paper's Go server reading a
/// buffered channel and inserting into SQLite. Stop by closing the queue;
/// the destructor joins.
class ReceiverService {
public:
    ReceiverService(net::MessageQueue& queue, Database& db, std::size_t workers = 2);
    ~ReceiverService();

    ReceiverService(const ReceiverService&) = delete;
    ReceiverService& operator=(const ReceiverService&) = delete;

    /// Blocks until the queue is closed and fully drained, then joins.
    void finish();

    std::uint64_t inserted() const { return inserted_.load(); }

private:
    net::MessageQueue& queue_;
    Table& table_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> inserted_{0};
};

}  // namespace siren::db
