#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "db/value.hpp"

namespace siren::db {

/// One relation of the embedded store: a declared schema plus row storage.
///
/// This is the SQLite substitute the UDP receiver writes into: the paper
/// stores raw UDP messages keyed by their header columns and later scans
/// them for consolidation. The operations provided (append, scan, filter,
/// group-by, distinct, sort) are exactly what that workflow needs.
/// Appends are internally synchronized; reads assume writers have quiesced
/// (the pipeline is collect -> drain -> analyze).
class Table {
public:
    using Row = std::vector<Value>;

    Table() = default;
    Table(std::string name, std::vector<Column> columns);

    const std::string& name() const { return name_; }
    const std::vector<Column>& columns() const { return columns_; }

    /// Column index by name; throws siren::util::Error when absent.
    std::size_t column_index(std::string_view column) const;

    /// Validated append: arity and per-cell variant type must match the
    /// schema. Thread-safe.
    void append(Row row);

    std::size_t row_count() const { return rows_.size(); }
    const Row& row(std::size_t i) const { return rows_.at(i); }

    /// Typed cell accessors (throw on type mismatch).
    std::int64_t get_int(std::size_t row, std::string_view column) const;
    double get_real(std::size_t row, std::string_view column) const;
    const std::string& get_text(std::size_t row, std::string_view column) const;

    /// Indexes of rows satisfying `pred`.
    std::vector<std::size_t> filter(
        const std::function<bool(const Row&)>& pred) const;

    /// Distinct text values of a column, sorted.
    std::vector<std::string> distinct_text(std::string_view column) const;

    /// Group row indexes by the text rendering of one column.
    std::map<std::string, std::vector<std::size_t>> group_by_text(
        std::string_view column) const;

    /// Render any cell as text (ints/reals stringified) — used by group-by
    /// and persistence.
    static std::string render(const Value& v);

    /// Stable sort of rows by a comparator over rows.
    void sort(const std::function<bool(const Row&, const Row&)>& less);

private:
    std::string name_;
    std::vector<Column> columns_;
    std::vector<Row> rows_;
    mutable std::mutex append_mutex_;
};

}  // namespace siren::db
