#include "db/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::db {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
    util::require(!columns_.empty(), "table '" + name_ + "' needs columns");
}

std::size_t Table::column_index(std::string_view column) const {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].name == column) return i;
    }
    throw util::Error("table '" + name_ + "' has no column '" + std::string(column) + "'");
}

void Table::append(Row row) {
    util::require(row.size() == columns_.size(),
                  "table '" + name_ + "': row arity mismatch");
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i].index() != variant_index(columns_[i].type)) {
            throw util::Error("table '" + name_ + "': column '" + columns_[i].name +
                              "' type mismatch");
        }
    }
    std::lock_guard lock(append_mutex_);
    rows_.push_back(std::move(row));
}

std::int64_t Table::get_int(std::size_t row, std::string_view column) const {
    const Value& v = rows_.at(row).at(column_index(column));
    if (const auto* p = std::get_if<std::int64_t>(&v)) return *p;
    throw util::Error("column '" + std::string(column) + "' is not INT");
}

double Table::get_real(std::size_t row, std::string_view column) const {
    const Value& v = rows_.at(row).at(column_index(column));
    if (const auto* p = std::get_if<double>(&v)) return *p;
    throw util::Error("column '" + std::string(column) + "' is not REAL");
}

const std::string& Table::get_text(std::size_t row, std::string_view column) const {
    const Value& v = rows_.at(row).at(column_index(column));
    if (const auto* p = std::get_if<std::string>(&v)) return *p;
    throw util::Error("column '" + std::string(column) + "' is not TEXT");
}

std::vector<std::size_t> Table::filter(const std::function<bool(const Row&)>& pred) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (pred(rows_[i])) out.push_back(i);
    }
    return out;
}

std::vector<std::string> Table::distinct_text(std::string_view column) const {
    const std::size_t c = column_index(column);
    std::vector<std::string> out;
    out.reserve(rows_.size());
    for (const auto& row : rows_) out.push_back(render(row[c]));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::map<std::string, std::vector<std::size_t>> Table::group_by_text(
    std::string_view column) const {
    const std::size_t c = column_index(column);
    std::map<std::string, std::vector<std::size_t>> out;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        out[render(rows_[i][c])].push_back(i);
    }
    return out;
}

std::string Table::render(const Value& v) {
    switch (v.index()) {
        case 0: return std::to_string(std::get<std::int64_t>(v));
        case 1: return util::fixed(std::get<double>(v), 6);
        default: return std::get<std::string>(v);
    }
}

void Table::sort(const std::function<bool(const Row&, const Row&)>& less) {
    std::stable_sort(rows_.begin(), rows_.end(), less);
}

}  // namespace siren::db
