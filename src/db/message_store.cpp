#include "db/message_store.hpp"

#include "net/codec.hpp"
#include "util/error.hpp"

namespace siren::db {

Table& create_message_table(Database& db) {
    return db.create_table(kMessagesTable, {
                                               {"JOBID", ColumnType::kInt},
                                               {"STEPID", ColumnType::kInt},
                                               {"PID", ColumnType::kInt},
                                               {"HASH", ColumnType::kText},
                                               {"HOST", ColumnType::kText},
                                               {"TIME", ColumnType::kInt},
                                               {"LAYER", ColumnType::kText},
                                               {"TYPE", ColumnType::kText},
                                               {"SEQ", ColumnType::kInt},
                                               {"TOTAL", ColumnType::kInt},
                                               {"CONTENT", ColumnType::kText},
                                           });
}

void insert_message(Table& table, const net::Message& m) {
    table.append({
        static_cast<std::int64_t>(m.job_id),
        static_cast<std::int64_t>(m.step_id),
        m.pid,
        m.exe_hash,
        m.host,
        m.time,
        std::string(net::to_string(m.layer)),
        std::string(net::to_string(m.type)),
        static_cast<std::int64_t>(m.seq),
        static_cast<std::int64_t>(m.total),
        m.content,
    });
}

net::Message message_from_row(const Table& table, std::size_t row) {
    net::Message m;
    m.job_id = static_cast<std::uint64_t>(table.get_int(row, "JOBID"));
    m.step_id = static_cast<std::uint32_t>(table.get_int(row, "STEPID"));
    m.pid = table.get_int(row, "PID");
    m.exe_hash = table.get_text(row, "HASH");
    m.host = table.get_text(row, "HOST");
    m.time = table.get_int(row, "TIME");
    m.layer = net::layer_from_string(table.get_text(row, "LAYER"));
    m.type = net::msg_type_from_string(table.get_text(row, "TYPE"));
    m.seq = static_cast<std::uint32_t>(table.get_int(row, "SEQ"));
    m.total = static_cast<std::uint32_t>(table.get_int(row, "TOTAL"));
    m.content = table.get_text(row, "CONTENT");
    return m;
}

ReceiverService::ReceiverService(net::MessageQueue& queue, Database& db, std::size_t workers,
                                 storage::SegmentStore* wal)
    : queue_(queue),
      table_(db.has_table(kMessagesTable) ? db.table(kMessagesTable) : create_message_table(db)),
      wal_(wal) {
    util::require(workers >= 1, "ReceiverService needs at least one worker");
    if (wal_ != nullptr) {
        util::require(wal_->shards() >= workers,
                      "ReceiverService WAL needs one segment shard per worker");
    }
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] {
            std::string wire;  // reused wire buffer: encode_into allocates only to warm it
            while (auto m = queue_.pop()) {
                if (wal_ != nullptr) {
                    net::encode_into(*m, wire);
                    if (wal_->append(i, wire)) {
                        journaled_.fetch_add(1, std::memory_order_relaxed);
                    }
                }
                insert_message(table_, *m);
                inserted_.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
}

ReceiverService::~ReceiverService() { finish(); }

void ReceiverService::finish() {
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
    if (wal_ != nullptr) wal_->sync_all();
}

SegmentReplayResult replay_segments(const std::string& directory, Database& db) {
    SegmentReplayResult result;
    Table& table =
        db.has_table(kMessagesTable) ? db.table(kMessagesTable) : create_message_table(db);
    result.storage = storage::replay_directory(directory, [&](std::string_view record) {
        try {
            insert_message(table, net::decode(record));
            ++result.inserted;
        } catch (const util::ParseError&) {
            ++result.malformed;
        }
    });
    return result;
}

}  // namespace siren::db
