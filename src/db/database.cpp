#include "db/database.hpp"

#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::db {

namespace fs = std::filesystem;

Table& Database::create_table(const std::string& name, std::vector<Column> columns) {
    auto [it, inserted] =
        tables_.emplace(name, std::make_unique<Table>(name, std::move(columns)));
    util::require(inserted, "table '" + name + "' already exists");
    return *it->second;
}

Table& Database::table(const std::string& name) {
    auto it = tables_.find(name);
    util::require(it != tables_.end(), "no table '" + name + "'");
    return *it->second;
}

const Table& Database::table(const std::string& name) const {
    auto it = tables_.find(name);
    util::require(it != tables_.end(), "no table '" + name + "'");
    return *it->second;
}

bool Database::has_table(const std::string& name) const {
    return tables_.find(name) != tables_.end();
}

std::vector<std::string> Database::table_names() const {
    std::vector<std::string> out;
    out.reserve(tables_.size());
    for (const auto& [name, table] : tables_) out.push_back(name);
    return out;
}

void Database::save(const std::string& directory) const {
    fs::create_directories(directory);
    for (const auto& [name, table] : tables_) {
        std::ofstream out(fs::path(directory) / (name + ".tsv"));
        if (!out) throw util::SystemError("cannot write table file for '" + name + "'");

        std::vector<std::string> header;
        header.reserve(table->columns().size());
        for (const auto& col : table->columns()) {
            header.push_back(col.name + ":" + to_string(col.type));
        }
        out << util::join(header, "\t") << '\n';

        for (std::size_t r = 0; r < table->row_count(); ++r) {
            const auto& row = table->row(r);
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c != 0) out << '\t';
                out << util::escape_field(Table::render(row[c]));
            }
            out << '\n';
        }
    }
}

Database Database::load(const std::string& directory) {
    Database db;
    for (const auto& entry : fs::directory_iterator(directory)) {
        if (entry.path().extension() != ".tsv") continue;
        const std::string name = entry.path().stem().string();

        std::ifstream in(entry.path());
        if (!in) throw util::SystemError("cannot read " + entry.path().string());

        std::string line;
        if (!std::getline(in, line)) throw util::ParseError("empty table file: " + name);

        std::vector<Column> columns;
        for (const auto& decl : util::split(line, '\t')) {
            const auto parts = util::split(decl, ':');
            if (parts.size() != 2) throw util::ParseError("bad column declaration: " + decl);
            Column col;
            col.name = parts[0];
            if (parts[1] == "INT") col.type = ColumnType::kInt;
            else if (parts[1] == "REAL") col.type = ColumnType::kReal;
            else if (parts[1] == "TEXT") col.type = ColumnType::kText;
            else throw util::ParseError("bad column type: " + parts[1]);
            columns.push_back(std::move(col));
        }

        Table& table = db.create_table(name, std::move(columns));
        while (std::getline(in, line)) {
            const auto cells = util::split(line, '\t');
            if (cells.size() != table.columns().size()) {
                throw util::ParseError("row arity mismatch in " + name);
            }
            Table::Row row;
            row.reserve(cells.size());
            for (std::size_t c = 0; c < cells.size(); ++c) {
                const std::string text = util::unescape_field(cells[c]);
                switch (table.columns()[c].type) {
                    case ColumnType::kInt: row.emplace_back(static_cast<std::int64_t>(std::stoll(text))); break;
                    case ColumnType::kReal: row.emplace_back(std::stod(text)); break;
                    case ColumnType::kText: row.emplace_back(text); break;
                }
            }
            table.append(std::move(row));
        }
    }
    return db;
}

}  // namespace siren::db
