#include "elfio/extract.hpp"

#include "util/strings.hpp"

namespace siren::elfio {

std::vector<std::string> printable_strings(std::span<const std::uint8_t> image,
                                           std::size_t min_length) {
    std::vector<std::string> out;
    std::string current;
    for (const std::uint8_t c : image) {
        if (util::is_printable(c)) {
            current += static_cast<char>(c);
        } else {
            if (current.size() >= min_length) out.push_back(current);
            current.clear();
        }
    }
    if (current.size() >= min_length) out.push_back(current);
    return out;
}

std::string strings_blob(const std::vector<std::string>& entries) {
    std::string blob;
    for (const auto& e : entries) {
        blob += e;
        blob += '\n';
    }
    return blob;
}

}  // namespace siren::elfio
