#pragma once

#include <cstdint>

/// Self-contained ELF64 definitions (subset) so the library does not depend
/// on <elf.h>. Field names follow the System V gABI. Only little-endian
/// ELF64 is supported, matching the paper's target (x86-64 / LUMI).
namespace siren::elfio {

inline constexpr unsigned char kMagic[4] = {0x7f, 'E', 'L', 'F'};
inline constexpr unsigned char kClass64 = 2;       // ELFCLASS64
inline constexpr unsigned char kDataLittle = 1;    // ELFDATA2LSB
inline constexpr unsigned char kVersionCurrent = 1;

// e_type
inline constexpr std::uint16_t ET_EXEC = 2;
inline constexpr std::uint16_t ET_DYN = 3;

// e_machine
inline constexpr std::uint16_t EM_X86_64 = 62;

// sh_type
inline constexpr std::uint32_t SHT_NULL = 0;
inline constexpr std::uint32_t SHT_PROGBITS = 1;
inline constexpr std::uint32_t SHT_SYMTAB = 2;
inline constexpr std::uint32_t SHT_STRTAB = 3;
inline constexpr std::uint32_t SHT_DYNAMIC = 6;
inline constexpr std::uint32_t SHT_NOTE = 7;
inline constexpr std::uint32_t SHT_NOBITS = 8;
inline constexpr std::uint32_t SHT_DYNSYM = 11;

// note types
inline constexpr std::uint32_t NT_GNU_BUILD_ID = 3;

// sh_flags
inline constexpr std::uint64_t SHF_ALLOC = 0x2;
inline constexpr std::uint64_t SHF_EXECINSTR = 0x4;

// symbol binding / type (st_info = bind << 4 | type)
inline constexpr unsigned char STB_LOCAL = 0;
inline constexpr unsigned char STB_GLOBAL = 1;
inline constexpr unsigned char STB_WEAK = 2;
inline constexpr unsigned char STT_NOTYPE = 0;
inline constexpr unsigned char STT_OBJECT = 1;
inline constexpr unsigned char STT_FUNC = 2;

// special section indexes
inline constexpr std::uint16_t SHN_UNDEF = 0;

// dynamic tags
inline constexpr std::int64_t DT_NULL = 0;
inline constexpr std::int64_t DT_NEEDED = 1;
inline constexpr std::int64_t DT_STRTAB = 5;
inline constexpr std::int64_t DT_SONAME = 14;

// program header types
inline constexpr std::uint32_t PT_LOAD = 1;
inline constexpr std::uint32_t PT_DYNAMIC = 2;

struct Elf64_Ehdr {
    unsigned char e_ident[16];
    std::uint16_t e_type;
    std::uint16_t e_machine;
    std::uint32_t e_version;
    std::uint64_t e_entry;
    std::uint64_t e_phoff;
    std::uint64_t e_shoff;
    std::uint32_t e_flags;
    std::uint16_t e_ehsize;
    std::uint16_t e_phentsize;
    std::uint16_t e_phnum;
    std::uint16_t e_shentsize;
    std::uint16_t e_shnum;
    std::uint16_t e_shstrndx;
};
static_assert(sizeof(Elf64_Ehdr) == 64);

struct Elf64_Shdr {
    std::uint32_t sh_name;
    std::uint32_t sh_type;
    std::uint64_t sh_flags;
    std::uint64_t sh_addr;
    std::uint64_t sh_offset;
    std::uint64_t sh_size;
    std::uint32_t sh_link;
    std::uint32_t sh_info;
    std::uint64_t sh_addralign;
    std::uint64_t sh_entsize;
};
static_assert(sizeof(Elf64_Shdr) == 64);

struct Elf64_Phdr {
    std::uint32_t p_type;
    std::uint32_t p_flags;
    std::uint64_t p_offset;
    std::uint64_t p_vaddr;
    std::uint64_t p_paddr;
    std::uint64_t p_filesz;
    std::uint64_t p_memsz;
    std::uint64_t p_align;
};
static_assert(sizeof(Elf64_Phdr) == 56);

struct Elf64_Sym {
    std::uint32_t st_name;
    unsigned char st_info;
    unsigned char st_other;
    std::uint16_t st_shndx;
    std::uint64_t st_value;
    std::uint64_t st_size;
};
static_assert(sizeof(Elf64_Sym) == 24);

struct Elf64_Dyn {
    std::int64_t d_tag;
    std::uint64_t d_val;
};
static_assert(sizeof(Elf64_Dyn) == 16);

}  // namespace siren::elfio
