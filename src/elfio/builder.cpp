#include "elfio/builder.hpp"

#include <cstring>

namespace siren::elfio {

namespace {

/// Incremental string table: dedups entries, offset 0 is the empty string.
class StringTable {
public:
    StringTable() : blob_(1, '\0') {}

    std::uint32_t add(const std::string& s) {
        if (s.empty()) return 0;
        // Linear scan is fine: tables here hold tens of strings.
        for (std::size_t off = 1; off + s.size() < blob_.size();) {
            const char* entry = blob_.data() + off;
            const std::size_t len = std::strlen(entry);
            if (len == s.size() && std::memcmp(entry, s.data(), len) == 0) {
                return static_cast<std::uint32_t>(off);
            }
            off += len + 1;
        }
        const auto offset = static_cast<std::uint32_t>(blob_.size());
        blob_.insert(blob_.end(), s.begin(), s.end());
        blob_.push_back('\0');
        return offset;
    }

    const std::vector<char>& blob() const { return blob_; }

private:
    std::vector<char> blob_;
};

void append_bytes(std::vector<std::uint8_t>& out, const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + size);
}

void pad_to(std::vector<std::uint8_t>& out, std::size_t alignment) {
    while (out.size() % alignment != 0) out.push_back(0);
}

}  // namespace

Builder::Builder() = default;

Builder& Builder::set_type(std::uint16_t e_type) {
    type_ = e_type;
    return *this;
}

Builder& Builder::set_entry(std::uint64_t entry) {
    entry_ = entry;
    return *this;
}

Builder& Builder::set_text(std::vector<std::uint8_t> code) {
    text_ = std::move(code);
    return *this;
}

Builder& Builder::set_rodata(std::vector<std::uint8_t> data) {
    rodata_ = std::move(data);
    return *this;
}

Builder& Builder::set_rodata_strings(const std::vector<std::string>& strings) {
    rodata_.clear();
    for (const auto& s : strings) {
        rodata_.insert(rodata_.end(), s.begin(), s.end());
        rodata_.push_back(0);
    }
    return *this;
}

Builder& Builder::set_comments(const std::vector<std::string>& comments) {
    comments_ = comments;
    return *this;
}

Builder& Builder::set_needed(const std::vector<std::string>& libraries) {
    needed_ = libraries;
    return *this;
}

Builder& Builder::set_symbols(std::vector<BuildSymbol> symbols) {
    symbols_ = std::move(symbols);
    return *this;
}

Builder& Builder::set_build_id(std::vector<std::uint8_t> id) {
    build_id_ = std::move(id);
    return *this;
}

std::vector<std::uint8_t> Builder::build() const {
    // Section order: NULL, .text, .rodata, .comment, .dynstr, .dynamic,
    // .strtab, .symtab, .shstrtab. Offsets are assigned sequentially after
    // the ELF and program headers.
    StringTable shstrtab;
    StringTable dynstr;
    StringTable strtab;

    // --- payload blobs -----------------------------------------------------
    std::vector<std::uint8_t> comment_blob;
    for (const auto& c : comments_) {
        comment_blob.insert(comment_blob.end(), c.begin(), c.end());
        comment_blob.push_back(0);
    }

    std::vector<Elf64_Dyn> dynamic;
    for (const auto& lib : needed_) {
        dynamic.push_back({DT_NEEDED, dynstr.add(lib)});
    }
    dynamic.push_back({DT_NULL, 0});

    std::vector<std::uint8_t> note_blob;
    if (!build_id_.empty()) {
        // namesz=4 ("GNU\0"), descsz=|id|, type=NT_GNU_BUILD_ID.
        const std::uint32_t namesz = 4;
        const auto descsz = static_cast<std::uint32_t>(build_id_.size());
        const std::uint32_t type = NT_GNU_BUILD_ID;
        append_bytes(note_blob, &namesz, 4);
        append_bytes(note_blob, &descsz, 4);
        append_bytes(note_blob, &type, 4);
        append_bytes(note_blob, "GNU\0", 4);
        note_blob.insert(note_blob.end(), build_id_.begin(), build_id_.end());
        pad_to(note_blob, 4);
    }

    std::vector<Elf64_Sym> syms;
    syms.push_back({});  // index 0: NULL symbol
    for (const auto& s : symbols_) {
        Elf64_Sym raw{};
        raw.st_name = strtab.add(s.name);
        raw.st_info = static_cast<unsigned char>((s.bind << 4) | (s.type & 0xf));
        raw.st_other = 0;
        raw.st_shndx = 1;  // pretend defined in .text
        raw.st_value = s.value;
        raw.st_size = s.size;
        syms.push_back(raw);
    }

    // --- section table skeleton -------------------------------------------
    struct Pending {
        std::string name;
        std::uint32_t type;
        std::uint64_t flags;
        const void* data;
        std::uint64_t size;
        std::uint32_t link;
        std::uint64_t entsize;
        std::uint32_t info;
    };

    const std::uint32_t kDynstrIndex = 4;
    const std::uint32_t kStrtabIndex = 6;

    std::vector<Pending> pending = {
        {"", SHT_NULL, 0, nullptr, 0, 0, 0, 0},
        {".text", SHT_PROGBITS, SHF_ALLOC | SHF_EXECINSTR, text_.data(), text_.size(), 0, 0, 0},
        {".rodata", SHT_PROGBITS, SHF_ALLOC, rodata_.data(), rodata_.size(), 0, 0, 0},
        {".comment", SHT_PROGBITS, 0, comment_blob.data(), comment_blob.size(), 0, 0, 0},
        {".dynstr", SHT_STRTAB, SHF_ALLOC, dynstr.blob().data(), dynstr.blob().size(), 0, 0, 0},
        {".dynamic", SHT_DYNAMIC, SHF_ALLOC, dynamic.data(),
         dynamic.size() * sizeof(Elf64_Dyn), kDynstrIndex, sizeof(Elf64_Dyn), 0},
        {".strtab", SHT_STRTAB, 0, strtab.blob().data(), strtab.blob().size(), 0, 0, 0},
        {".symtab", SHT_SYMTAB, 0, syms.data(), syms.size() * sizeof(Elf64_Sym), kStrtabIndex,
         sizeof(Elf64_Sym), 1},
        {".note.gnu.build-id", SHT_NOTE, SHF_ALLOC, note_blob.data(), note_blob.size(), 0, 0, 0},
        {".shstrtab", SHT_STRTAB, 0, nullptr, 0, 0, 0, 0},  // filled below
    };

    std::vector<std::uint32_t> name_offsets;
    name_offsets.reserve(pending.size());
    for (const auto& p : pending) name_offsets.push_back(shstrtab.add(p.name));
    // .shstrtab's own blob is now final.
    pending.back().data = shstrtab.blob().data();
    pending.back().size = shstrtab.blob().size();

    // --- layout -------------------------------------------------------------
    const std::uint16_t phnum = 1;
    const std::size_t header_bytes = sizeof(Elf64_Ehdr) + phnum * sizeof(Elf64_Phdr);
    std::vector<std::uint8_t> out(header_bytes, 0);

    std::vector<Elf64_Shdr> shdrs(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
        pad_to(out, 8);
        Elf64_Shdr& sh = shdrs[i];
        sh.sh_name = name_offsets[i];
        sh.sh_type = pending[i].type;
        sh.sh_flags = pending[i].flags;
        sh.sh_addr = (pending[i].flags & SHF_ALLOC) ? entry_ + out.size() : 0;
        sh.sh_offset = (pending[i].type == SHT_NULL) ? 0 : out.size();
        sh.sh_size = pending[i].size;
        sh.sh_link = pending[i].link;
        sh.sh_info = pending[i].info;
        sh.sh_addralign = (pending[i].type == SHT_NULL) ? 0 : 8;
        sh.sh_entsize = pending[i].entsize;
        if (pending[i].size != 0 && pending[i].data != nullptr) {
            append_bytes(out, pending[i].data, pending[i].size);
        }
    }

    pad_to(out, 8);
    const std::uint64_t shoff = out.size();
    for (const auto& sh : shdrs) append_bytes(out, &sh, sizeof sh);

    // --- headers ------------------------------------------------------------
    Elf64_Ehdr ehdr{};
    std::memcpy(ehdr.e_ident, kMagic, 4);
    ehdr.e_ident[4] = kClass64;
    ehdr.e_ident[5] = kDataLittle;
    ehdr.e_ident[6] = kVersionCurrent;
    ehdr.e_type = type_;
    ehdr.e_machine = EM_X86_64;
    ehdr.e_version = kVersionCurrent;
    ehdr.e_entry = entry_;
    ehdr.e_phoff = sizeof(Elf64_Ehdr);
    ehdr.e_shoff = shoff;
    ehdr.e_ehsize = sizeof(Elf64_Ehdr);
    ehdr.e_phentsize = sizeof(Elf64_Phdr);
    ehdr.e_phnum = phnum;
    ehdr.e_shentsize = sizeof(Elf64_Shdr);
    ehdr.e_shnum = static_cast<std::uint16_t>(shdrs.size());
    ehdr.e_shstrndx = static_cast<std::uint16_t>(shdrs.size() - 1);
    std::memcpy(out.data(), &ehdr, sizeof ehdr);

    Elf64_Phdr phdr{};
    phdr.p_type = PT_LOAD;
    phdr.p_flags = 5;  // R+X
    phdr.p_offset = 0;
    phdr.p_vaddr = entry_;
    phdr.p_paddr = entry_;
    phdr.p_filesz = out.size();
    phdr.p_memsz = out.size();
    phdr.p_align = 0x1000;
    std::memcpy(out.data() + sizeof(Elf64_Ehdr), &phdr, sizeof phdr);

    return out;
}

}  // namespace siren::elfio
