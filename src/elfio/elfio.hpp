#pragma once

/// Umbrella header for the ELF substrate (the libelf substitute):
///  - elf_types.hpp  raw ELF64 structures and constants
///  - reader.hpp     bounds-checked parser (sections, symbols, .comment,
///                   DT_NEEDED)
///  - builder.hpp    in-memory ELF64 writer used by the workload generator
///  - extract.hpp    strings(1)-style printable-string extraction

#include "elfio/builder.hpp"    // IWYU pragma: export
#include "elfio/elf_types.hpp"  // IWYU pragma: export
#include "elfio/extract.hpp"    // IWYU pragma: export
#include "elfio/reader.hpp"     // IWYU pragma: export
