#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elfio/elf_types.hpp"

namespace siren::elfio {

/// A symbol to be emitted into .symtab.
struct BuildSymbol {
    std::string name;
    unsigned char bind = STB_GLOBAL;
    unsigned char type = STT_FUNC;
    std::uint64_t value = 0;
    std::uint64_t size = 0;
};

/// Constructs valid little-endian ELF64 images in memory.
///
/// The workload generator uses this to synthesize realistic application
/// binaries: .text carries (seeded pseudo-random) code bytes, .rodata the
/// printable strings, .comment the compiler identification strings,
/// .dynamic/.dynstr the DT_NEEDED shared-library names, and .symtab the
/// global function/object symbols. Images round-trip through
/// elfio::Reader, and the extraction helpers (strings/symbols/comments)
/// recover exactly what was put in.
class Builder {
public:
    Builder();

    Builder& set_type(std::uint16_t e_type);
    Builder& set_entry(std::uint64_t entry);

    /// Executable code bytes (.text, SHF_ALLOC|SHF_EXECINSTR).
    Builder& set_text(std::vector<std::uint8_t> code);

    /// Read-only data blob (.rodata); typically NUL-joined printable strings.
    Builder& set_rodata(std::vector<std::uint8_t> data);

    /// Convenience: join strings with NUL separators into .rodata.
    Builder& set_rodata_strings(const std::vector<std::string>& strings);

    /// Compiler identification strings (.comment, NUL separated).
    Builder& set_comments(const std::vector<std::string>& comments);

    /// DT_NEEDED shared libraries, in order.
    Builder& set_needed(const std::vector<std::string>& libraries);

    /// Symbols for .symtab (a NULL symbol is prepended automatically).
    Builder& set_symbols(std::vector<BuildSymbol> symbols);

    /// GNU build id (.note.gnu.build-id); empty disables the note.
    Builder& set_build_id(std::vector<std::uint8_t> id);

    /// Serialize. The builder can be reused; build() is const.
    std::vector<std::uint8_t> build() const;

private:
    std::uint16_t type_ = ET_EXEC;
    std::uint64_t entry_ = 0x400000;
    std::vector<std::uint8_t> text_;
    std::vector<std::uint8_t> rodata_;
    std::vector<std::string> comments_;
    std::vector<std::string> needed_;
    std::vector<BuildSymbol> symbols_;
    std::vector<std::uint8_t> build_id_;
};

}  // namespace siren::elfio
