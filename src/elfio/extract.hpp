#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace siren::elfio {

/// Extract printable ASCII runs of at least `min_length` characters from a
/// binary image — the `strings(1)` equivalent whose output feeds the ST_H
/// fuzzy hash in the paper.
std::vector<std::string> printable_strings(std::span<const std::uint8_t> image,
                                           std::size_t min_length = 4);

/// The canonical single-text forms the collector fuzzy-hashes: entries
/// joined with '\n'. Centralized so hashes computed at collection time and
/// at analysis time agree byte-for-byte.
std::string strings_blob(const std::vector<std::string>& entries);

}  // namespace siren::elfio
