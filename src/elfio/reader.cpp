#include "elfio/reader.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace siren::elfio {

using util::ParseError;

namespace {

template <typename T>
T read_struct(std::span<const std::uint8_t> image, std::uint64_t offset) {
    if (offset > image.size() || image.size() - offset < sizeof(T)) {
        throw ParseError("elf: structure extends past end of file");
    }
    T value;
    std::memcpy(&value, image.data() + offset, sizeof(T));
    return value;
}

}  // namespace

bool Reader::looks_like_elf(std::span<const std::uint8_t> image) {
    if (image.size() < sizeof(Elf64_Ehdr)) return false;
    return std::memcmp(image.data(), kMagic, 4) == 0 && image[4] == kClass64 &&
           image[5] == kDataLittle;
}

Reader::Reader(std::span<const std::uint8_t> image) : image_(image) {
    if (image.size() < sizeof(Elf64_Ehdr)) throw ParseError("elf: file shorter than ELF header");
    if (std::memcmp(image.data(), kMagic, 4) != 0) throw ParseError("elf: bad magic");
    if (image[4] != kClass64) throw ParseError("elf: not ELF64");
    if (image[5] != kDataLittle) throw ParseError("elf: not little-endian");

    const auto ehdr = read_struct<Elf64_Ehdr>(image, 0);
    type_ = ehdr.e_type;
    machine_ = ehdr.e_machine;
    entry_ = ehdr.e_entry;

    if (ehdr.e_shnum == 0) return;  // sectionless images are legal
    if (ehdr.e_shentsize != sizeof(Elf64_Shdr)) throw ParseError("elf: unexpected shentsize");
    if (ehdr.e_shstrndx >= ehdr.e_shnum) throw ParseError("elf: shstrndx out of range");

    std::vector<Elf64_Shdr> raw(ehdr.e_shnum);
    for (std::uint16_t i = 0; i < ehdr.e_shnum; ++i) {
        raw[i] = read_struct<Elf64_Shdr>(image, ehdr.e_shoff + i * sizeof(Elf64_Shdr));
    }

    const Elf64_Shdr& shstr = raw[ehdr.e_shstrndx];
    if (shstr.sh_offset + shstr.sh_size > image.size()) {
        throw ParseError("elf: shstrtab out of bounds");
    }
    const char* names = reinterpret_cast<const char*>(image.data() + shstr.sh_offset);

    sections_.reserve(raw.size());
    for (const auto& sh : raw) {
        Section s;
        if (sh.sh_name < shstr.sh_size) {
            const char* start = names + sh.sh_name;
            const std::size_t max_len = shstr.sh_size - sh.sh_name;
            const std::size_t len = ::strnlen(start, max_len);
            s.name.assign(start, len);
        }
        s.type = sh.sh_type;
        s.flags = sh.sh_flags;
        s.addr = sh.sh_addr;
        s.offset = sh.sh_offset;
        s.size = sh.sh_size;
        s.link = sh.sh_link;
        s.entsize = sh.sh_entsize;
        if (s.type != SHT_NOBITS && s.type != SHT_NULL &&
            (s.offset > image.size() || s.size > image.size() - s.offset)) {
            throw ParseError("elf: section '" + s.name + "' out of bounds");
        }
        sections_.push_back(std::move(s));
    }
}

const Section* Reader::section_by_name(std::string_view name) const {
    for (const auto& s : sections_) {
        if (s.name == name) return &s;
    }
    return nullptr;
}

std::span<const std::uint8_t> Reader::section_data(const Section& s) const {
    if (s.type == SHT_NOBITS || s.type == SHT_NULL) return {};
    return image_.subspan(s.offset, s.size);
}

std::vector<std::string> Reader::comment_strings() const {
    const Section* comment = section_by_name(".comment");
    if (comment == nullptr) return {};
    const auto data = section_data(*comment);

    std::vector<std::string> out;
    std::string current;
    for (const std::uint8_t c : data) {
        if (c == 0) {
            if (!current.empty()) out.push_back(std::move(current));
            current.clear();
        } else {
            current += static_cast<char>(c);
        }
    }
    if (!current.empty()) out.push_back(std::move(current));
    return out;
}

std::string Reader::string_at(const Section& strtab, std::uint64_t offset) const {
    if (offset >= strtab.size) return {};
    const auto data = section_data(strtab);
    const char* start = reinterpret_cast<const char*>(data.data()) + offset;
    const std::size_t len = ::strnlen(start, strtab.size - offset);
    return std::string(start, len);
}

std::vector<Symbol> Reader::symbols_from(const Section& symtab) const {
    if (symtab.entsize != sizeof(Elf64_Sym)) throw ParseError("elf: bad symtab entsize");
    if (symtab.link >= sections_.size()) throw ParseError("elf: symtab strtab link invalid");
    const Section& strtab = sections_[symtab.link];

    const std::uint64_t count = symtab.size / sizeof(Elf64_Sym);
    std::vector<Symbol> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto raw =
            read_struct<Elf64_Sym>(image_, symtab.offset + i * sizeof(Elf64_Sym));
        Symbol sym;
        sym.name = string_at(strtab, raw.st_name);
        sym.value = raw.st_value;
        sym.size = raw.st_size;
        sym.bind = static_cast<unsigned char>(raw.st_info >> 4);
        sym.type = static_cast<unsigned char>(raw.st_info & 0xf);
        sym.shndx = raw.st_shndx;
        out.push_back(std::move(sym));
    }
    return out;
}

std::vector<Symbol> Reader::symbols() const {
    if (const Section* s = section_by_name(".symtab")) return symbols_from(*s);
    if (const Section* s = section_by_name(".dynsym")) return symbols_from(*s);
    return {};
}

std::vector<std::string> Reader::global_symbol_names() const {
    std::vector<std::string> names;
    for (auto& sym : symbols()) {
        if (sym.is_global() && sym.is_defined() && !sym.name.empty()) {
            names.push_back(std::move(sym.name));
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    return names;
}

std::vector<std::string> Reader::needed_libraries() const {
    const Section* dynamic = section_by_name(".dynamic");
    if (dynamic == nullptr) return {};
    if (dynamic->entsize != sizeof(Elf64_Dyn)) throw ParseError("elf: bad dynamic entsize");
    if (dynamic->link >= sections_.size()) throw ParseError("elf: dynamic strtab link invalid");
    const Section& dynstr = sections_[dynamic->link];

    std::vector<std::string> out;
    const std::uint64_t count = dynamic->size / sizeof(Elf64_Dyn);
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto dyn =
            read_struct<Elf64_Dyn>(image_, dynamic->offset + i * sizeof(Elf64_Dyn));
        if (dyn.d_tag == DT_NULL) break;
        if (dyn.d_tag == DT_NEEDED) out.push_back(string_at(dynstr, dyn.d_val));
    }
    return out;
}

std::string Reader::build_id() const {
    const Section* note = section_by_name(".note.gnu.build-id");
    if (note == nullptr) return {};
    const auto data = section_data(*note);
    // Note layout: namesz(4) descsz(4) type(4) name[namesz pad4] desc[descsz].
    if (data.size() < 12) return {};
    std::uint32_t namesz, descsz, type;
    std::memcpy(&namesz, data.data(), 4);
    std::memcpy(&descsz, data.data() + 4, 4);
    std::memcpy(&type, data.data() + 8, 4);
    if (type != NT_GNU_BUILD_ID) return {};
    const std::size_t name_padded = (namesz + 3) & ~3u;
    if (12 + name_padded + descsz > data.size()) return {};

    static constexpr char kDigits[] = "0123456789abcdef";
    std::string hex;
    hex.reserve(descsz * 2);
    for (std::uint32_t i = 0; i < descsz; ++i) {
        const std::uint8_t b = data[12 + name_padded + i];
        hex += kDigits[b >> 4];
        hex += kDigits[b & 0xf];
    }
    return hex;
}

}  // namespace siren::elfio
