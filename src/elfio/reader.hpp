#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "elfio/elf_types.hpp"

namespace siren::elfio {

/// One parsed section: header fields plus resolved name.
struct Section {
    std::string name;
    std::uint32_t type = SHT_NULL;
    std::uint64_t flags = 0;
    std::uint64_t addr = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t link = 0;
    std::uint64_t entsize = 0;
};

/// One parsed symbol (from .symtab or .dynsym).
struct Symbol {
    std::string name;
    std::uint64_t value = 0;
    std::uint64_t size = 0;
    unsigned char bind = STB_LOCAL;
    unsigned char type = STT_NOTYPE;
    std::uint16_t shndx = SHN_UNDEF;

    bool is_global() const { return bind == STB_GLOBAL || bind == STB_WEAK; }
    bool is_defined() const { return shndx != SHN_UNDEF; }
};

/// Bounds-checked ELF64 (little-endian) reader — the libelf substitute.
///
/// The reader does NOT own the bytes; keep the buffer alive while using it.
/// All accessors throw siren::util::ParseError on structurally invalid
/// input rather than reading out of bounds, so it is safe on untrusted
/// executables (the collector hooks arbitrary user binaries).
class Reader {
public:
    /// Parse headers and the section table. Throws ParseError if `image` is
    /// not a little-endian ELF64 file.
    explicit Reader(std::span<const std::uint8_t> image);

    /// Cheap sniff: does the buffer start with a plausible ELF64 header?
    static bool looks_like_elf(std::span<const std::uint8_t> image);

    std::uint16_t type() const { return type_; }
    std::uint16_t machine() const { return machine_; }
    std::uint64_t entry() const { return entry_; }

    const std::vector<Section>& sections() const { return sections_; }
    const Section* section_by_name(std::string_view name) const;

    /// Raw bytes of one section (empty for SHT_NOBITS).
    std::span<const std::uint8_t> section_data(const Section& s) const;

    /// NUL-separated entries of the .comment section: the compiler
    /// identification strings (paper §3.1 "Compilers").
    std::vector<std::string> comment_strings() const;

    /// All symbols of .symtab, falling back to .dynsym when stripped.
    std::vector<Symbol> symbols() const;

    /// Names of defined global-scope symbols, sorted: the `nm`-equivalent
    /// input of the SY_H fuzzy hash.
    std::vector<std::string> global_symbol_names() const;

    /// DT_NEEDED entries of the dynamic section: shared libraries the
    /// executable links against.
    std::vector<std::string> needed_libraries() const;

    /// GNU build id from .note.gnu.build-id (hex), or empty when absent.
    /// Like the xxh path hash, a build id is an *exact* identifier: useful
    /// to deduplicate identical builds, useless for similarity.
    std::string build_id() const;

private:
    std::string string_at(const Section& strtab, std::uint64_t offset) const;
    std::vector<Symbol> symbols_from(const Section& symtab) const;

    std::span<const std::uint8_t> image_;
    std::uint16_t type_ = 0;
    std::uint16_t machine_ = 0;
    std::uint64_t entry_ = 0;
    std::vector<Section> sections_;
};

}  // namespace siren::elfio
