#include "core/framework.hpp"

#include <algorithm>
#include <span>
#include <thread>

#include "collect/collector.hpp"
#include "db/message_store.hpp"
#include "ingest/ingest_server.hpp"
#include "net/channel.hpp"
#include "net/codec.hpp"
#include "net/udp.hpp"
#include "storage/segment_store.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace siren {

FrameworkOptions FrameworkOptions::from_env() {
    FrameworkOptions o;
    o.scale = util::get_env_double("SIREN_SCALE", o.scale);
    o.loss_rate = util::get_env_double("SIREN_LOSS", o.loss_rate);
    o.seed = static_cast<std::uint64_t>(util::get_env_int("SIREN_SEED", static_cast<std::int64_t>(o.seed)));
    o.threads = static_cast<std::size_t>(util::get_env_int("SIREN_THREADS", 0));
    o.use_ingest = util::get_env_int("SIREN_INGEST", 0) != 0;
    o.ingest_shards = static_cast<std::size_t>(
        util::get_env_int("SIREN_INGEST_SHARDS", static_cast<std::int64_t>(o.ingest_shards)));
    o.durable_dir = util::get_env_or("SIREN_DURABLE_DIR", o.durable_dir);
    return o;
}

namespace {

/// Transport that buffers the datagrams of the in-flight process and, on
/// flush, applies Bernoulli loss and feeds the survivors straight into a
/// per-shard consolidator — the O(1)-memory rendition of
/// send -> receive -> store -> consolidate.
///
/// Zero-copy steady state: surviving datagram bytes are appended to a
/// per-shard arena (send() must copy — the collector reuses its wire buffer
/// as soon as send() returns), decoded in place as MessageViews at flush
/// time, and consolidated through a reused ViewConsolidator. The arena,
/// span list, view list and consolidator scratch all keep their capacity
/// across flushes, so after warm-up a process's messages cause no heap
/// allocation anywhere on the transport path.
class InlineShard : public net::Transport {
public:
    InlineShard(double loss_rate, std::uint64_t seed) : loss_rate_(loss_rate), rng_(seed) {}

    void send(std::string_view datagram) noexcept override {
        ++sent_;
        if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
            ++lost_;
            return;
        }
        try {
            const std::size_t offset = arena_.size();
            arena_.append(datagram);
            spans_.push_back({offset, datagram.size()});
        } catch (...) {
            // Allocation failure: account the datagram as lost, like a full
            // socket buffer would. (Appending before recording the span
            // means a failed append leaves no stale span behind; orphaned
            // arena bytes are reclaimed by the next flush.)
            ++lost_;
        }
    }

    /// Consolidate everything buffered since the last flush (exactly one
    /// process worth of messages) into the aggregates.
    void flush(analytics::Aggregates& agg) {
        if (spans_.empty()) return;
        views_.clear();
        for (const auto& [offset, size] : spans_) {
            net::MessageView view;
            try {
                net::decode_view(std::string_view(arena_).substr(offset, size), view);
                views_.push_back(view);
            } catch (...) {
                ++malformed_;
            }
        }
        if (!views_.empty()) {
            auto result = consolidator_.consolidate(views_);
            for (const auto& record : result.records) agg.add(record);
        }
        arena_.clear();
        spans_.clear();
    }

    std::uint64_t sent() const { return sent_; }
    std::uint64_t lost() const { return lost_; }
    std::uint64_t malformed() const { return malformed_; }

private:
    double loss_rate_;
    util::Rng rng_;
    std::string arena_;  ///< raw datagram bytes of the in-flight process
    std::vector<std::pair<std::size_t, std::size_t>> spans_;  ///< (offset, size) into arena_
    std::vector<net::MessageView> views_;
    consolidate::ViewConsolidator consolidator_;
    std::uint64_t sent_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t malformed_ = 0;
};

CampaignResult run_inline(const workload::Generator& generator,
                          const collect::FileStore& store, const FrameworkOptions& options) {
    const std::size_t threads =
        options.threads != 0
            ? options.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t shards = std::min<std::size_t>(
        std::max<std::size_t>(1, threads), std::max<std::size_t>(1, generator.job_count()));

    std::vector<analytics::Aggregates> shard_aggs(shards);
    std::vector<std::uint64_t> sent(shards, 0), lost(shards, 0), malformed(shards, 0);
    std::vector<std::uint64_t> collected(shards, 0), errors(shards, 0);

    util::parallel_for(
        shards,
        [&](std::size_t s) {
            InlineShard shard(options.loss_rate, util::mix64(options.seed ^ (s * 7717 + 1)));
            collect::Collector collector(store, shard);
            const std::size_t begin = s * generator.job_count() / shards;
            const std::size_t end = (s + 1) * generator.job_count() / shards;
            generator.run_jobs(begin, end, [&](const sim::SimProcess& p) {
                collector.collect(p);
                shard.flush(shard_aggs[s]);
            });
            sent[s] = shard.sent();
            lost[s] = shard.lost();
            malformed[s] = shard.malformed();
            collected[s] = collector.stats().processes_collected.load();
            errors[s] = collector.stats().collection_errors.load();
        },
        shards);

    CampaignResult result;
    result.aggregates = std::move(shard_aggs[0]);
    for (std::size_t s = 1; s < shards; ++s) result.aggregates.merge(shard_aggs[s]);
    for (std::size_t s = 0; s < shards; ++s) {
        result.datagrams_sent += sent[s];
        result.datagrams_lost += lost[s];
        result.datagrams_malformed += malformed[s];
        result.processes_collected += collected[s];
        result.collection_errors += errors[s];
    }
    return result;
}

CampaignResult run_database(const workload::Generator& generator,
                            const collect::FileStore& store, const FrameworkOptions& options) {
    CampaignResult result;
    result.database = std::make_unique<db::Database>();

    std::unique_ptr<storage::SegmentStore> wal;
    const std::size_t wal_shards = std::max<std::size_t>(options.ingest_shards, 2);
    if (!options.durable_dir.empty()) {
        wal = std::make_unique<storage::SegmentStore>(options.durable_dir, wal_shards);
    }

    net::MessageQueue queue(1 << 20);
    net::InMemoryChannel channel(queue, options.loss_rate, options.seed);
    {
        db::ReceiverService receiver(queue, *result.database, /*workers=*/2, wal.get());
        collect::Collector collector(store, channel);
        generator.run([&](const sim::SimProcess& p) { collector.collect(p); });
        queue.close();
        receiver.finish();
        result.processes_collected = collector.stats().processes_collected.load();
        result.collection_errors = collector.stats().collection_errors.load();
    }
    result.datagrams_sent = channel.stats().sent.load();
    result.datagrams_lost = channel.stats().lost.load() + queue.dropped();
    result.datagrams_malformed = channel.stats().malformed.load();
    if (wal) {
        result.wal_records = wal->appended();
        result.wal_bytes = wal->appended_bytes();
    }

    auto consolidated = consolidate::consolidate(*result.database);
    for (const auto& record : consolidated.records) result.aggregates.add(record);
    result.records = std::move(consolidated.records);
    return result;
}

/// Database mode over the production spine: the collector sends real UDP
/// datagrams on loopback into the sharded epoll ingest daemon, whose shard
/// workers journal them to the (optional) segment store and insert decoded
/// messages into the raw-message table. The seeded Bernoulli loss model
/// does not apply here — loss is whatever the kernel socket path does.
CampaignResult run_database_ingest(const workload::Generator& generator,
                                   const collect::FileStore& store,
                                   const FrameworkOptions& options) {
    CampaignResult result;
    result.database = std::make_unique<db::Database>();
    db::Table& table = db::create_message_table(*result.database);

    const std::size_t shards = std::max<std::size_t>(1, options.ingest_shards);
    std::unique_ptr<storage::SegmentStore> wal;
    if (!options.durable_dir.empty()) {
        wal = std::make_unique<storage::SegmentStore>(options.durable_dir, shards);
    }

    ingest::IngestOptions ingest_options;
    ingest_options.shards = shards;
    ingest_options.store = wal.get();
    ingest::IngestServer server(
        ingest_options, [&table](std::size_t, std::span<const net::MessageView> batch) {
            // Table::append is internally synchronized; shard workers can
            // insert concurrently.
            for (const auto& view : batch) db::insert_message(table, view.to_message());
        });

    {
        net::UdpSender sender("127.0.0.1", server.port());
        collect::Collector collector(store, sender);
        generator.run([&](const sim::SimProcess& p) { collector.collect(p); });
        result.processes_collected = collector.stats().processes_collected.load();
        result.collection_errors = collector.stats().collection_errors.load();
        result.datagrams_sent = sender.sent();
    }
    server.quiesce();
    server.stop();

    const ingest::IngestStats stats = server.stats();
    result.datagrams_malformed = stats.malformed;
    result.datagrams_lost =
        result.datagrams_sent - std::min(result.datagrams_sent, stats.decoded + stats.malformed);
    if (wal) {
        result.wal_records = wal->appended();
        result.wal_bytes = wal->appended_bytes();
    }

    auto consolidated = consolidate::consolidate(*result.database);
    for (const auto& record : consolidated.records) result.aggregates.add(record);
    result.records = std::move(consolidated.records);
    return result;
}

}  // namespace

CampaignResult run_campaign(const workload::CampaignSpec& spec, const FrameworkOptions& options) {
    util::init_log_from_env();
    util::Stopwatch watch;

    workload::GeneratorOptions gen_options;
    gen_options.scale = options.scale;
    gen_options.seed = options.seed;
    workload::Generator generator(spec, gen_options);

    collect::FileStore store;
    generator.populate_store(store);
    util::log_info("campaign: " + std::to_string(generator.job_count()) + " jobs, " +
                   std::to_string(generator.totals().processes) + " processes, " +
                   std::to_string(store.size()) + " unique executables");

    CampaignResult result = options.use_database
                                ? (options.use_ingest ? run_database_ingest(generator, store, options)
                                                      : run_database(generator, store, options))
                                : run_inline(generator, store, options);
    result.totals = generator.totals();
    result.wall_seconds = watch.seconds();
    return result;
}

CampaignResult run_lumi_campaign() {
    return run_campaign(workload::lumi_campaign(), FrameworkOptions::from_env());
}

}  // namespace siren
