#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analytics/aggregate.hpp"
#include "consolidate/consolidator.hpp"
#include "db/database.hpp"
#include "workload/campaign.hpp"
#include "workload/generator.hpp"

namespace siren {

/// End-to-end pipeline configuration.
struct FrameworkOptions {
    /// Campaign scale; 1.0 = the paper's process counts. Read from the
    /// SIREN_SCALE environment variable by from_env().
    double scale = 1.0;
    /// UDP datagram loss probability (deterministic, seeded).
    double loss_rate = 0.0;
    std::uint64_t seed = 42;
    /// Worker threads for generation+collection; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Route messages through the raw-message database (the paper's
    /// receiver->SQLite path) instead of the O(1)-memory inline pipeline.
    /// Only sensible at small scales; the full campaign produces ~10M
    /// messages.
    bool use_database = false;

    /// Defaults overridden by SIREN_SCALE / SIREN_SEED / SIREN_THREADS /
    /// SIREN_LOSS when set.
    static FrameworkOptions from_env();
};

/// Everything a campaign run produces.
struct CampaignResult {
    analytics::Aggregates aggregates;
    workload::CampaignTotals totals;

    // Transport accounting.
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_lost = 0;
    std::uint64_t datagrams_malformed = 0;

    // Collector accounting.
    std::uint64_t processes_collected = 0;
    std::uint64_t collection_errors = 0;

    /// Populated in database mode only.
    std::unique_ptr<db::Database> database;
    std::vector<consolidate::ProcessRecord> records;

    double wall_seconds = 0.0;
};

/// Run a full SIREN campaign: synthesize the workload, hook every process
/// (collector), ship chunked datagrams through a lossy channel, reassemble
/// and consolidate records, and fold them into analytics aggregates.
///
/// Inline mode (default) runs per-process collection->consolidation with
/// O(#executables) memory and shards jobs across threads; database mode
/// reproduces the paper's receiver/SQLite architecture end to end.
CampaignResult run_campaign(const workload::CampaignSpec& spec, const FrameworkOptions& options);

/// Convenience: the paper's LUMI campaign with environment-driven options.
CampaignResult run_lumi_campaign();

}  // namespace siren
