#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analytics/aggregate.hpp"
#include "consolidate/consolidator.hpp"
#include "db/database.hpp"
#include "workload/campaign.hpp"
#include "workload/generator.hpp"

namespace siren {

/// End-to-end pipeline configuration.
struct FrameworkOptions {
    /// Campaign scale; 1.0 = the paper's process counts. Read from the
    /// SIREN_SCALE environment variable by from_env().
    double scale = 1.0;
    /// UDP datagram loss probability (deterministic, seeded).
    double loss_rate = 0.0;
    std::uint64_t seed = 42;
    /// Worker threads for generation+collection; 0 = hardware concurrency.
    std::size_t threads = 0;
    /// Route messages through the raw-message database (the paper's
    /// receiver->SQLite path) instead of the O(1)-memory inline pipeline.
    /// Only sensible at small scales; the full campaign produces ~10M
    /// messages.
    bool use_database = false;
    /// Database mode only: replace the InMemoryChannel + MessageQueue pair
    /// with the production spine — real UDP datagrams on loopback into the
    /// sharded epoll ingest daemon (ingest::IngestServer). Loss then comes
    /// from actual kernel/socket behavior, not the seeded Bernoulli model,
    /// so it is no longer deterministic.
    bool use_ingest = false;
    /// Shard count for the ingest daemon (sockets × rings × workers).
    std::size_t ingest_shards = 2;
    /// Non-empty: journal raw datagrams to a durable segment store rooted
    /// here (database mode; both the ingest daemon and the classic
    /// ReceiverService honor it). Recover with db::replay_segments().
    std::string durable_dir;

    /// Defaults overridden by SIREN_SCALE / SIREN_SEED / SIREN_THREADS /
    /// SIREN_LOSS / SIREN_INGEST / SIREN_INGEST_SHARDS / SIREN_DURABLE_DIR
    /// when set.
    static FrameworkOptions from_env();
};

/// Everything a campaign run produces.
struct CampaignResult {
    analytics::Aggregates aggregates;
    workload::CampaignTotals totals;

    // Transport accounting.
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_lost = 0;
    std::uint64_t datagrams_malformed = 0;

    // Collector accounting.
    std::uint64_t processes_collected = 0;
    std::uint64_t collection_errors = 0;

    // Durable-mode accounting (database mode with a segment store).
    std::uint64_t wal_records = 0;  ///< raw datagrams journaled to segments
    std::uint64_t wal_bytes = 0;    ///< framed bytes appended to segments

    /// Populated in database mode only.
    std::unique_ptr<db::Database> database;
    std::vector<consolidate::ProcessRecord> records;

    double wall_seconds = 0.0;
};

/// Run a full SIREN campaign: synthesize the workload, hook every process
/// (collector), ship chunked datagrams through a lossy channel, reassemble
/// and consolidate records, and fold them into analytics aggregates.
///
/// Inline mode (default) runs per-process collection->consolidation with
/// O(#executables) memory and shards jobs across threads; database mode
/// reproduces the paper's receiver/SQLite architecture end to end.
CampaignResult run_campaign(const workload::CampaignSpec& spec, const FrameworkOptions& options);

/// Convenience: the paper's LUMI campaign with environment-driven options.
CampaignResult run_lumi_campaign();

}  // namespace siren
