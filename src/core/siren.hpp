#pragma once

/// SIREN — Software Identification and Recognition in HPC Systems.
///
/// Umbrella header for the public API. The layers, bottom-up:
///
///   fuzzy/        SSDeep-style CTPH fuzzy hashing and 0-100 similarity
///   hashing/      xxh64/xxh128, SHA-1/SHA-256, FNV, rolling hash
///   elfio/        ELF64 reader/writer, strings/symbols/.comment extraction
///   net/          SIREN wire protocol, chunking, UDP + lossy channels
///   db/           embedded record store (the SQLite stand-in)
///   sim/          simulated HPC substrate (Slurm-like jobs, modules)
///   workload/     campaign catalog, binary synthesizer, generator
///   collect/      the siren.so collection logic (Table-1 policy)
///   consolidate/  chunk reassembly into per-process records
///   analytics/    usage tables, labeling, similarity search
///   core/         run_campaign() — the end-to-end pipeline
///
/// Quick start:
///
///   #include "core/siren.hpp"
///   auto result = siren::run_campaign(siren::workload::mini_campaign(), {});
///   std::cout << siren::analytics::table2_users(result.aggregates).render();

#include "analytics/aggregate.hpp"     // IWYU pragma: export
#include "analytics/baselines.hpp"     // IWYU pragma: export
#include "analytics/compilers.hpp"     // IWYU pragma: export
#include "analytics/labeler.hpp"       // IWYU pragma: export
#include "analytics/libfilter.hpp"     // IWYU pragma: export
#include "analytics/similarity.hpp"    // IWYU pragma: export
#include "analytics/tables.hpp"        // IWYU pragma: export
#include "collect/collector.hpp"       // IWYU pragma: export
#include "collect/policy.hpp"          // IWYU pragma: export
#include "consolidate/consolidator.hpp"  // IWYU pragma: export
#include "core/framework.hpp"          // IWYU pragma: export
#include "fuzzy/fuzzy.hpp"             // IWYU pragma: export
#include "workload/campaign.hpp"       // IWYU pragma: export
#include "workload/generator.hpp"      // IWYU pragma: export
