#include "analytics/labeler.hpp"

namespace siren::analytics {

Labeler Labeler::default_rules() {
    return Labeler({
        // miniconda must precede icon: "miniconda" contains "icon".
        {"miniconda", "miniconda|conda"},
        {"LAMMPS", "lammps|/lmp_?[a-z0-9]*$"},
        {"GROMACS", "gromacs|/gmx(_mpi)?$"},
        {"janko", "janko"},
        {"icon", "icon"},
        {"amber", "amber|pmemd|sander"},
        {"gzip", "gzip"},
        {"alexandria", "alexandria"},
        {"RadRad", "radrad"},
    });
}

Labeler::Labeler(std::vector<Rule> rules) : rules_(std::move(rules)) {
    compiled_.reserve(rules_.size());
    for (const auto& rule : rules_) {
        compiled_.emplace_back(rule.pattern,
                               std::regex::ECMAScript | std::regex::icase | std::regex::optimize);
    }
}

std::string Labeler::label(std::string_view exe_path) const {
    for (std::size_t i = 0; i < compiled_.size(); ++i) {
        if (std::regex_search(exe_path.begin(), exe_path.end(), compiled_[i])) {
            return rules_[i].label;
        }
    }
    return kUnknownLabel;
}

}  // namespace siren::analytics
