#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"
#include "consolidate/record.hpp"
#include "util/thread_pool.hpp"

namespace siren::analytics {

/// The six fuzzy-hash dimensions of the paper's similarity search
/// (Table 7): modules, compilers, shared objects, raw file, printable
/// strings, global symbols.
struct SimilarityScores {
    int mo = 0;  ///< MO_H — modules list
    int co = 0;  ///< CO_H — compilers list
    int ob = 0;  ///< OB_H — shared objects list
    int fi = 0;  ///< FI_H — raw executable bytes
    int st = 0;  ///< ST_H — printable strings
    int sy = 0;  ///< SY_H — global symbols

    double average() const {
        return (mo + co + ob + fi + st + sy) / 6.0;
    }
};

/// One ranked search result.
struct SimilarityHit {
    std::string exe_path;
    std::string label;
    SimilarityScores scores;
    double average = 0.0;
};

/// Compare two consolidated records across all six hash dimensions.
SimilarityScores score_records(const consolidate::ProcessRecord& probe,
                               const consolidate::ProcessRecord& candidate);

/// The paper's identification workflow (§4.3 "Identifying Unknown
/// Applications"): rank every *labeled* user executable by average
/// similarity to an UNKNOWN probe. Parallelizes across candidates when a
/// pool is supplied.
std::vector<SimilarityHit> similarity_search(const consolidate::ProcessRecord& probe,
                                             const Aggregates& agg, const Labeler& labeler,
                                             std::size_t top_n = 10,
                                             util::ThreadPool* pool = nullptr);

/// Find the sample record of the first UNKNOWN-labeled user executable —
/// the natural probe for the Table 7 experiment. Returns nullptr when
/// every executable was labeled.
const consolidate::ProcessRecord* find_unknown_probe(const Aggregates& agg,
                                                     const Labeler& labeler);

}  // namespace siren::analytics
