#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"
#include "consolidate/record.hpp"
#include "util/thread_pool.hpp"

namespace siren::analytics {

/// The six fuzzy-hash dimensions of the paper's similarity search
/// (Table 7): modules, compilers, shared objects, raw file, printable
/// strings, global symbols.
struct SimilarityScores {
    int mo = 0;  ///< MO_H — modules list
    int co = 0;  ///< CO_H — compilers list
    int ob = 0;  ///< OB_H — shared objects list
    int fi = 0;  ///< FI_H — raw executable bytes
    int st = 0;  ///< ST_H — printable strings
    int sy = 0;  ///< SY_H — global symbols

    double average() const {
        return (mo + co + ob + fi + st + sy) / 6.0;
    }
};

/// One ranked search result.
struct SimilarityHit {
    std::string exe_path;
    std::string label;
    SimilarityScores scores;
    double average = 0.0;
};

/// Compare two consolidated records across all six hash dimensions
/// (parses the digest strings of both sides on every call — use the
/// prepared overload on hot paths).
SimilarityScores score_records(const consolidate::ProcessRecord& probe,
                               const consolidate::ProcessRecord& candidate);

/// Same scores, from digests prepared once (consolidate::PreparedHashes):
/// allocation-free per comparison, identical results — an invalid
/// dimension on either side scores 0 exactly like the parsing path.
SimilarityScores score_records(const consolidate::PreparedHashes& probe,
                               const consolidate::PreparedHashes& candidate);

/// The paper's identification workflow (§4.3 "Identifying Unknown
/// Applications"): rank every *labeled* user executable by average
/// similarity to an UNKNOWN probe. The probe is prepared once and scored
/// against each candidate's cached prepared digests; with a pool the scan
/// is chunked (ThreadPool::parallel_for_chunks) and each chunk keeps a
/// bounded top-n heap, merged at the end — no full sort of the candidate
/// set, and results are identical to the serial path.
std::vector<SimilarityHit> similarity_search(const consolidate::ProcessRecord& probe,
                                             const Aggregates& agg, const Labeler& labeler,
                                             std::size_t top_n = 10,
                                             util::ThreadPool* pool = nullptr);

/// Find the sample record of the UNKNOWN-labeled user executable with the
/// lexicographically smallest path — the natural probe for the Table 7
/// experiment, chosen smallest-first so repeated runs over the same
/// aggregates always pick the same probe regardless of container iteration
/// order. Returns nullptr when every executable was labeled.
const consolidate::ProcessRecord* find_unknown_probe(const Aggregates& agg,
                                                     const Labeler& labeler);

}  // namespace siren::analytics
