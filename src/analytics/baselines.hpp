#pragma once

#include <map>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"

namespace siren::analytics {

/// Outcome of one identification method over a set of probe executables.
struct RecognitionResult {
    std::string method;
    std::size_t identified = 0;  ///< probes assigned the correct label
    std::size_t total = 0;

    double accuracy() const {
        return total == 0 ? 0.0 : static_cast<double>(identified) / static_cast<double>(total);
    }
};

/// Ground truth: executable path -> true software label (supplied by the
/// workload catalog; on a real system this would be operator knowledge).
using GroundTruth = std::map<std::string, std::string>;

/// Identification-method comparison (the ablation behind the paper's core
/// claim that fuzzy hashing beats name- and crypto-hash-based methods):
///
///  - "name-regex":  the Labeler applied to the probe path (fails for
///    a.out-style names);
///  - "crypto-exact": exact FILE-digest match against the labeled corpus
///    (models XALT's sha1 approach; fails for any recompiled variant);
///  - "fuzzy-knn":   nearest labeled executable by average fuzzy
///    similarity across the six hash dimensions (SIREN's method).
///
/// `probes` lists the paths to identify; every *other* labeled user
/// executable acts as the known corpus.
std::vector<RecognitionResult> evaluate_identification(const Aggregates& agg,
                                                       const GroundTruth& truth,
                                                       const std::vector<std::string>& probes,
                                                       const Labeler& labeler,
                                                       double min_confidence = 1.0);

}  // namespace siren::analytics
