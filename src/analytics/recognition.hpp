#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"
#include "recognize/registry.hpp"

namespace siren::analytics {

/// One software family discovered by running the recognition registry over
/// a campaign's user-directory executables.
struct RecognitionRow {
    recognize::FamilyId family = 0;
    std::string name;                 ///< label-derived, or "family-<id>"
    std::size_t distinct_binaries = 0;  ///< sightings (distinct FILE_H)
    std::size_t paths = 0;            ///< executable paths mapping here
    std::uint64_t processes = 0;      ///< processes of those paths
    std::size_t exemplars = 0;        ///< digests retained for matching
    bool anonymous = false;           ///< never received a label
};

/// Outcome of campaign-scale recognition.
struct RecognitionReport {
    std::vector<RecognitionRow> rows;     ///< distinct-binaries descending
    std::size_t sightings = 0;            ///< (path, FILE_H) pairs observed
    std::size_t recognized = 0;           ///< landed in an existing family
    std::size_t families_founded = 0;
    std::size_t anonymous_named = 0;      ///< founded nameless, named later

    double recognition_rate() const {
        return sightings == 0 ? 0.0
                              : static_cast<double>(recognized) /
                                    static_cast<double>(sightings);
    }
};

/// Feed every distinct user-directory executable binary (its FILE_H fuzzy
/// digest) through an incremental recognition registry, using the regex
/// labeler only as the *name hint* — grouping is purely similarity-based.
///
/// This operationalizes the paper's §1 claim pair: nondescript binaries
/// (the labeler says UNKNOWN) still join the family of the software they
/// are, and repeated executions of known software are recognized rather
/// than re-investigated. Sightings are observed in (path, digest-string)
/// order, so the report is deterministic for a given campaign.
RecognitionReport recognition_report(const Aggregates& agg, const Labeler& labeler,
                                     const recognize::RegistryOptions& options = {});

}  // namespace siren::analytics
