#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

namespace siren::analytics {

/// The canonical substring list of the paper (§4.3, Figure 2): shared
/// objects are reduced to the combination of these substrings found in
/// their path. Order matters — a derived tag joins its matches in this
/// order ("rocfft-rocm-fft", "hdf5-fortran-parallel-cray").
inline constexpr std::array<std::string_view, 34> kLibraryFilterSubstrings = {
    "libsci",  "pthread", "pmi",       "netcdf", "hdf5",   "fortran", "parallel",
    "python",  "fabric",  "numa",      "boost",  "openacc", "amdgpu", "cuda",
    "drm",     "rocsolver", "rocsparse", "rocfft", "MIOpen", "rocm",   "gromacs",
    "blas",    "fft",     "torch",     "quadmath", "craymath", "cray", "tykky",
    "climatedt", "amber", "spack",     "yaml",   "java",   "siren",
};

/// Derive the tag of one shared-object path: the '-'-joined list of
/// canonical substrings it contains (empty when none match — the library
/// is then "uninformative" and filtered out).
std::string derive_library_tag(std::string_view object_path);

/// Tags of a whole loaded-objects list, deduplicated, in first-appearance
/// order.
std::vector<std::string> derive_library_tags(const std::vector<std::string>& object_paths);

}  // namespace siren::analytics
