#include "analytics/tables.hpp"

#include <algorithm>
#include <map>

#include "analytics/compilers.hpp"
#include "analytics/libfilter.hpp"
#include "util/strings.hpp"

namespace siren::analytics {

using consolidate::Category;
using util::TextTable;

UserNamer default_user_namer() {
    return [](std::int64_t uid) {
        if (uid >= 1001 && uid <= 1099) return "user_" + std::to_string(uid - 1000);
        return "uid_" + std::to_string(uid);
    };
}

namespace {

std::string dash_or(std::uint64_t n) { return n == 0 ? "-" : util::with_commas(n); }

/// Descending lexicographic sort over count tuples — the ordering used by
/// every table caption in the paper.
template <typename Row>
void sort_rows(std::vector<Row>& rows) {
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.key > b.key; });
}

}  // namespace

TextTable table2_users(const Aggregates& agg, const UserNamer& namer) {
    struct Row {
        std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t> key;
        std::string name;
        const UserStat* stat;
    };
    std::vector<Row> rows;
    for (const auto& [uid, stat] : agg.users) {
        rows.push_back({{stat.jobs.size(), stat.system_processes, stat.user_processes,
                         stat.python_processes},
                        namer(uid),
                        &stat});
    }
    sort_rows(rows);

    TextTable t({"User", "Job count", "System Dir. Processes", "User Dir. Processes",
                 "Python Processes"});
    std::uint64_t jobs = 0, sys = 0, usr = 0, py = 0;
    for (const auto& row : rows) {
        t.add_row({row.name, util::with_commas(row.stat->jobs.size()),
                   dash_or(row.stat->system_processes), dash_or(row.stat->user_processes),
                   dash_or(row.stat->python_processes)});
        jobs += row.stat->jobs.size();
        sys += row.stat->system_processes;
        usr += row.stat->user_processes;
        py += row.stat->python_processes;
    }
    t.add_row({"Total", util::with_commas(jobs), util::with_commas(sys), util::with_commas(usr),
               util::with_commas(py)});
    return t;
}

TextTable table3_system_execs(const Aggregates& agg, std::size_t top_n, std::size_t* total_out) {
    struct Row {
        std::tuple<std::size_t, std::size_t, std::uint64_t, std::size_t> key;
        const ExeStat* exe;
    };
    std::vector<Row> rows;
    std::size_t total = 0;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kSystem) continue;
        ++total;
        rows.push_back(
            {{exe.users.size(), exe.jobs.size(), exe.processes, exe.object_variants.size()},
             &exe});
    }
    sort_rows(rows);
    if (total_out != nullptr) *total_out = total;

    TextTable t({"Executable Path & Name", "Unique Users", "Job Count", "Process Count",
                 "Unique OBJECTS_H"});
    for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
        const ExeStat& exe = *rows[i].exe;
        t.add_row({exe.path, util::with_commas(exe.users.size()),
                   util::with_commas(exe.jobs.size()), util::with_commas(exe.processes),
                   util::with_commas(exe.object_variants.size())});
    }
    return t;
}

TextTable table4_object_variants(const Aggregates& agg, const std::string& exe_path) {
    TextTable t({"Executable", "Processes", "libtinfo Path", "libm Path"});
    auto it = agg.execs.find(exe_path);
    if (it == agg.execs.end()) return t;

    struct Row {
        std::tuple<std::uint64_t> key;
        const ObjectVariantStat* variant;
    };
    std::vector<Row> rows;
    for (const auto& [hash, variant] : it->second.object_variants) {
        rows.push_back({{variant.processes}, &variant});
    }
    sort_rows(rows);

    auto find_object = [](const std::vector<std::string>& objects, std::string_view needle) {
        for (const auto& o : objects) {
            if (util::contains(o, needle)) return o;
        }
        return std::string("-");
    };

    std::uint64_t total = 0;
    for (const auto& row : rows) {
        t.add_row({exe_path, util::with_commas(row.variant->processes),
                   find_object(row.variant->sample_objects, "libtinfo"),
                   find_object(row.variant->sample_objects, "libm.")});
        total += row.variant->processes;
    }
    t.add_row({"Total", util::with_commas(total), "", ""});
    return t;
}

namespace {

/// Shared accumulator for label-grouped statistics (Tables 5 and 6 group
/// user executables by label / compiler combo).
struct GroupStat {
    std::set<std::int64_t> users;
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::set<std::string_view> file_hashes;  ///< interned digests/paths from the aggregates
};

template <typename KeyOf>
std::map<std::string, GroupStat> group_user_execs(const Aggregates& agg, const KeyOf& key_of) {
    std::map<std::string, GroupStat> groups;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser) continue;
        const std::string key = key_of(exe);
        if (key.empty()) continue;
        GroupStat& g = groups[key];
        g.users.insert(exe.users.begin(), exe.users.end());
        g.jobs.insert(exe.jobs.begin(), exe.jobs.end());
        g.processes += exe.processes;
        if (exe.file_hashes.empty()) {
            // FILE_H lost for every process of this executable: still count
            // the executable itself.
            g.file_hashes.insert(path);
        } else {
            g.file_hashes.insert(exe.file_hashes.begin(), exe.file_hashes.end());
        }
    }
    return groups;
}

TextTable render_grouped(const std::map<std::string, GroupStat>& groups,
                         const std::string& key_header) {
    struct Row {
        std::tuple<std::size_t, std::size_t, std::uint64_t, std::size_t> key;
        const std::string* name;
        const GroupStat* stat;
    };
    std::vector<Row> rows;
    for (const auto& [name, stat] : groups) {
        rows.push_back(
            {{stat.users.size(), stat.jobs.size(), stat.processes, stat.file_hashes.size()},
             &name,
             &stat});
    }
    sort_rows(rows);

    TextTable t({key_header, "Unique Users", "Job Count", "Process Count", "Unique FILE_H"});
    for (const auto& row : rows) {
        t.add_row({*row.name, util::with_commas(row.stat->users.size()),
                   util::with_commas(row.stat->jobs.size()),
                   util::with_commas(row.stat->processes),
                   util::with_commas(row.stat->file_hashes.size())});
    }
    return t;
}

}  // namespace

TextTable table5_user_labels(const Aggregates& agg, const Labeler& labeler) {
    const auto groups =
        group_user_execs(agg, [&](const ExeStat& exe) { return labeler.label(exe.path); });
    return render_grouped(groups, "Software Label");
}

TextTable table6_compilers(const Aggregates& agg) {
    const auto groups = group_user_execs(agg, [](const ExeStat& exe) {
        if (!exe.has_sample || exe.sample.compilers.empty()) return std::string();
        return render_combo(compiler_provenances(exe.sample.compilers));
    });
    return render_grouped(groups, "Compiler Name [Provenance]");
}

TextTable table8_python(const Aggregates& agg) {
    struct Row {
        std::tuple<std::size_t, std::size_t, std::uint64_t, std::size_t> key;
        std::string_view name;
        const InterpreterStat* stat;
    };
    std::vector<Row> rows;
    for (const auto& [name, stat] : agg.interpreters) {
        rows.push_back(
            {{stat.users.size(), stat.jobs.size(), stat.processes, stat.script_hashes.size()},
             name,
             &stat});
    }
    sort_rows(rows);

    TextTable t({"Python Interpreter", "Unique Users", "Job Count", "Process Count",
                 "Unique SCRIPT_H"});
    for (const auto& row : rows) {
        t.add_row({std::string(row.name), util::with_commas(row.stat->users.size()),
                   util::with_commas(row.stat->jobs.size()),
                   util::with_commas(row.stat->processes),
                   util::with_commas(row.stat->script_hashes.size())});
    }
    return t;
}

TextTable fig2_library_tags(const Aggregates& agg) {
    struct TagStat {
        std::set<std::int64_t> users;
        std::set<std::uint64_t> jobs;
        std::uint64_t processes = 0;
        std::set<std::string_view> execs;  ///< interned executable paths
    };
    std::map<std::string, TagStat> tags;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser) continue;
        // Union of tags across all object-set variants of this executable.
        std::set<std::string> exe_tags;
        for (const auto& [hash, variant] : exe.object_variants) {
            for (auto& tag : derive_library_tags(variant.sample_objects)) {
                exe_tags.insert(std::move(tag));
            }
        }
        for (const auto& tag : exe_tags) {
            TagStat& stat = tags[tag];
            stat.users.insert(exe.users.begin(), exe.users.end());
            stat.jobs.insert(exe.jobs.begin(), exe.jobs.end());
            stat.processes += exe.processes;
            stat.execs.insert(path);
        }
    }

    struct Row {
        std::tuple<std::size_t, std::size_t, std::uint64_t, std::size_t> key;
        const std::string* name;
        const TagStat* stat;
    };
    std::vector<Row> rows;
    for (const auto& [name, stat] : tags) {
        rows.push_back({{stat.users.size(), stat.jobs.size(), stat.processes, stat.execs.size()},
                        &name,
                        &stat});
    }
    sort_rows(rows);

    TextTable t({"Library Tag", "Unique Users", "Jobs", "Processes", "Unique Executables"});
    for (const auto& row : rows) {
        t.add_row({*row.name, util::with_commas(row.stat->users.size()),
                   util::with_commas(row.stat->jobs.size()),
                   util::with_commas(row.stat->processes),
                   util::with_commas(row.stat->execs.size())});
    }
    return t;
}

TextTable fig3_python_packages(const Aggregates& agg) {
    struct Row {
        std::tuple<std::size_t, std::size_t, std::uint64_t, std::size_t> key;
        std::string_view name;
        const PackageStat* stat;
    };
    std::vector<Row> rows;
    for (const auto& [name, stat] : agg.packages) {
        rows.push_back(
            {{stat.users.size(), stat.jobs.size(), stat.processes, stat.scripts.size()},
             name,
             &stat});
    }
    sort_rows(rows);

    TextTable t({"Package", "Unique Users", "Jobs", "Processes", "Unique Python Scripts"});
    for (const auto& row : rows) {
        t.add_row({std::string(row.name), util::with_commas(row.stat->users.size()),
                   util::with_commas(row.stat->jobs.size()),
                   util::with_commas(row.stat->processes),
                   util::with_commas(row.stat->scripts.size())});
    }
    return t;
}

namespace {

/// Shared shape of the Figure 4/5 matrices: labels x feature columns.
TextTable render_matrix(const std::map<std::string, std::set<std::string>>& label_features,
                        const std::vector<std::string>& columns,
                        const std::string& key_header) {
    std::vector<std::string> headers = {key_header};
    headers.insert(headers.end(), columns.begin(), columns.end());
    TextTable t(std::move(headers));
    for (const auto& [label, features] : label_features) {
        std::vector<std::string> row = {label};
        for (const auto& col : columns) {
            row.push_back(features.count(col) != 0 ? "1" : "0");
        }
        t.add_row(std::move(row));
    }
    return t;
}

}  // namespace

TextTable fig4_compiler_matrix(const Aggregates& agg, const Labeler& labeler) {
    std::map<std::string, std::set<std::string>> label_compilers;
    std::set<std::string> seen;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser || !exe.has_sample) continue;
        const std::string label = labeler.label(path);
        if (label == kUnknownLabel) continue;
        for (const auto& prov : compiler_provenances(exe.sample.compilers)) {
            label_compilers[label].insert(prov);
            seen.insert(prov);
        }
    }
    std::vector<std::string> columns;
    for (const auto& prov : compiler_provenance_order()) {
        if (seen.count(prov) != 0) columns.push_back(prov);
    }
    return render_matrix(label_compilers, columns, "Software Label");
}

TextTable fig5_library_matrix(const Aggregates& agg, const Labeler& labeler) {
    std::map<std::string, std::set<std::string>> label_tags;
    std::set<std::string> seen;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser) continue;
        const std::string label = labeler.label(path);
        if (label == kUnknownLabel) continue;
        for (const auto& [hash, variant] : exe.object_variants) {
            for (const auto& tag : derive_library_tags(variant.sample_objects)) {
                label_tags[label].insert(tag);
                seen.insert(tag);
            }
        }
    }
    std::vector<std::string> columns(seen.begin(), seen.end());
    return render_matrix(label_tags, columns, "Software Label");
}

}  // namespace siren::analytics
