#include "analytics/libfilter.hpp"

#include <set>

namespace siren::analytics {

std::string derive_library_tag(std::string_view object_path) {
    std::string tag;
    for (const auto needle : kLibraryFilterSubstrings) {
        if (object_path.find(needle) != std::string_view::npos) {
            if (!tag.empty()) tag += '-';
            tag += needle;
        }
    }
    return tag;
}

std::vector<std::string> derive_library_tags(const std::vector<std::string>& object_paths) {
    std::vector<std::string> out;
    std::set<std::string> seen;
    for (const auto& path : object_paths) {
        std::string tag = derive_library_tag(path);
        if (tag.empty() || !seen.insert(tag).second) continue;
        out.push_back(std::move(tag));
    }
    return out;
}

}  // namespace siren::analytics
