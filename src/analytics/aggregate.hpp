#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "consolidate/record.hpp"
#include "util/interner.hpp"

namespace siren::analytics {

/// Streaming, mergeable campaign aggregates.
///
/// The full LUMI campaign has millions of processes but only hundreds of
/// distinct executables; keeping every ProcessRecord in memory would need
/// gigabytes. Aggregates::add() folds one record at a time into compact
/// per-executable / per-user / per-package statistics (plus one sample
/// record per executable for similarity search), and merge() combines
/// per-thread instances after a sharded run.
///
/// Hot repeated strings — executable paths, digest hex, interpreter and
/// package names — are interned once in util::StringInterner::global() and
/// the maps/sets below key on the interned views: millions of add() calls
/// hit the same few hundred pooled strings, and merging shards copies
/// 16-byte views instead of reallocating key strings. Interned views live
/// for the process lifetime, so aggregates can be merged and outlive their
/// producing shards safely.

/// One (executable, loaded-object-set) combination — the unit behind
/// Table 3's "Unique OBJECTS_H" and Table 4's bash variants.
struct ObjectVariantStat {
    std::uint64_t processes = 0;
    std::vector<std::string> sample_objects;
};

/// Statistics of one executable path.
struct ExeStat {
    std::string path;
    consolidate::Category category = consolidate::Category::kUnknown;
    std::set<std::int64_t> users;       ///< UIDs
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::map<std::string_view, ObjectVariantStat> object_variants;  ///< key: interned OB_H digest
    std::set<std::string_view> file_hashes;  ///< distinct FILE_H digests (interned)
    consolidate::ProcessRecord sample;  ///< first complete record seen
    /// The sample's six similarity digests, parsed and prepared when the
    /// sample is captured — similarity_search scans candidates without
    /// re-parsing a single digest string.
    consolidate::PreparedHashes prepared_sample;
    bool has_sample = false;
};

struct UserStat {
    std::set<std::uint64_t> jobs;
    std::uint64_t system_processes = 0;
    std::uint64_t user_processes = 0;
    std::uint64_t python_processes = 0;
};

struct InterpreterStat {
    std::set<std::int64_t> users;
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::set<std::string_view> script_hashes;  ///< distinct SCRIPT_H digests (interned)
};

struct PackageStat {
    std::set<std::int64_t> users;
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::set<std::string_view> scripts;  ///< distinct SCRIPT_H digests importing it (interned)
};

struct Aggregates {
    std::map<std::int64_t, UserStat> users;               ///< by UID
    std::map<std::string_view, ExeStat> execs;            ///< by interned executable path
    std::map<std::string_view, InterpreterStat> interpreters;  ///< by interned basename
    std::map<std::string_view, PackageStat> packages;     ///< by interned Python package

    std::uint64_t total_processes = 0;
    std::set<std::uint64_t> all_jobs;
    std::set<std::uint64_t> jobs_with_missing_fields;
    std::uint64_t records_with_missing_fields = 0;

    void add(const consolidate::ProcessRecord& record);
    void merge(const Aggregates& other);

    double job_missing_ratio() const {
        return all_jobs.empty() ? 0.0
                                : static_cast<double>(jobs_with_missing_fields.size()) /
                                      static_cast<double>(all_jobs.size());
    }
};

}  // namespace siren::analytics
