#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "consolidate/record.hpp"

namespace siren::analytics {

/// Streaming, mergeable campaign aggregates.
///
/// The full LUMI campaign has millions of processes but only hundreds of
/// distinct executables; keeping every ProcessRecord in memory would need
/// gigabytes. Aggregates::add() folds one record at a time into compact
/// per-executable / per-user / per-package statistics (plus one sample
/// record per executable for similarity search), and merge() combines
/// per-thread instances after a sharded run.

/// One (executable, loaded-object-set) combination — the unit behind
/// Table 3's "Unique OBJECTS_H" and Table 4's bash variants.
struct ObjectVariantStat {
    std::uint64_t processes = 0;
    std::vector<std::string> sample_objects;
};

/// Statistics of one executable path.
struct ExeStat {
    std::string path;
    consolidate::Category category = consolidate::Category::kUnknown;
    std::set<std::int64_t> users;       ///< UIDs
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::map<std::string, ObjectVariantStat> object_variants;  ///< key: OB_H digest
    std::set<std::string> file_hashes;  ///< distinct FILE_H digests
    consolidate::ProcessRecord sample;  ///< first complete record seen
    bool has_sample = false;
};

struct UserStat {
    std::set<std::uint64_t> jobs;
    std::uint64_t system_processes = 0;
    std::uint64_t user_processes = 0;
    std::uint64_t python_processes = 0;
};

struct InterpreterStat {
    std::set<std::int64_t> users;
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::set<std::string> script_hashes;  ///< distinct SCRIPT_H digests
};

struct PackageStat {
    std::set<std::int64_t> users;
    std::set<std::uint64_t> jobs;
    std::uint64_t processes = 0;
    std::set<std::string> scripts;  ///< distinct SCRIPT_H digests importing it
};

struct Aggregates {
    std::map<std::int64_t, UserStat> users;          ///< by UID
    std::map<std::string, ExeStat> execs;            ///< by executable path
    std::map<std::string, InterpreterStat> interpreters;  ///< by basename
    std::map<std::string, PackageStat> packages;     ///< by Python package

    std::uint64_t total_processes = 0;
    std::set<std::uint64_t> all_jobs;
    std::set<std::uint64_t> jobs_with_missing_fields;
    std::uint64_t records_with_missing_fields = 0;

    void add(const consolidate::ProcessRecord& record);
    void merge(const Aggregates& other);

    double job_missing_ratio() const {
        return all_jobs.empty() ? 0.0
                                : static_cast<double>(jobs_with_missing_fields.size()) /
                                      static_cast<double>(all_jobs.size());
    }
};

}  // namespace siren::analytics
