#pragma once

#include <regex>
#include <string>
#include <string_view>
#include <vector>

namespace siren::analytics {

/// Fallback label for executables whose path matches no known software.
inline constexpr const char* kUnknownLabel = "UNKNOWN";

/// Derives software labels from executable file/path names with regular
/// expressions — the operator practice the paper describes in §4.3
/// ("system operators can often deduce to which software an executable
/// belongs based on file or path names ... using regular expressions").
/// Deliberately fallible: nondescript names (a.out) stay UNKNOWN, which is
/// exactly what the similarity search then resolves.
class Labeler {
public:
    struct Rule {
        std::string label;
        std::string pattern;  ///< ECMAScript regex, applied case-insensitively
    };

    /// Rule set covering the paper's Table 5 labels.
    static Labeler default_rules();

    explicit Labeler(std::vector<Rule> rules);

    /// First matching rule wins (rule order resolves overlaps such as
    /// "miniconda" containing the substring "icon").
    std::string label(std::string_view exe_path) const;

    const std::vector<Rule>& rules() const { return rules_; }

private:
    std::vector<Rule> rules_;
    std::vector<std::regex> compiled_;
};

}  // namespace siren::analytics
