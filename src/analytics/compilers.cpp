#include "analytics/compilers.hpp"

#include <algorithm>
#include <set>

#include "util/strings.hpp"

namespace siren::analytics {

const std::vector<std::string>& compiler_provenance_order() {
    static const std::vector<std::string> kOrder = {
        "GCC [SUSE]", "GCC [Red Hat]", "GCC [conda]", "GCC [HPE]",
        "clang [Cray]", "clang [AMD]", "LLD [AMD]", "rustc",
        "GCC", "clang", "LLD",  // unbranded fallbacks rank last
    };
    return kOrder;
}

std::string compiler_provenance(const std::string& comment) {
    if (util::contains(comment, "rustc")) return "rustc";
    if (util::contains(comment, "LLD")) {
        return util::contains(comment, "AMD") ? "LLD [AMD]" : "LLD";
    }
    if (util::icontains(comment, "clang")) {
        if (util::contains(comment, "Cray")) return "clang [Cray]";
        if (util::contains(comment, "AMD")) return "clang [AMD]";
        return "clang";
    }
    if (util::contains(comment, "GCC")) {
        if (util::contains(comment, "SUSE")) return "GCC [SUSE]";
        if (util::contains(comment, "Red Hat")) return "GCC [Red Hat]";
        if (util::contains(comment, "conda")) return "GCC [conda]";
        if (util::contains(comment, "HPE")) return "GCC [HPE]";
        return "GCC";
    }
    // Unknown toolchain: keep the first token so it stays inspectable.
    const auto tokens = util::split_nonempty(comment, ' ');
    return tokens.empty() ? std::string("?") : tokens.front();
}

std::vector<std::string> compiler_provenances(const std::vector<std::string>& comments) {
    std::set<std::string> seen;
    for (const auto& c : comments) seen.insert(compiler_provenance(c));

    std::vector<std::string> out;
    for (const auto& name : compiler_provenance_order()) {
        if (seen.erase(name) > 0) out.push_back(name);
    }
    // Anything not in the canonical order goes last, alphabetically.
    for (const auto& leftover : seen) out.push_back(leftover);
    return out;
}

std::string render_combo(const std::vector<std::string>& provenances) {
    return util::join(provenances, ", ");
}

}  // namespace siren::analytics
