#include "analytics/similarity.hpp"

#include <algorithm>

#include "fuzzy/fuzzy.hpp"

namespace siren::analytics {

using consolidate::Category;
using consolidate::ProcessRecord;

SimilarityScores score_records(const ProcessRecord& probe, const ProcessRecord& candidate) {
    SimilarityScores s;
    s.mo = fuzzy::compare(probe.modules_hash, candidate.modules_hash);
    s.co = fuzzy::compare(probe.compilers_hash, candidate.compilers_hash);
    s.ob = fuzzy::compare(probe.objects_hash, candidate.objects_hash);
    s.fi = fuzzy::compare(probe.file_hash, candidate.file_hash);
    s.st = fuzzy::compare(probe.strings_hash, candidate.strings_hash);
    s.sy = fuzzy::compare(probe.symbols_hash, candidate.symbols_hash);
    return s;
}

std::vector<SimilarityHit> similarity_search(const ProcessRecord& probe, const Aggregates& agg,
                                             const Labeler& labeler, std::size_t top_n,
                                             util::ThreadPool* pool) {
    // Candidates: every labeled user executable other than the probe itself.
    struct Candidate {
        const ExeStat* exe;
        std::string label;
    };
    std::vector<Candidate> candidates;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser || !exe.has_sample) continue;
        if (path == probe.exe_path) continue;
        std::string label = labeler.label(path);
        if (label == kUnknownLabel) continue;
        candidates.push_back({&exe, std::move(label)});
    }

    std::vector<SimilarityHit> hits(candidates.size());
    auto score_one = [&](std::size_t i) {
        const Candidate& c = candidates[i];
        SimilarityHit hit;
        hit.exe_path = c.exe->path;
        hit.label = c.label;
        hit.scores = score_records(probe, c.exe->sample);
        hit.average = hit.scores.average();
        hits[i] = std::move(hit);
    };

    if (pool != nullptr && candidates.size() > 16) {
        pool->parallel_for(candidates.size(), score_one);
    } else {
        for (std::size_t i = 0; i < candidates.size(); ++i) score_one(i);
    }

    std::sort(hits.begin(), hits.end(), [](const SimilarityHit& a, const SimilarityHit& b) {
        if (a.average != b.average) return a.average > b.average;
        return a.exe_path < b.exe_path;
    });
    if (hits.size() > top_n) hits.resize(top_n);
    return hits;
}

const ProcessRecord* find_unknown_probe(const Aggregates& agg, const Labeler& labeler) {
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser || !exe.has_sample) continue;
        if (labeler.label(path) == kUnknownLabel) return &exe.sample;
    }
    return nullptr;
}

}  // namespace siren::analytics
