#include "analytics/similarity.hpp"

#include <algorithm>

#include "fuzzy/fuzzy.hpp"

namespace siren::analytics {

using consolidate::Category;
using consolidate::PreparedHashes;
using consolidate::ProcessRecord;

SimilarityScores score_records(const ProcessRecord& probe, const ProcessRecord& candidate) {
    SimilarityScores s;
    s.mo = fuzzy::compare(probe.modules_hash, candidate.modules_hash);
    s.co = fuzzy::compare(probe.compilers_hash, candidate.compilers_hash);
    s.ob = fuzzy::compare(probe.objects_hash, candidate.objects_hash);
    s.fi = fuzzy::compare(probe.file_hash, candidate.file_hash);
    s.st = fuzzy::compare(probe.strings_hash, candidate.strings_hash);
    s.sy = fuzzy::compare(probe.symbols_hash, candidate.symbols_hash);
    return s;
}

SimilarityScores score_records(const PreparedHashes& probe, const PreparedHashes& candidate) {
    const auto dim = [&](PreparedHashes::Dimension d, const fuzzy::PreparedDigest& a,
                         const fuzzy::PreparedDigest& b) {
        return (probe.has(d) && candidate.has(d)) ? fuzzy::compare(a, b) : 0;
    };
    SimilarityScores s;
    s.mo = dim(PreparedHashes::kModules, probe.modules, candidate.modules);
    s.co = dim(PreparedHashes::kCompilers, probe.compilers, candidate.compilers);
    s.ob = dim(PreparedHashes::kObjects, probe.objects, candidate.objects);
    s.fi = dim(PreparedHashes::kFile, probe.file, candidate.file);
    s.st = dim(PreparedHashes::kStrings, probe.strings, candidate.strings);
    s.sy = dim(PreparedHashes::kSymbols, probe.symbols, candidate.symbols);
    return s;
}

std::vector<SimilarityHit> similarity_search(const ProcessRecord& probe, const Aggregates& agg,
                                             const Labeler& labeler, std::size_t top_n,
                                             util::ThreadPool* pool) {
    // Candidates: every labeled user executable other than the probe itself.
    struct Candidate {
        const ExeStat* exe;
        std::string label;
    };
    std::vector<Candidate> candidates;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser || !exe.has_sample) continue;
        if (path == probe.exe_path) continue;
        std::string label = labeler.label(path);
        if (label == kUnknownLabel) continue;
        candidates.push_back({&exe, std::move(label)});
    }
    if (top_n == 0 || candidates.empty()) return {};

    const PreparedHashes probe_prepared = PreparedHashes::from(probe);

    // Each scan chunk keeps a bounded top-n heap ordered worst-at-front
    // (better() is the heap comparator, so the heap maximum is the worst
    // retained hit); only the per-chunk winners are merged and sorted, so
    // a registry-scale candidate set never pays a full sort.
    struct Scored {
        double average = 0.0;
        SimilarityScores scores;
        std::uint32_t idx = 0;
    };
    const auto better = [&](const Scored& a, const Scored& b) {
        if (a.average != b.average) return a.average > b.average;
        return candidates[a.idx].exe->path < candidates[b.idx].exe->path;
    };

    const auto scan_chunk = [&](std::size_t begin, std::size_t end, std::vector<Scored>& heap) {
        for (std::size_t i = begin; i < end; ++i) {
            const ExeStat& exe = *candidates[i].exe;
            // Aggregates caches the prepared digests next to the sample;
            // hand-assembled stats (valid == 0) are prepared on the fly.
            const PreparedHashes* prep = &exe.prepared_sample;
            PreparedHashes local;
            if (prep->valid == 0) {
                local = PreparedHashes::from(exe.sample);
                prep = &local;
            }
            Scored scored;
            scored.scores = score_records(probe_prepared, *prep);
            scored.average = scored.scores.average();
            scored.idx = static_cast<std::uint32_t>(i);
            if (heap.size() < top_n) {
                heap.push_back(scored);
                std::push_heap(heap.begin(), heap.end(), better);
            } else if (better(scored, heap.front())) {
                std::pop_heap(heap.begin(), heap.end(), better);
                heap.back() = scored;
                std::push_heap(heap.begin(), heap.end(), better);
            }
        }
    };

    std::vector<Scored> winners;
    if (pool != nullptr && candidates.size() > 16) {
        // Chunk geometry depends only on (n, grain, pool size), so the
        // merged result is deterministic and identical to the serial scan.
        const std::size_t grain =
            std::max<std::size_t>(32, candidates.size() / (8 * pool->size()));
        std::vector<std::vector<Scored>> heaps(pool->chunk_count(candidates.size(), grain));
        pool->parallel_for_chunks(
            candidates.size(),
            [&](std::size_t begin, std::size_t end, std::size_t chunk) {
                scan_chunk(begin, end, heaps[chunk]);
            },
            grain);
        for (auto& heap : heaps) {
            winners.insert(winners.end(), heap.begin(), heap.end());
        }
    } else {
        winners.reserve(std::min(top_n, candidates.size()));
        scan_chunk(0, candidates.size(), winners);
    }

    std::sort(winners.begin(), winners.end(), better);
    if (winners.size() > top_n) winners.resize(top_n);

    std::vector<SimilarityHit> hits;
    hits.reserve(winners.size());
    for (const Scored& w : winners) {
        SimilarityHit hit;
        hit.exe_path = candidates[w.idx].exe->path;
        hit.label = candidates[w.idx].label;
        hit.scores = w.scores;
        hit.average = w.average;
        hits.push_back(std::move(hit));
    }
    return hits;
}

const ProcessRecord* find_unknown_probe(const Aggregates& agg, const Labeler& labeler) {
    // Scan every unknown and keep the lexicographically-first path instead
    // of trusting container iteration order: the Table 7 probe choice must
    // be reproducible even if the aggregate keying ever changes.
    const ExeStat* best = nullptr;
    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != Category::kUser || !exe.has_sample) continue;
        if (labeler.label(path) != kUnknownLabel) continue;
        if (best == nullptr || exe.path < best->path) best = &exe;
    }
    return best == nullptr ? nullptr : &best->sample;
}

}  // namespace siren::analytics
