#include "analytics/security.hpp"

#include <algorithm>

#include "fuzzy/edit_distance.hpp"

namespace siren::analytics {

std::string_view to_string(Severity s) {
    switch (s) {
        case Severity::kInfo: return "info";
        case Severity::kWarning: return "warning";
        case Severity::kCritical: return "critical";
    }
    return "?";
}

SecurityScanner SecurityScanner::with_defaults() {
    // A deliberately small built-in advisory set: packages whose *use* on a
    // shared HPC system deserves a look, plus classic typo-bait names. A
    // production deployment would sync this from safety-db / OSV.
    std::vector<Advisory> advisories = {
        {"pickle", Severity::kWarning,
         "unsafe deserialization: pickle.loads on untrusted data executes code"},
        {"ctypes", Severity::kInfo, "loads arbitrary native code into the interpreter"},
        {"subprocess32", Severity::kWarning, "obsolete backport; unmaintained"},
        {"request", Severity::kCritical, "typosquat of 'requests' seen on PyPI"},
        {"urlib3", Severity::kCritical, "typosquat of 'urllib3' seen on PyPI"},
        {"python-sqlite", Severity::kCritical, "known malicious PyPI upload"},
    };

    // Known-good registry: the stdlib modules SIREN's extractor can surface
    // plus the popular scientific stack. Anything outside this set is
    // flagged for review (slopsquatting defence).
    std::vector<std::string> known = {
        // stdlib C extensions (Figure 3 vocabulary)
        "heapq", "struct", "math", "cmath", "posixsubprocess", "select", "blake2",
        "hashlib", "bz2", "lzma", "zlib", "fcntl", "array", "binascii", "bisect", "csv",
        "ctypes", "datetime", "decimal", "grp", "json", "mmap", "multiprocessing",
        "opcode", "pickle", "queue", "random", "sha512", "sha3", "socket", "unicodedata",
        "zoneinfo", "ssl", "asyncio", "sqlite3",
        // scientific / HPC stack
        "numpy", "scipy", "pandas", "mpi4py", "torch", "h5py", "netCDF4", "matplotlib",
        "requests", "urllib3", "yaml", "dask", "numba", "cython", "sympy", "xarray",
    };
    return SecurityScanner(std::move(advisories), std::move(known));
}

SecurityScanner::SecurityScanner(std::vector<Advisory> advisories,
                                 std::vector<std::string> known_packages)
    : advisories_(std::move(advisories)), known_(std::move(known_packages)) {}

std::string SecurityScanner::classify(std::string_view package, std::string* detail) const {
    for (const auto& advisory : advisories_) {
        if (advisory.package == package) {
            if (detail != nullptr) *detail = advisory.summary;
            return "advisory";
        }
    }
    if (std::find(known_.begin(), known_.end(), package) != known_.end()) {
        return {};
    }
    // Unknown package: check for near-misses of known names (typosquats /
    // LLM hallucinations differ from the real package by a keystroke).
    for (const auto& known : known_) {
        if (known.size() < 4) continue;  // short names collide too easily
        if (fuzzy::damerau_levenshtein(package, known) <= 1) {
            if (detail != nullptr) {
                *detail = "not in the package registry, 1 edit away from '" + known + "'";
            }
            return "slopsquat-suspect";
        }
    }
    if (detail != nullptr) *detail = "package not present in the known-package registry";
    return "unregistered";
}

std::vector<SecurityFinding> SecurityScanner::scan(const Aggregates& agg) const {
    std::vector<SecurityFinding> findings;
    for (const auto& [package, stat] : agg.packages) {
        std::string detail;
        const std::string kind = classify(package, &detail);
        if (kind.empty()) continue;

        SecurityFinding f;
        f.package = package;
        f.kind = kind;
        f.detail = detail;
        f.users = stat.users.size();
        f.jobs = stat.jobs.size();
        f.processes = stat.processes;
        if (kind == "advisory") {
            for (const auto& advisory : advisories_) {
                if (advisory.package == package) f.severity = advisory.severity;
            }
        } else if (kind == "slopsquat-suspect") {
            f.severity = Severity::kCritical;
        } else {
            f.severity = Severity::kInfo;
        }
        findings.push_back(std::move(f));
    }
    std::sort(findings.begin(), findings.end(),
              [](const SecurityFinding& a, const SecurityFinding& b) {
                  if (a.severity != b.severity) return a.severity > b.severity;
                  return a.package < b.package;
              });
    return findings;
}

}  // namespace siren::analytics
