#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/aggregate.hpp"

namespace siren::analytics {

/// Finding severity, ordered.
enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kCritical = 2 };

std::string_view to_string(Severity s);

/// One entry of the advisory database (the paper's planned
/// "cross-reference Python imports against known non-secure packages",
/// §6 Future Work; cf. the safety-db reference [29]).
struct Advisory {
    std::string package;
    Severity severity = Severity::kWarning;
    std::string summary;
};

/// One security finding over the campaign data.
struct SecurityFinding {
    std::string package;
    Severity severity = Severity::kInfo;
    std::string kind;     ///< "advisory" | "slopsquat-suspect" | "audit"
    std::string detail;
    std::size_t users = 0;
    std::size_t jobs = 0;
    std::uint64_t processes = 0;
};

/// Scanner for imported Python packages:
///  - advisory matches: packages listed in the advisory DB;
///  - slopsquatting suspects: packages that are neither Python stdlib nor
///    in the known-package registry, especially when within edit distance
///    1-2 of a popular package name (LLM-hallucinated dependencies, §4.4);
///  - audit notes: legitimate packages that warrant attention on shared
///    systems (native code loading, unsafe deserialization).
class SecurityScanner {
public:
    /// Built-in advisory DB + known-package registry.
    static SecurityScanner with_defaults();

    SecurityScanner(std::vector<Advisory> advisories,
                    std::vector<std::string> known_packages);

    /// Scan all imported packages recorded in the aggregates; findings are
    /// sorted by severity (critical first), then package name.
    std::vector<SecurityFinding> scan(const Aggregates& agg) const;

    /// Classify one package name (exposed for tests).
    /// Returns the kind string, empty when the package is unremarkable.
    std::string classify(std::string_view package, std::string* detail) const;

private:
    std::vector<Advisory> advisories_;
    std::vector<std::string> known_;
};

}  // namespace siren::analytics
