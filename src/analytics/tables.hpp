#pragma once

#include <functional>
#include <string>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"
#include "util/table.hpp"

namespace siren::analytics {

/// Renders a UID as the anonymized user name. The default mirrors the
/// paper's anonymization scheme against the campaign catalog (uid 1001 ->
/// "user_1").
using UserNamer = std::function<std::string(std::int64_t)>;
UserNamer default_user_namer();

/// Table 2: per-user jobs and processes by category, plus a Total row.
util::TextTable table2_users(const Aggregates& agg, const UserNamer& namer = default_user_namer());

/// Table 3: top-N executables from system directories with unique
/// OBJECTS_H counts. Also reports the total number of distinct system
/// executables via `total_out` when non-null.
util::TextTable table3_system_execs(const Aggregates& agg, std::size_t top_n = 10,
                                    std::size_t* total_out = nullptr);

/// Table 4: distinct shared-object sets of one executable (default
/// /usr/bin/bash), with the deviating libtinfo/libm paths.
util::TextTable table4_object_variants(const Aggregates& agg,
                                       const std::string& exe_path = "/usr/bin/bash");

/// Table 5: derived labels for user applications (regex labeler) with
/// unique FILE_H counts.
util::TextTable table5_user_labels(const Aggregates& agg,
                                   const Labeler& labeler = Labeler::default_rules());

/// Table 6: compiler provenance combinations of user applications.
util::TextTable table6_compilers(const Aggregates& agg);

/// Table 8: Python interpreters with unique SCRIPT_H counts.
util::TextTable table8_python(const Aggregates& agg);

/// Figure 2 (as a table): derived+filtered library tags with unique
/// users/jobs/processes/executables.
util::TextTable fig2_library_tags(const Aggregates& agg);

/// Figure 3 (as a table): imported Python packages.
util::TextTable fig3_python_packages(const Aggregates& agg);

/// Figure 4: compiler provenance x software label 0/1 matrix.
util::TextTable fig4_compiler_matrix(const Aggregates& agg,
                                     const Labeler& labeler = Labeler::default_rules());

/// Figure 5: library tag x software label 0/1 matrix.
util::TextTable fig5_library_matrix(const Aggregates& agg,
                                    const Labeler& labeler = Labeler::default_rules());

}  // namespace siren::analytics
