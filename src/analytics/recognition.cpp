#include "analytics/recognition.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "fuzzy/ctph.hpp"
#include "util/error.hpp"

namespace siren::analytics {

RecognitionReport recognition_report(const Aggregates& agg, const Labeler& labeler,
                                     const recognize::RegistryOptions& options) {
    recognize::Registry registry(options);
    RecognitionReport report;

    // Campaign-side stats accumulated alongside the registry's own.
    std::map<recognize::FamilyId, RecognitionRow> rows;
    std::set<recognize::FamilyId> families_with_unknown_member;

    for (const auto& [path, exe] : agg.execs) {
        if (exe.category != consolidate::Category::kUser) continue;

        std::string hint = labeler.label(exe.path);
        if (hint == kUnknownLabel) hint.clear();

        bool path_counted = false;
        for (const auto& digest_string : exe.file_hashes) {  // set: sorted, deterministic
            fuzzy::FuzzyDigest digest;
            try {
                digest = fuzzy::FuzzyDigest::parse(digest_string);
            } catch (const util::ParseError&) {
                continue;  // column lost to UDP drop: nothing to recognize
            }
            const auto obs = registry.observe(digest, hint);
            ++report.sightings;
            if (obs.new_family) {
                ++report.families_founded;
            } else {
                ++report.recognized;
            }
            if (hint.empty()) families_with_unknown_member.insert(obs.family);

            auto& row = rows[obs.family];
            row.family = obs.family;
            ++row.distinct_binaries;
            if (!path_counted) {
                // Attribute the path's processes once, to the family of its
                // first digest (paths with split lineages are pathological).
                ++row.paths;
                row.processes += exe.processes;
                path_counted = true;
            }
        }
    }

    for (auto& [id, row] : rows) {
        const auto& fam = registry.family(id);
        row.name = fam.name;
        row.exemplars = fam.exemplars;
        row.anonymous = fam.name.starts_with("family-");
        // A named family holding a labeler-UNKNOWN sighting is an
        // identification the regex baseline could not make — the paper's
        // a.out -> icon resolution, counted.
        if (!row.anonymous && families_with_unknown_member.contains(id)) {
            ++report.anonymous_named;
        }
        report.rows.push_back(row);
    }

    std::sort(report.rows.begin(), report.rows.end(),
              [](const RecognitionRow& a, const RecognitionRow& b) {
                  if (a.distinct_binaries != b.distinct_binaries) {
                      return a.distinct_binaries > b.distinct_binaries;
                  }
                  return a.name < b.name;
              });
    return report;
}

}  // namespace siren::analytics
