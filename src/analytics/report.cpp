#include "analytics/report.hpp"

#include <filesystem>
#include <fstream>

#include "analytics/recognition.hpp"
#include "analytics/security.hpp"
#include "analytics/tables.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::analytics {

std::string to_markdown(const util::TextTable& table) {
    std::string out = "| " + util::join(table.header(), " | ") + " |\n|";
    for (std::size_t c = 0; c < table.cols(); ++c) out += " --- |";
    out += '\n';
    for (std::size_t r = 0; r < table.rows(); ++r) {
        std::vector<std::string> cells;
        cells.reserve(table.cols());
        for (const auto& cell : table.row(r)) {
            cells.push_back(util::replace_all(cell, "|", "\\|"));
        }
        out += "| " + util::join(cells, " | ") + " |\n";
    }
    return out;
}

std::string campaign_report_markdown(const Aggregates& agg, const Labeler& labeler) {
    std::string md = "# SIREN Campaign Report\n\n";

    md += "## Overview\n\n";
    md += "- processes observed: " + util::with_commas(agg.total_processes) + "\n";
    md += "- jobs observed: " + util::with_commas(agg.all_jobs.size()) + "\n";
    md += "- distinct executables: " + util::with_commas(agg.execs.size()) + "\n";
    md += "- participating users: " + util::with_commas(agg.users.size()) + "\n";
    md += "- jobs with UDP-loss-damaged fields: " +
          util::with_commas(agg.jobs_with_missing_fields.size()) + " (" +
          util::fixed(agg.job_missing_ratio() * 100.0, 4) + "%)\n\n";

    md += "## Users, jobs, processes (Table 2)\n\n" + to_markdown(table2_users(agg)) + "\n";
    md += "## Top system executables (Table 3)\n\n" +
          to_markdown(table3_system_execs(agg)) + "\n";
    md += "## Shared-object deviations of bash (Table 4)\n\n" +
          to_markdown(table4_object_variants(agg)) + "\n";
    md += "## Derived software labels (Table 5)\n\n" +
          to_markdown(table5_user_labels(agg, labeler)) + "\n";
    md += "## Compiler provenance (Table 6)\n\n" + to_markdown(table6_compilers(agg)) + "\n";
    md += "## Python interpreters (Table 8)\n\n" + to_markdown(table8_python(agg)) + "\n";
    md += "## Library tags (Figure 2)\n\n" + to_markdown(fig2_library_tags(agg)) + "\n";
    md += "## Imported Python packages (Figure 3)\n\n" +
          to_markdown(fig3_python_packages(agg)) + "\n";
    md += "## Compiler matrix (Figure 4)\n\n" +
          to_markdown(fig4_compiler_matrix(agg, labeler)) + "\n";
    md += "## Library matrix (Figure 5)\n\n" +
          to_markdown(fig5_library_matrix(agg, labeler)) + "\n";

    md += "## Security scan of Python imports\n\n";
    const auto findings = SecurityScanner::with_defaults().scan(agg);
    if (findings.empty()) {
        md += "No findings.\n";
    } else {
        util::TextTable t({"Severity", "Package", "Kind", "Users", "Jobs", "Detail"});
        for (const auto& f : findings) {
            t.add_row({std::string(to_string(f.severity)), f.package, f.kind,
                       std::to_string(f.users), std::to_string(f.jobs), f.detail});
        }
        md += to_markdown(t);
    }

    md += "\n## Recognition registry over user binaries\n\n";
    const auto recognition = recognition_report(agg, labeler, {.match_threshold = 55});
    md += "- distinct user binaries (sightings): " +
          util::with_commas(recognition.sightings) + "\n";
    md += "- recognized as already-known software: " +
          util::with_commas(recognition.recognized) + " (" +
          util::fixed(recognition.recognition_rate() * 100.0, 1) + "%)\n";
    md += "- families founded: " + util::with_commas(recognition.families_founded) + "\n";
    md += "- named families holding name-UNKNOWN binaries: " +
          util::with_commas(recognition.anonymous_named) + "\n\n";
    {
        util::TextTable t({"Family", "Distinct binaries", "Paths", "Processes", "Named by"});
        for (const auto& row : recognition.rows) {
            t.add_row({row.name, std::to_string(row.distinct_binaries),
                       std::to_string(row.paths), util::with_commas(row.processes),
                       row.anonymous ? "(anonymous)" : "label"});
        }
        md += to_markdown(t);
    }
    return md;
}

void write_file(const std::string& path, const std::string& content) {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream out(p);
    if (!out) throw util::SystemError("cannot write " + path);
    out << content;
}

}  // namespace siren::analytics
