#include "analytics/aggregate.hpp"

#include "util/strings.hpp"

namespace siren::analytics {

using consolidate::Category;
using consolidate::ProcessRecord;

void Aggregates::add(const ProcessRecord& r) {
    util::StringInterner& interner = util::StringInterner::global();
    ++total_processes;
    all_jobs.insert(r.job_id);
    if (r.has_missing_fields()) {
        ++records_with_missing_fields;
        jobs_with_missing_fields.insert(r.job_id);
    }

    UserStat& user = users[r.uid];
    user.jobs.insert(r.job_id);
    switch (r.category) {
        case Category::kSystem: ++user.system_processes; break;
        case Category::kUser: ++user.user_processes; break;
        case Category::kPython: ++user.python_processes; break;
        case Category::kUnknown: break;
    }

    if (!r.exe_path.empty()) {
        ExeStat& exe = execs[interner.intern(r.exe_path)];
        if (exe.path.empty()) exe.path = r.exe_path;
        exe.category = r.category;
        exe.users.insert(r.uid);
        exe.jobs.insert(r.job_id);
        ++exe.processes;
        if (!r.objects_hash.empty()) {
            ObjectVariantStat& variant = exe.object_variants[interner.intern(r.objects_hash)];
            ++variant.processes;
            if (variant.sample_objects.empty()) variant.sample_objects = r.objects;
        }
        if (!r.file_hash.empty()) exe.file_hashes.insert(interner.intern(r.file_hash));
        if (!exe.has_sample && !r.has_missing_fields()) {
            exe.sample = r;
            exe.prepared_sample = consolidate::PreparedHashes::from(r);
            exe.has_sample = true;
        }
    }

    if (r.category == Category::kPython) {
        InterpreterStat& stat = interpreters[interner.intern(util::basename(r.exe_path))];
        stat.users.insert(r.uid);
        stat.jobs.insert(r.job_id);
        ++stat.processes;
        const std::string_view script_hash =
            r.script_hash.empty() ? std::string_view{} : interner.intern(r.script_hash);
        if (!script_hash.empty()) stat.script_hashes.insert(script_hash);

        for (const auto& pkg : r.python_packages) {
            PackageStat& p = packages[interner.intern(pkg)];
            p.users.insert(r.uid);
            p.jobs.insert(r.job_id);
            ++p.processes;
            if (!script_hash.empty()) p.scripts.insert(script_hash);
        }
    }
}

namespace {

template <typename T>
void union_into(std::set<T>& into, const std::set<T>& from) {
    into.insert(from.begin(), from.end());
}

}  // namespace

void Aggregates::merge(const Aggregates& other) {
    total_processes += other.total_processes;
    records_with_missing_fields += other.records_with_missing_fields;
    union_into(all_jobs, other.all_jobs);
    union_into(jobs_with_missing_fields, other.jobs_with_missing_fields);

    for (const auto& [uid, stat] : other.users) {
        UserStat& mine = users[uid];
        union_into(mine.jobs, stat.jobs);
        mine.system_processes += stat.system_processes;
        mine.user_processes += stat.user_processes;
        mine.python_processes += stat.python_processes;
    }

    for (const auto& [path, stat] : other.execs) {
        ExeStat& mine = execs[path];
        if (mine.path.empty()) mine.path = stat.path;
        mine.category = stat.category;
        union_into(mine.users, stat.users);
        union_into(mine.jobs, stat.jobs);
        mine.processes += stat.processes;
        for (const auto& [hash, variant] : stat.object_variants) {
            ObjectVariantStat& v = mine.object_variants[hash];
            v.processes += variant.processes;
            if (v.sample_objects.empty()) v.sample_objects = variant.sample_objects;
        }
        union_into(mine.file_hashes, stat.file_hashes);
        if (!mine.has_sample && stat.has_sample) {
            mine.sample = stat.sample;
            mine.prepared_sample = stat.prepared_sample;
            mine.has_sample = true;
        }
    }

    for (const auto& [name, stat] : other.interpreters) {
        InterpreterStat& mine = interpreters[name];
        union_into(mine.users, stat.users);
        union_into(mine.jobs, stat.jobs);
        mine.processes += stat.processes;
        union_into(mine.script_hashes, stat.script_hashes);
    }

    for (const auto& [name, stat] : other.packages) {
        PackageStat& mine = packages[name];
        union_into(mine.users, stat.users);
        union_into(mine.jobs, stat.jobs);
        mine.processes += stat.processes;
        union_into(mine.scripts, stat.scripts);
    }
}

}  // namespace siren::analytics
