#pragma once

#include <string>
#include <vector>

namespace siren::analytics {

/// Canonical display order for compiler provenances (defines the column
/// order of Figure 4 and the combo rendering of Table 6).
const std::vector<std::string>& compiler_provenance_order();

/// Map one .comment identification string to its provenance label:
/// "GCC: (SUSE Linux) 7.5.0" -> "GCC [SUSE]",
/// "AMD clang version 14.0.6 (ROCm 5.2.3)" -> "clang [AMD]", ...
/// Unrecognized strings map to their first token (best effort).
std::string compiler_provenance(const std::string& comment);

/// Provenances of a whole .comment list, deduplicated and put in canonical
/// order; joined with ", " this is a Table 6 combo key.
std::vector<std::string> compiler_provenances(const std::vector<std::string>& comments);

/// "GCC [SUSE], clang [Cray]" rendering of a combo.
std::string render_combo(const std::vector<std::string>& provenances);

}  // namespace siren::analytics
