#include "analytics/baselines.hpp"

#include "analytics/similarity.hpp"

namespace siren::analytics {

using consolidate::Category;

std::vector<RecognitionResult> evaluate_identification(const Aggregates& agg,
                                                       const GroundTruth& truth,
                                                       const std::vector<std::string>& probes,
                                                       const Labeler& labeler,
                                                       double min_confidence) {
    RecognitionResult name{"name-regex", 0, 0};
    RecognitionResult crypto{"crypto-exact", 0, 0};
    RecognitionResult fuzzy{"fuzzy-knn", 0, 0};

    for (const auto& probe_path : probes) {
        auto probe_it = agg.execs.find(probe_path);
        if (probe_it == agg.execs.end() || !probe_it->second.has_sample) continue;
        auto truth_it = truth.find(probe_path);
        if (truth_it == truth.end()) continue;
        const std::string& expected = truth_it->second;
        const ExeStat& probe = probe_it->second;

        ++name.total;
        ++crypto.total;
        ++fuzzy.total;

        // 1. Name-based labeling.
        if (labeler.label(probe_path) == expected) ++name.identified;

        // 2. Exact digest match: an identical binary elsewhere in the
        //    corpus whose path yields a label. (FILE_H equality at score
        //    100 == identical content, standing in for a sha1 match.)
        bool crypto_hit = false;
        for (const auto& [path, exe] : agg.execs) {
            if (path == probe_path || exe.category != Category::kUser) continue;
            if (labeler.label(exe.path) == kUnknownLabel) continue;
            for (const auto& h : exe.file_hashes) {
                if (probe.file_hashes.count(h) != 0) {
                    crypto_hit = labeler.label(exe.path) == expected;
                    break;
                }
            }
            if (crypto_hit) break;
        }
        if (crypto_hit) ++crypto.identified;

        // 3. Fuzzy nearest neighbour over all six dimensions.
        const auto hits = similarity_search(probe.sample, agg, labeler, 1);
        if (!hits.empty() && hits.front().average >= min_confidence &&
            hits.front().label == expected) {
            ++fuzzy.identified;
        }
    }

    return {name, crypto, fuzzy};
}

}  // namespace siren::analytics
