#pragma once

#include <string>

#include "analytics/aggregate.hpp"
#include "analytics/labeler.hpp"
#include "util/table.hpp"

namespace siren::analytics {

/// Render a TextTable as a GitHub-flavoured Markdown table.
std::string to_markdown(const util::TextTable& table);

/// Compose the full operator report (the "system usage report" use case of
/// the paper's introduction): campaign summary, every table/figure, the
/// loss accounting and the security scan, as one Markdown document.
std::string campaign_report_markdown(const Aggregates& agg,
                                     const Labeler& labeler = Labeler::default_rules());

/// Write `content` to `path` (creating parent directories); throws
/// siren::util::SystemError on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace siren::analytics
