#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "ingest/spsc_ring.hpp"
#include "net/message.hpp"
#include "storage/segment_store.hpp"

namespace siren::ingest {

/// Tuning for one IngestServer.
struct IngestOptions {
    /// UDP port; 0 binds an ephemeral port on the first socket and the
    /// remaining shards join it via SO_REUSEPORT (see port()).
    std::uint16_t port = 0;
    /// IPv4 address (dotted quad) every shard socket binds. Loopback by
    /// default so tests and single-node benches stay private; a deployed
    /// collector sets "0.0.0.0" (or a specific interface) so remote HPC
    /// nodes can reach the daemon.
    std::string bind_address = "127.0.0.1";
    /// Socket/ring/worker triples. SO_REUSEPORT spreads inbound datagrams
    /// across the sockets in the kernel, so shards scale receive work
    /// without any user-space distribution step.
    std::size_t shards = 2;
    /// Slots per shard ring (rounded up to a power of two).
    std::size_t ring_capacity = 4096;
    /// Max datagrams decoded per worker batch; bounds arena growth and
    /// handler latency.
    std::size_t batch_max = 256;
    /// Requested kernel receive buffer per socket (best-effort).
    int rcvbuf_bytes = 4 << 20;
    /// Durable mode: append every raw datagram to this store (shard k
    /// writes stream k) before it is decoded. The store must have at least
    /// `shards` writer shards. nullptr = in-memory only.
    storage::SegmentStore* store = nullptr;
    /// Group-commit cadence (durable mode): shard workers append at
    /// page-cache speed (inline fsync disabled on the store's writers) and
    /// a background flusher fsyncs every flush_interval — the classic WAL
    /// overlap that keeps the durable path near the in-memory path while
    /// bounding the durability window to roughly this interval plus one
    /// write buffer. 0 restores the writers' inline fsync batching.
    std::chrono::milliseconds flush_interval{10};
    /// When positive (and a store is set), a background thread compacts
    /// consolidated segments at this cadence.
    std::chrono::milliseconds compaction_interval{0};
    /// Background-compaction policy: treat every sealed segment as
    /// consolidated. Correct whenever the handler applies records
    /// synchronously (records are always handled before their segment
    /// seals) *and* the downstream state survives the daemon — otherwise
    /// leave segments for replay and mark/compact explicitly.
    bool compact_sealed = false;
};

/// Aggregated counters (snapshot across all shards).
struct IngestStats {
    std::uint64_t received = 0;        ///< datagrams read off sockets or injected
    std::uint64_t ring_dropped = 0;    ///< ring full: worker fell behind the NIC
    std::uint64_t oversize = 0;        ///< datagram larger than a ring slot
    std::uint64_t decoded = 0;         ///< well-formed messages handed to the handler
    std::uint64_t malformed = 0;       ///< decode_view rejections
    std::uint64_t appended = 0;        ///< raw datagrams journaled to the store
    std::uint64_t storage_errors = 0;  ///< store appends that failed
    std::uint64_t batches = 0;         ///< handler invocations
    std::uint64_t compactions = 0;     ///< segments removed by the background thread
};

/// The sharded epoll ingest daemon — the production receiver spine.
///
/// N UDP sockets share one port via SO_REUSEPORT; each shard runs its own
/// epoll loop (receiver thread) that drains its socket into a private SPSC
/// ring, and a worker thread that pops ring batches into a reused byte
/// arena, journals the raw datagrams to the segment store (durable mode),
/// batch-decodes them in place with net::decode_view, and hands the view
/// batch to the handler. The hot path — recv, ring push, arena append,
/// decode — takes no lock and performs no steady-state allocation; the
/// only mutexes live in cold paths (segment seal bookkeeping, stats
/// snapshots are atomics).
///
/// Contrast with net::UdpReceiver: that is the single-socket legacy path
/// feeding a mutex-guarded MessageQueue of owned Messages; this is the
/// campaign-scale replacement the ROADMAP's traffic goals call for.
class IngestServer {
public:
    /// Invoked once per drained batch, on that shard's worker thread. The
    /// views alias a per-shard arena and are valid only during the call.
    /// Handlers run concurrently across shards — synchronize shared sinks
    /// (db::Table::append already is).
    using BatchHandler =
        std::function<void(std::size_t shard, std::span<const net::MessageView> batch)>;

    /// Binds sockets and starts 2*shards threads; throws util::SystemError
    /// when sockets cannot be created/bound.
    IngestServer(IngestOptions options, BatchHandler handler);
    ~IngestServer();

    IngestServer(const IngestServer&) = delete;
    IngestServer& operator=(const IngestServer&) = delete;

    /// The port all shard sockets share (useful with options.port == 0).
    std::uint16_t port() const { return port_; }
    std::size_t shards() const { return shards_.size(); }

    /// Test/bench entry: push one datagram straight into `shard`'s ring —
    /// the exact hot path a socket read takes, minus the kernel. False
    /// when the ring is full or the datagram is oversize (both counted).
    bool inject(std::size_t shard, std::string_view datagram) noexcept;

    /// Block until every datagram accepted into a ring so far has been
    /// journaled, decoded and handed to the handler. (Datagrams still in
    /// kernel socket buffers are not covered — see quiesce().)
    void drain();

    /// Wait until no new datagram has arrived for `idle`, then drain().
    /// The sender-side "I stopped sending, let everything land" barrier.
    void quiesce(std::chrono::milliseconds idle = std::chrono::milliseconds(200));

    /// Stop receivers, drain rings through the workers, sync the store,
    /// join everything; idempotent, called by the destructor.
    void stop();

    IngestStats stats() const;

private:
    struct Shard {
        std::size_t index = 0;
        int fd = -1;
        int epoll_fd = -1;
        int event_fd = -1;
        SpscRing ring;
        std::thread receiver;
        std::thread worker;

        alignas(64) std::atomic<std::uint64_t> received{0};
        std::atomic<std::uint64_t> ring_dropped{0};
        std::atomic<std::uint64_t> oversize{0};
        std::atomic<std::uint64_t> pushed{0};     ///< accepted into the ring
        std::atomic<std::uint64_t> processed{0};  ///< popped + handled
        std::atomic<std::uint64_t> decoded{0};
        std::atomic<std::uint64_t> malformed{0};
        std::atomic<std::uint64_t> appended{0};
        std::atomic<std::uint64_t> storage_errors{0};
        std::atomic<std::uint64_t> batches{0};

        explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
        ~Shard();  ///< closes any fd stop() has not already released
    };

    void receive_loop(Shard& shard);
    void worker_loop(Shard& shard);
    void flusher_loop();
    void compaction_loop();

    IngestOptions options_;
    BatchHandler handler_;
    std::uint16_t port_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<bool> stop_receivers_{false};
    std::atomic<bool> stop_workers_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stop_mutex_;

    std::thread flusher_;
    std::thread compactor_;
    std::mutex background_mutex_;
    std::condition_variable background_cv_;
    bool background_stop_ = false;
    std::atomic<std::uint64_t> compactions_{0};
};

}  // namespace siren::ingest
