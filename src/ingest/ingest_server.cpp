#include "ingest/ingest_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/codec.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace siren::ingest {

namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw util::SystemError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

IngestServer::Shard::~Shard() {
    if (fd >= 0) ::close(fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (event_fd >= 0) ::close(event_fd);
}

IngestServer::IngestServer(IngestOptions options, BatchHandler handler)
    : options_(options), handler_(std::move(handler)) {
    util::require(options_.shards >= 1, "IngestServer needs at least one shard");
    if (options_.store) {
        util::require(options_.store->shards() >= options_.shards,
                      "segment store has fewer writer shards than the ingest server");
    }

    shards_.reserve(options_.shards);
    for (std::size_t i = 0; i < options_.shards; ++i) {
        auto shard = std::make_unique<Shard>(options_.ring_capacity);
        shard->index = i;
        shard->fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (shard->fd < 0) throw_errno("ingest socket()");

        // SO_REUSEPORT must be set before bind(); the kernel then spreads
        // inbound datagrams across all sockets sharing the port.
        int one = 1;
        if (::setsockopt(shard->fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
            throw_errno("ingest setsockopt(SO_REUSEPORT)");
        }
        if (options_.rcvbuf_bytes > 0) {
            // Best-effort: a small rmem_max just caps the burst absorbency.
            ::setsockopt(shard->fd, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf_bytes,
                         sizeof options_.rcvbuf_bytes);
        }

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(i == 0 ? options_.port : port_);
        if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
            throw util::SystemError("ingest bind address is not a valid IPv4 address: " +
                                    options_.bind_address);
        }
        if (::bind(shard->fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            throw_errno("ingest bind()");
        }
        if (i == 0) {
            socklen_t len = sizeof addr;
            if (::getsockname(shard->fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
                throw_errno("ingest getsockname()");
            }
            port_ = ntohs(addr.sin_port);
        }

        shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
        if (shard->epoll_fd < 0) throw_errno("epoll_create1()");
        shard->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (shard->event_fd < 0) throw_errno("eventfd()");

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = shard->fd;
        if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->fd, &ev) != 0) {
            throw_errno("epoll_ctl(socket)");
        }
        ev.data.fd = shard->event_fd;
        if (::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev) != 0) {
            throw_errno("epoll_ctl(eventfd)");
        }
        shards_.push_back(std::move(shard));
    }

    // Sockets are all bound — only now start the threads, so no shard ever
    // observes a half-constructed server. If any later thread fails to
    // start, unwind through stop(): letting a joinable std::thread reach
    // its destructor would std::terminate the process.
    const bool group_commit = options_.store && options_.flush_interval.count() > 0;
    if (group_commit) {
        // Group commit: workers skip inline fsync; the flusher overlaps
        // fsync with their page-cache-speed appends. Flip the writers'
        // mode BEFORE any worker thread exists — they read the flag on
        // every append, unsynchronized.
        for (std::size_t i = 0; i < options_.shards; ++i) {
            options_.store->writer(i).set_inline_fsync(false);
        }
    }
    try {
        for (auto& shard : shards_) {
            shard->receiver = std::thread([this, s = shard.get()] { receive_loop(*s); });
            shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
        }
        if (group_commit) flusher_ = std::thread([this] { flusher_loop(); });
        if (options_.store && options_.compaction_interval.count() > 0) {
            compactor_ = std::thread([this] { compaction_loop(); });
        }
    } catch (...) {
        stop();
        throw;
    }
}

IngestServer::~IngestServer() { stop(); }

void IngestServer::receive_loop(Shard& shard) {
    char buffer[SpscRing::kSlotBytes];
    epoll_event events[4];
    while (!stop_receivers_.load(std::memory_order_relaxed)) {
        const int ready = ::epoll_wait(shard.epoll_fd, events, 4, 500);
        if (ready < 0) {
            if (errno == EINTR) continue;
            util::log_warn("ingest shard " + std::to_string(shard.index) +
                           ": epoll_wait failed: " + std::strerror(errno));
            break;
        }
        for (int i = 0; i < ready; ++i) {
            if (events[i].data.fd == shard.event_fd) {
                std::uint64_t tick = 0;
                (void)!::read(shard.event_fd, &tick, sizeof tick);
                continue;  // the while condition observes the stop flag
            }
            // Level-triggered socket readable: drain it completely so one
            // epoll wakeup amortizes over a whole burst.
            while (true) {
                const ssize_t n =
                    ::recv(shard.fd, buffer, sizeof buffer, MSG_DONTWAIT | MSG_TRUNC);
                if (n < 0) {
                    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
                    util::log_warn("ingest shard " + std::to_string(shard.index) +
                                   ": recv failed: " + std::strerror(errno));
                    break;
                }
                shard.received.fetch_add(1, std::memory_order_relaxed);
                if (static_cast<std::size_t>(n) > sizeof buffer) {
                    // MSG_TRUNC reports the true datagram size; anything
                    // beyond a slot is not legitimate SIREN traffic.
                    shard.oversize.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                if (shard.ring.push(std::string_view(buffer, static_cast<std::size_t>(n)))) {
                    shard.pushed.fetch_add(1, std::memory_order_relaxed);
                } else {
                    shard.ring_dropped.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    }
}

void IngestServer::worker_loop(Shard& shard) {
    // Reused batch scratch: raw bytes arena + (offset, size) spans + decoded
    // views — the same zero-copy shape as the framework's InlineShard, so
    // steady state performs no heap allocation per datagram.
    std::string arena;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    std::vector<net::MessageView> views;
    storage::SegmentStore* store = options_.store;
    bool idle_synced = true;
    // Idle syncs are debounced: a momentary ring-empty blip during steady
    // traffic must not fsync (at ~0.5 ms each, per-blip syncs would dwarf
    // the fsync-interval batching); only a real pause flushes the tail.
    int empty_polls = 0;
    constexpr int kIdleSyncPolls = 25;  // ~5 ms of consecutive emptiness

    while (true) {
        arena.clear();
        spans.clear();
        const std::size_t drained = shard.ring.drain(
            [&](std::string_view d) {
                spans.emplace_back(arena.size(), d.size());
                arena.append(d);
            },
            options_.batch_max);

        if (drained == 0) {
            // The ring is empty and we are the only consumer: once the
            // receivers are joined and stop_workers_ is set, nothing can
            // arrive anymore.
            if (stop_workers_.load(std::memory_order_acquire)) break;
            if (store && !idle_synced && ++empty_polls >= kIdleSyncPolls) {
                // Idle durability barrier: when traffic pauses, push the
                // tail of the fsync batch out instead of sitting on it.
                store->writer(shard.index).sync();
                idle_synced = true;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            continue;
        }
        empty_polls = 0;

        // Journal raw datagrams before decoding: the segment store is a
        // write-ahead log of exactly what hit the wire, malformed or not.
        if (store) {
            storage::SegmentWriter& writer = store->writer(shard.index);
            std::uint64_t ok = 0;
            for (const auto& [offset, size] : spans) {
                if (writer.append(std::string_view(arena).substr(offset, size))) ++ok;
            }
            shard.appended.fetch_add(ok, std::memory_order_relaxed);
            if (ok != spans.size()) {
                shard.storage_errors.fetch_add(spans.size() - ok, std::memory_order_relaxed);
            }
            idle_synced = false;
        }

        views.clear();
        for (const auto& [offset, size] : spans) {
            net::MessageView view;
            try {
                net::decode_view(std::string_view(arena).substr(offset, size), view);
                views.push_back(view);
            } catch (const util::ParseError&) {
                shard.malformed.fetch_add(1, std::memory_order_relaxed);
            }
        }
        shard.decoded.fetch_add(views.size(), std::memory_order_relaxed);
        if (handler_ && !views.empty()) {
            handler_(shard.index, std::span<const net::MessageView>(views));
        }
        shard.batches.fetch_add(1, std::memory_order_relaxed);
        shard.processed.fetch_add(drained, std::memory_order_release);
    }

    if (store) store->writer(shard.index).sync();
}

void IngestServer::flusher_loop() {
    std::unique_lock<std::mutex> lock(background_mutex_);
    while (!background_cv_.wait_for(lock, options_.flush_interval,
                                    [this] { return background_stop_; })) {
        for (std::size_t i = 0; i < options_.shards; ++i) {
            options_.store->writer(i).sync_written();
        }
    }
}

void IngestServer::compaction_loop() {
    std::unique_lock<std::mutex> lock(background_mutex_);
    while (!background_cv_.wait_for(lock, options_.compaction_interval,
                                    [this] { return background_stop_; })) {
        storage::SegmentStore* store = options_.store;
        if (options_.compact_sealed) {
            for (const auto& path : store->sealed_segments()) store->mark_consolidated(path);
        }
        compactions_.fetch_add(store->compact(), std::memory_order_relaxed);
    }
}

bool IngestServer::inject(std::size_t shard_index, std::string_view datagram) noexcept {
    // Same accounting as the socket path. SPSC contract: do not inject into
    // a shard that is simultaneously receiving live socket traffic.
    Shard& shard = *shards_[shard_index % shards_.size()];
    shard.received.fetch_add(1, std::memory_order_relaxed);
    if (datagram.size() > SpscRing::kSlotBytes) {
        shard.oversize.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (shard.ring.push(datagram)) {
        shard.pushed.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    shard.ring_dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void IngestServer::drain() {
    while (true) {
        bool pending = false;
        for (const auto& shard : shards_) {
            if (shard->pushed.load(std::memory_order_acquire) !=
                shard->processed.load(std::memory_order_acquire)) {
                pending = true;
                break;
            }
        }
        if (!pending) return;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

void IngestServer::quiesce(std::chrono::milliseconds idle) {
    auto total_received = [this] {
        std::uint64_t total = 0;
        for (const auto& shard : shards_) {
            total += shard->received.load(std::memory_order_acquire);
        }
        return total;
    };
    std::uint64_t last = total_received();
    auto last_change = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - last_change < idle) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        const std::uint64_t now = total_received();
        if (now != last) {
            last = now;
            last_change = std::chrono::steady_clock::now();
        }
    }
    drain();
}

void IngestServer::stop() {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_.exchange(true)) return;

    stop_receivers_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
        if (shard->event_fd >= 0) {
            const std::uint64_t one = 1;
            (void)!::write(shard->event_fd, &one, sizeof one);
        }
    }
    for (auto& shard : shards_) {
        if (shard->receiver.joinable()) shard->receiver.join();
    }

    // Receivers are gone: workers drain what is left in the rings, sync
    // their segment streams and exit.
    stop_workers_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
        if (shard->worker.joinable()) shard->worker.join();
    }

    if (flusher_.joinable() || compactor_.joinable()) {
        {
            std::lock_guard<std::mutex> background_lock(background_mutex_);
            background_stop_ = true;
        }
        background_cv_.notify_all();
        if (flusher_.joinable()) flusher_.join();
        if (compactor_.joinable()) compactor_.join();
    }

    for (auto& shard : shards_) {
        if (shard->fd >= 0) ::close(shard->fd);
        if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
        if (shard->event_fd >= 0) ::close(shard->event_fd);
        shard->fd = shard->epoll_fd = shard->event_fd = -1;
    }
    if (options_.store) {
        options_.store->sync_all();
        // The store is caller-owned and outlives this server: give the
        // writers back the inline-fsync durability bound the group-commit
        // branch traded away for a flusher that no longer runs (or — on
        // the constructor's unwind path — never started).
        if (options_.flush_interval.count() > 0) {
            for (std::size_t i = 0; i < options_.shards; ++i) {
                options_.store->writer(i).set_inline_fsync(true);
            }
        }
    }
}

IngestStats IngestServer::stats() const {
    IngestStats stats;
    for (const auto& shard : shards_) {
        stats.received += shard->received.load(std::memory_order_acquire);
        stats.ring_dropped += shard->ring_dropped.load(std::memory_order_acquire);
        stats.oversize += shard->oversize.load(std::memory_order_acquire);
        stats.decoded += shard->decoded.load(std::memory_order_acquire);
        stats.malformed += shard->malformed.load(std::memory_order_acquire);
        stats.appended += shard->appended.load(std::memory_order_acquire);
        stats.storage_errors += shard->storage_errors.load(std::memory_order_acquire);
        stats.batches += shard->batches.load(std::memory_order_acquire);
    }
    stats.compactions = compactions_.load(std::memory_order_acquire);
    return stats;
}

}  // namespace siren::ingest
