#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace siren::ingest {

/// Lock-free single-producer/single-consumer datagram ring — the hand-off
/// between a shard's socket reader and its decode/store worker. One fixed
/// slot per datagram keeps the fast path to a bounds check, a memcpy and
/// one release store; there is no mutex, no CAS loop and no allocation
/// after construction.
///
/// Contract: exactly one thread calls push(), exactly one calls drain().
/// head_/tail_ are free-running 64-bit counters (masked on access), so
/// wrap-around needs no special casing. Each side caches the other's
/// counter and refreshes it only when the cached value says "full"/"empty",
/// which keeps cross-core cache-line traffic off the common path.
class SpscRing {
public:
    /// Slot payload bound. SIREN chunks wire content at
    /// net::kMaxDatagramBytes (1400), so 2 KiB leaves generous headroom;
    /// anything larger is not legitimate SIREN traffic.
    static constexpr std::size_t kSlotBytes = 2048;

    /// Capacity is rounded up to a power of two.
    explicit SpscRing(std::size_t capacity = 4096) {
        std::size_t cap = 1;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    std::size_t capacity() const { return slots_.size(); }

    /// Producer side. False when the ring is full (backpressure/drop call)
    /// or the datagram exceeds kSlotBytes.
    bool push(std::string_view datagram) noexcept {
        if (datagram.size() > kSlotBytes) return false;
        const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - cached_head_ == slots_.size()) {
            cached_head_ = head_.load(std::memory_order_acquire);
            if (tail - cached_head_ == slots_.size()) return false;
        }
        Slot& slot = slots_[tail & mask_];
        slot.size = static_cast<std::uint32_t>(datagram.size());
        std::memcpy(slot.bytes, datagram.data(), datagram.size());
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: invoke `fn(std::string_view)` on up to `max_records`
    /// buffered datagrams; returns how many were consumed. The views are
    /// valid only inside `fn` — slots are released (and may be overwritten)
    /// once drain() returns.
    template <typename Fn>
    std::size_t drain(Fn&& fn, std::size_t max_records) {
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        if (cached_tail_ == head) {
            cached_tail_ = tail_.load(std::memory_order_acquire);
            if (cached_tail_ == head) return 0;
        }
        std::uint64_t available = cached_tail_ - head;
        if (available > max_records) available = max_records;
        for (std::uint64_t i = 0; i < available; ++i) {
            const Slot& slot = slots_[(head + i) & mask_];
            fn(std::string_view(slot.bytes, slot.size));
        }
        head_.store(head + available, std::memory_order_release);
        return static_cast<std::size_t>(available);
    }

    bool empty() const {
        return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
    }

private:
    struct Slot {
        std::uint32_t size = 0;
        char bytes[kSlotBytes];
    };

    std::vector<Slot> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next slot to write
    alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next slot to read
    alignas(64) std::uint64_t cached_head_ = 0;       ///< producer's snapshot of head_
    alignas(64) std::uint64_t cached_tail_ = 0;       ///< consumer's snapshot of tail_
};

}  // namespace siren::ingest
