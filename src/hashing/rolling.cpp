#include "hashing/rolling.hpp"

// RollingHash is fully inline; this translation unit anchors the module so
// the static library is never empty and keeps a place for future
// out-of-line helpers.
namespace siren::hash {
static_assert(kRollingWindow == 7, "spamsum rolling window is 7 bytes");
}  // namespace siren::hash
