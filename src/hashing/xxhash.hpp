#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace siren::hash {

/// 128-bit digest (the XXH3_128bits role from the paper: a fast
/// non-cryptographic hash of the executable *path*, used only to
/// disambiguate PID reuse / exec() chains in the database — never analyzed
/// for similarity).
struct Digest128 {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    friend bool operator==(const Digest128&, const Digest128&) = default;

    /// 32 lowercase hex digits, hi word first.
    std::string hex() const;
};

/// XXH64-style hash (lane accumulation with the XXH64 prime schedule,
/// implemented from scratch; we do not claim bit-compatibility with the
/// upstream library — SIREN only needs speed and dispersion).
std::uint64_t xxh64(const void* data, std::size_t size, std::uint64_t seed = 0);
std::uint64_t xxh64(std::string_view s, std::uint64_t seed = 0);

/// 128-bit variant: two decorrelated 64-bit passes plus cross-mixing.
Digest128 xxh128(const void* data, std::size_t size, std::uint64_t seed = 0);
Digest128 xxh128(std::string_view s, std::uint64_t seed = 0);

}  // namespace siren::hash
