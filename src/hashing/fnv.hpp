#pragma once

#include <cstdint>
#include <string_view>

namespace siren::hash {

/// 32-bit FNV-1 constants; SSDeep's piecewise sum hash is FNV with a custom
/// initial value (HASH_INIT below, from Kornblum's spamsum).
inline constexpr std::uint32_t kFnv32Prime = 0x01000193u;
inline constexpr std::uint32_t kFnv32Init = 0x811C9DC5u;
inline constexpr std::uint32_t kSpamsumHashInit = 0x28021967u;

inline constexpr std::uint64_t kFnv64Prime = 0x100000001B3ull;
inline constexpr std::uint64_t kFnv64Init = 0xCBF29CE484222325ull;

/// One FNV-1 step (multiply then xor) as used by spamsum's piecewise hash.
constexpr std::uint32_t fnv32_step(std::uint32_t h, std::uint8_t c) {
    return (h * kFnv32Prime) ^ c;
}

/// FNV-1a over a byte range (xor then multiply; better dispersion for text).
constexpr std::uint32_t fnv1a32(std::string_view data, std::uint32_t seed = kFnv32Init) {
    std::uint32_t h = seed;
    for (char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnv32Prime;
    }
    return h;
}

constexpr std::uint64_t fnv1a64(std::string_view data, std::uint64_t seed = kFnv64Init) {
    std::uint64_t h = seed;
    for (char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= kFnv64Prime;
    }
    return h;
}

}  // namespace siren::hash
