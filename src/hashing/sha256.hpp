#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::hash {

/// SHA-256 (FIPS 180-4), implemented from scratch. Used as the
/// "cryptographic hash" contrast in the avalanche-effect demonstrations
/// (§2.1 of the paper) and available for integrity checks.
class Sha256 {
public:
    Sha256();

    void update(const void* data, std::size_t size);
    void update(std::string_view s) { update(s.data(), s.size()); }

    std::array<std::uint8_t, 32> finish();

    void reset();

    static std::string hex(std::string_view data);
    static std::string hex(const std::vector<std::uint8_t>& data);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_{};
    std::uint64_t total_bytes_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
};

}  // namespace siren::hash
