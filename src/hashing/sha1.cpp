#include "hashing/sha1.hpp"

#include <cstring>

#include "util/hex.hpp"

namespace siren::hash {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int r) { return (x << r) | (x >> (32 - r)); }
}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
    state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
    total_bytes_ = 0;
    buffered_ = 0;
}

void Sha1::update(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    total_bytes_ += size;

    if (buffered_ != 0) {
        const std::size_t need = 64 - buffered_;
        const std::size_t take = size < need ? size : need;
        std::memcpy(buffer_.data() + buffered_, p, take);
        buffered_ += take;
        p += take;
        size -= take;
        if (buffered_ == 64) {
            process_block(buffer_.data());
            buffered_ = 0;
        }
    }
    while (size >= 64) {
        process_block(p);
        p += 64;
        size -= 64;
    }
    if (size != 0) {
        std::memcpy(buffer_.data(), p, size);
        buffered_ = size;
    }
}

std::array<std::uint8_t, 20> Sha1::finish() {
    const std::uint64_t bit_len = total_bytes_ * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (buffered_ != 56) update(&zero, 1);

    std::uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    update(len_bytes, 8);

    std::array<std::uint8_t, 20> digest{};
    for (int i = 0; i < 5; ++i) {
        digest[static_cast<std::size_t>(i * 4 + 0)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 24);
        digest[static_cast<std::size_t>(i * 4 + 1)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 16);
        digest[static_cast<std::size_t>(i * 4 + 2)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)] >> 8);
        digest[static_cast<std::size_t>(i * 4 + 3)] = static_cast<std::uint8_t>(state_[static_cast<std::size_t>(i)]);
    }
    return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
               (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
               (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
               static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 80; ++i) {
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999u;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1u;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDCu;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6u;
        }
        const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
}

std::string Sha1::hex(std::string_view data) {
    Sha1 h;
    h.update(data);
    const auto digest = h.finish();
    return util::hex_encode(digest.data(), digest.size());
}

std::string Sha1::hex(const std::vector<std::uint8_t>& data) {
    Sha1 h;
    h.update(data.data(), data.size());
    const auto digest = h.finish();
    return util::hex_encode(digest.data(), digest.size());
}

}  // namespace siren::hash
