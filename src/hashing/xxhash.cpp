#include "hashing/xxhash.hpp"

#include <cstring>

#include "util/hex.hpp"

namespace siren::hash {

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

constexpr std::uint64_t rotl(std::uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

std::uint64_t read64(const std::uint8_t* p) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;  // little-endian hosts only (x86-64 / aarch64)
}

std::uint32_t read32(const std::uint8_t* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

std::uint64_t round_step(std::uint64_t acc, std::uint64_t input) {
    acc += input * kPrime2;
    acc = rotl(acc, 31);
    acc *= kPrime1;
    return acc;
}

std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
    acc ^= round_step(0, val);
    return acc * kPrime1 + kPrime4;
}

std::uint64_t avalanche(std::uint64_t h) {
    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

}  // namespace

std::uint64_t xxh64(const void* data, std::size_t size, std::uint64_t seed) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    const std::uint8_t* const end = p + size;
    std::uint64_t h;

    if (size >= 32) {
        std::uint64_t v1 = seed + kPrime1 + kPrime2;
        std::uint64_t v2 = seed + kPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kPrime1;
        const std::uint8_t* const limit = end - 32;
        do {
            v1 = round_step(v1, read64(p));
            v2 = round_step(v2, read64(p + 8));
            v3 = round_step(v3, read64(p + 16));
            v4 = round_step(v4, read64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed + kPrime5;
    }

    h += static_cast<std::uint64_t>(size);

    while (p + 8 <= end) {
        h ^= round_step(0, read64(p));
        h = rotl(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
        h = rotl(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * kPrime5;
        h = rotl(h, 11) * kPrime1;
        ++p;
    }
    return avalanche(h);
}

std::uint64_t xxh64(std::string_view s, std::uint64_t seed) {
    return xxh64(s.data(), s.size(), seed);
}

Digest128 xxh128(const void* data, std::size_t size, std::uint64_t seed) {
    // Two independent 64-bit lanes with distinct seeds, then cross-mix so
    // each output word depends on both lanes.
    const std::uint64_t a = xxh64(data, size, seed ^ kPrime1);
    const std::uint64_t b = xxh64(data, size, seed + kPrime2);
    Digest128 d;
    d.hi = avalanche(a + rotl(b, 17) + kPrime3);
    d.lo = avalanche(b ^ rotl(a, 41) ^ (static_cast<std::uint64_t>(size) * kPrime5));
    return d;
}

Digest128 xxh128(std::string_view s, std::uint64_t seed) {
    return xxh128(s.data(), s.size(), seed);
}

std::string Digest128::hex() const {
    return util::hex_u64(hi) + util::hex_u64(lo);
}

}  // namespace siren::hash
