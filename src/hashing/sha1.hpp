#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::hash {

/// SHA-1 (FIPS 180-1), implemented from scratch.
///
/// SIREN itself analyzes *fuzzy* hashes; SHA-1 is included because XALT (the
/// baseline framework, Related Work §5) identifies executables by a sha1 of
/// the binary. The ablation benches use it to show why exact cryptographic
/// matching fails to recognize recompiled variants (avalanche effect).
class Sha1 {
public:
    Sha1();

    void update(const void* data, std::size_t size);
    void update(std::string_view s) { update(s.data(), s.size()); }

    /// Finalize and return the 20-byte digest. The object must not be
    /// updated afterwards (reset() to reuse).
    std::array<std::uint8_t, 20> finish();

    void reset();

    /// One-shot convenience: lowercase hex digest of a buffer.
    static std::string hex(std::string_view data);
    static std::string hex(const std::vector<std::uint8_t>& data);

private:
    void process_block(const std::uint8_t* block);

    std::array<std::uint32_t, 5> state_{};
    std::uint64_t total_bytes_ = 0;
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffered_ = 0;
};

}  // namespace siren::hash
