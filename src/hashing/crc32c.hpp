#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace siren::hash {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) — the checksum the
/// durable segment store frames every record with (docs/storage_format.md).
/// Chosen over plain CRC32 for its better error-detection properties on
/// storage payloads and for hardware support on both x86 (SSE4.2) and ARM.
///
/// One-shot digest of `data`. Standard convention: initial state ~0,
/// final xor ~0, so crc32c("123456789") == 0xE3069283.
std::uint32_t crc32c(std::string_view data);

/// Streaming form: feed the previous return value back in as `crc` to
/// extend the digest (seed with 0). crc32c(ab) == update(update(0,a),b).
std::uint32_t crc32c_update(std::uint32_t crc, const void* data, std::size_t size);

}  // namespace siren::hash
