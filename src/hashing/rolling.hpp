#pragma once

#include <array>
#include <cstdint>

namespace siren::hash {

/// Window size of the spamsum/SSDeep rolling hash.
inline constexpr std::size_t kRollingWindow = 7;

/// SSDeep's rolling hash: a cheap recursive hash over the last
/// kRollingWindow bytes. Its value depends only on that window, which is
/// what makes the piecewise hashing *context-triggered*: a chunk boundary is
/// declared whenever hash % blocksize == blocksize-1, so boundaries realign
/// after local edits instead of shifting every subsequent chunk.
class RollingHash {
public:
    RollingHash() { reset(); }

    void reset() {
        window_.fill(0);
        h1_ = h2_ = h3_ = 0;
        n_ = 0;
    }

    /// Feed one byte and return the updated hash value.
    std::uint32_t update(std::uint8_t c) {
        h2_ -= h1_;
        h2_ += static_cast<std::uint32_t>(kRollingWindow) * c;
        h1_ += c;
        h1_ -= window_[n_ % kRollingWindow];
        window_[n_ % kRollingWindow] = c;
        ++n_;
        // h3 is a shift-xor over the window; the left-shift ages bytes out
        // after 32/5 ~ 7 updates, matching the window length.
        h3_ = (h3_ << 5) ^ c;
        return value();
    }

    std::uint32_t value() const { return h1_ + h2_ + h3_; }

private:
    std::array<std::uint8_t, kRollingWindow> window_{};
    std::uint32_t h1_ = 0;
    std::uint32_t h2_ = 0;
    std::uint32_t h3_ = 0;
    std::size_t n_ = 0;
};

}  // namespace siren::hash
