#include "hashing/crc32c.hpp"

#include <cstring>

namespace siren::hash {

namespace {

/// Slice-by-8 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table; tables 1..7 fold 8 input bytes per step,
/// which keeps the software path fast enough that record framing is never
/// the segment store's bottleneck (fsync is).
struct Crc32cTables {
    std::uint32_t t[8][256];
};

const Crc32cTables& tables() {
    static const Crc32cTables tb = [] {
        Crc32cTables tb{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
            }
            tb.t[0][i] = c;
        }
        for (std::uint32_t i = 0; i < 256; ++i) {
            for (int s = 1; s < 8; ++s) {
                tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xFFu];
            }
        }
        return tb;
    }();
    return tb;
}

#if defined(__x86_64__) && defined(__GNUC__)

/// Hardware path: one SSE4.2 crc32 instruction per 8 bytes. Compiled with a
/// function-level target attribute (the translation unit keeps the baseline
/// ISA) and selected at runtime, so the binary still runs on pre-Nehalem
/// hardware.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(std::uint32_t crc, const void* data,
                                                          std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t c = ~crc;
    while (size >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        c = __builtin_ia32_crc32di(c, chunk);
        p += 8;
        size -= 8;
    }
    auto c32 = static_cast<std::uint32_t>(c);
    while (size--) c32 = __builtin_ia32_crc32qi(c32, *p++);
    return ~c32;
}

bool have_sse42() {
    static const bool supported = __builtin_cpu_supports("sse4.2");
    return supported;
}

#endif  // __x86_64__ && __GNUC__

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, const void* data, std::size_t size) {
#if defined(__x86_64__) && defined(__GNUC__)
    if (have_sse42()) return crc32c_hw(crc, data, size);
#endif
    const auto& tb = tables();
    const auto* p = static_cast<const unsigned char*>(data);
    crc = ~crc;

#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    while (size >= 8) {
        std::uint64_t chunk;
        std::memcpy(&chunk, p, 8);
        chunk ^= crc;
        crc = tb.t[7][chunk & 0xFF] ^ tb.t[6][(chunk >> 8) & 0xFF] ^
              tb.t[5][(chunk >> 16) & 0xFF] ^ tb.t[4][(chunk >> 24) & 0xFF] ^
              tb.t[3][(chunk >> 32) & 0xFF] ^ tb.t[2][(chunk >> 40) & 0xFF] ^
              tb.t[1][(chunk >> 48) & 0xFF] ^ tb.t[0][chunk >> 56];
        p += 8;
        size -= 8;
    }
#endif
    while (size--) {
        crc = tb.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    }
    return ~crc;
}

std::uint32_t crc32c(std::string_view data) {
    return crc32c_update(0, data.data(), data.size());
}

}  // namespace siren::hash
