#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace siren::sim {

/// Recipe for one synthetic runtime counter trace.
///
/// The simulator has no real hardware counters to sample, so it
/// synthesizes traces whose *relationships* mirror how real HPC
/// applications behave: every execution of the same `lineage` follows the
/// same phase structure (init ramp, iterative compute phases with their
/// own oscillation periods, teardown) because that structure comes from
/// the algorithm, not the build. `version` drift perturbs the shape only
/// slightly — a recompiled or renamed binary runs the same solver — which
/// is precisely why the behavioral channel recognizes what content
/// hashing cannot. `run_seed` varies the measurement noise between runs
/// of the identical binary; recognition must survive it.
struct TraceRecipe {
    std::string lineage;       ///< seed key: same lineage = same phase structure
    std::size_t version = 0;   ///< drift steps; each nudges levels/periods ~1%
    std::size_t samples = 256; ///< counter samples in the trace
    double noise = 0.04;       ///< relative per-sample measurement noise
    std::uint64_t run_seed = 0;  ///< varies noise only, never the shape
};

/// Deterministically synthesize the counter trace for a recipe. Same
/// recipe (including run_seed), same samples — and two recipes differing
/// only in run_seed trace the same curve under different noise.
std::vector<double> synthesize_trace(const TraceRecipe& recipe);

}  // namespace siren::sim
