#include "sim/cluster.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::sim {

std::string MapsEntry::render() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%012llx-%012llx %s ",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end), perms.c_str());
    return std::string(buf) + path;
}

std::string FileMeta::render() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "inode=%llu size=%lld mode=%o uid=%lld gid=%lld atime=%lld mtime=%lld ctime=%lld",
                  static_cast<unsigned long long>(inode), static_cast<long long>(size), mode,
                  static_cast<long long>(owner_uid), static_cast<long long>(owner_gid),
                  static_cast<long long>(atime), static_cast<long long>(mtime),
                  static_cast<long long>(ctime));
    return buf;
}

FileMeta FileMeta::parse(const std::string& line) {
    FileMeta m;
    unsigned long long inode = 0;
    long long size = 0, uid = 0, gid = 0, atime = 0, mtime = 0, ctime = 0;
    unsigned mode = 0;
    const int matched = std::sscanf(
        line.c_str(),
        "inode=%llu size=%lld mode=%o uid=%lld gid=%lld atime=%lld mtime=%lld ctime=%lld",
        &inode, &size, &mode, &uid, &gid, &atime, &mtime, &ctime);
    if (matched != 8) throw util::ParseError("bad FileMeta line: " + line);
    m.inode = inode;
    m.size = size;
    m.mode = mode;
    m.owner_uid = uid;
    m.owner_gid = gid;
    m.atime = atime;
    m.mtime = mtime;
    m.ctime = ctime;
    return m;
}

Cluster::Cluster(std::size_t nodes, std::int64_t epoch) : epoch_(epoch) {
    util::require(nodes >= 1, "cluster needs at least one node");
    hostnames_.reserve(nodes);
    next_pid_.reserve(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "nid%06zu", i + 1);
        hostnames_.emplace_back(buf);
        next_pid_.push_back(2000 + static_cast<std::int64_t>(i) * 17 % 1000);
    }
}

std::int64_t Cluster::next_pid(std::size_t node) {
    std::int64_t& counter = next_pid_.at(node);
    const std::int64_t pid = counter++;
    if (counter > 4194304) counter = 300;  // kernel pid_max wrap: PID reuse
    return pid;
}

}  // namespace siren::sim
