#pragma once

#include <optional>
#include <string>
#include <vector>

namespace siren::sim {

/// One environment module (LMOD-style): name, version and the modules it
/// pulls in as dependencies when loaded.
struct Module {
    std::string name;
    std::string version;
    std::vector<std::string> dependencies;  ///< names of modules auto-loaded

    std::string qualified() const { return name + "/" + version; }
};

/// A minimal LMOD stand-in: register modules, then resolve a load list
/// (with transitive dependencies, each module once, load order preserved)
/// into the LOADEDMODULES environment value the collector reads.
class ModuleSystem {
public:
    /// Register; duplicate name/version pairs are rejected.
    void add(Module module);

    const Module* find(const std::string& name) const;

    /// Resolve `requested` (names) into the ordered qualified list,
    /// expanding dependencies depth-first; unknown names are kept verbatim
    /// (users can point MODULEPATH anywhere — the collector must not choke).
    std::vector<std::string> resolve(const std::vector<std::string>& requested) const;

    /// Render as LOADEDMODULES: colon-separated qualified names.
    static std::string loadedmodules_value(const std::vector<std::string>& resolved);

private:
    std::vector<Module> modules_;
};

}  // namespace siren::sim
