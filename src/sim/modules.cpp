#include "sim/modules.hpp"

#include <functional>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::sim {

void ModuleSystem::add(Module module) {
    for (const auto& existing : modules_) {
        if (existing.name == module.name && existing.version == module.version) {
            throw util::Error("module already registered: " + module.qualified());
        }
    }
    modules_.push_back(std::move(module));
}

const Module* ModuleSystem::find(const std::string& name) const {
    for (const auto& m : modules_) {
        if (m.name == name) return &m;
    }
    return nullptr;
}

std::vector<std::string> ModuleSystem::resolve(
    const std::vector<std::string>& requested) const {
    std::vector<std::string> out;
    std::set<std::string> seen;

    // Depth-first expansion; recursion depth is bounded by module count.
    std::function<void(const std::string&)> visit = [&](const std::string& name) {
        if (seen.count(name) != 0) return;
        seen.insert(name);
        const Module* m = find(name);
        if (m == nullptr) {
            out.push_back(name);  // unknown module: keep verbatim
            return;
        }
        for (const auto& dep : m->dependencies) visit(dep);
        out.push_back(m->qualified());
    };

    for (const auto& name : requested) visit(name);
    return out;
}

std::string ModuleSystem::loadedmodules_value(const std::vector<std::string>& resolved) {
    return util::join(resolved, ":");
}

}  // namespace siren::sim
