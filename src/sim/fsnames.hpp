#pragma once

#include <array>
#include <string>
#include <string_view>

namespace siren::sim {

/// The system directory prefixes from the paper (§3.1 "Selective Data
/// Collection"): a process whose executable lives under one of these is a
/// *system* process; everything else is a *user* process.
inline constexpr std::array<std::string_view, 11> kSystemDirs = {
    "/etc/", "/dev/", "/usr/", "/bin/", "/boot/", "/lib/",
    "/opt/", "/sbin/", "/sys/", "/proc/", "/var/",
};

/// Where an executable path resolves to.
enum class PathCategory { kSystem, kUser };

/// Classify by prefix. Relative paths (no leading '/') are user paths —
/// they resolve inside some user working directory.
PathCategory categorize_path(std::string_view path);

/// True when the basename looks like a Python interpreter (python,
/// python3, python3.11, ...). Combined with categorize_path this yields the
/// paper's three process categories: a Python interpreter in a system
/// directory is category *Python*; in a user directory it counts as *user*.
bool is_python_interpreter(std::string_view path);

/// Extract the interpreter short name for reporting ("python3.10");
/// returns the basename unchanged for non-Python paths.
std::string interpreter_name(std::string_view path);

}  // namespace siren::sim
