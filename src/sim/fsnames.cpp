#include "sim/fsnames.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace siren::sim {

PathCategory categorize_path(std::string_view path) {
    for (const auto prefix : kSystemDirs) {
        if (util::starts_with(path, prefix)) return PathCategory::kSystem;
    }
    return PathCategory::kUser;
}

bool is_python_interpreter(std::string_view path) {
    const std::string_view base = util::basename(path);
    if (!util::starts_with(base, "python")) return false;
    // Accept "python", "python3", "python3.11" — but not "python-config".
    for (char c : base.substr(6)) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.') return false;
    }
    return true;
}

std::string interpreter_name(std::string_view path) {
    return std::string(util::basename(path));
}

}  // namespace siren::sim
