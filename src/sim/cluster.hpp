#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/fsnames.hpp"

namespace siren::sim {

/// One entry of a simulated /proc/<pid>/maps.
struct MapsEntry {
    std::uint64_t start = 0;
    std::uint64_t end = 0;
    std::string perms = "r-xp";
    std::string path;  ///< mapped file; empty for anonymous mappings

    /// Render in /proc/self/maps format.
    std::string render() const;
};

/// Executable file metadata as collected by the paper (§3.1): inode, size,
/// permissions, owner, and the three POSIX timestamps.
struct FileMeta {
    std::uint64_t inode = 0;
    std::int64_t size = 0;
    std::uint32_t mode = 0755;
    std::int64_t owner_uid = 0;
    std::int64_t owner_gid = 0;
    std::int64_t atime = 0;
    std::int64_t mtime = 0;
    std::int64_t ctime = 0;

    /// Canonical one-line rendering used as message CONTENT.
    std::string render() const;
    static FileMeta parse(const std::string& line);

    friend bool operator==(const FileMeta&, const FileMeta&) = default;
};

/// Python-specific observables of an interpreter process.
struct PythonInfo {
    std::string script_path;     ///< empty for interactive/module runs
    std::string script_content;  ///< bytes of the script (for SCRIPT_H)
    FileMeta script_meta;
};

/// One simulated process: everything siren.so would observe from inside.
struct SimProcess {
    // Slurm context (environment variables on LUMI).
    std::uint64_t job_id = 0;
    std::uint32_t step_id = 0;
    std::uint32_t slurm_procid = 0;  ///< MPI rank; collection only at rank 0
    std::string host;

    // Kernel identifiers.
    std::int64_t pid = 0;
    std::int64_t ppid = 0;
    std::int64_t uid = 0;
    std::int64_t gid = 0;
    std::int64_t start_time = 0;  ///< unix seconds

    // Executable.
    std::string exe_path;
    FileMeta exe_meta;

    // Environment-derived lists.
    std::vector<std::string> loaded_modules;  ///< resolved LOADEDMODULES entries
    std::vector<std::string> loaded_objects;  ///< full paths of loaded shared objects
    std::vector<MapsEntry> memory_map;

    std::optional<PythonInfo> python;

    /// Process runs inside a container (singularity/apptainer image). The
    /// paper's deployment cannot collect these — LD_PRELOAD propagates but
    /// siren.so's directory is not mounted inside the container (§3.1
    /// "Requirements and Limitations"); the collector reproduces that
    /// behaviour unless explicitly configured otherwise.
    bool in_container = false;

    PathCategory path_category() const { return categorize_path(exe_path); }
    bool is_python() const {
        return is_python_interpreter(exe_path) && path_category() == PathCategory::kSystem;
    }
};

/// Allocates cluster-wide identifiers (job ids, PIDs per host, hostnames)
/// for the campaign generator. LUMI-flavoured hostnames: nid{0...}.
class Cluster {
public:
    explicit Cluster(std::size_t nodes = 64, std::int64_t epoch = 1733875200 /* 2024-12-11 */);

    std::size_t node_count() const { return hostnames_.size(); }
    const std::string& hostname(std::size_t node) const { return hostnames_.at(node); }

    std::uint64_t next_job_id() { return next_job_id_++; }

    /// PIDs are per-host counters starting in the typical Linux range;
    /// wrap-around models PID reuse.
    std::int64_t next_pid(std::size_t node);

    std::int64_t epoch() const { return epoch_; }

private:
    std::vector<std::string> hostnames_;
    std::vector<std::int64_t> next_pid_;
    std::uint64_t next_job_id_ = 1000001;
    std::int64_t epoch_;
};

}  // namespace siren::sim
