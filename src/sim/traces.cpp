#include "sim/traces.hpp"

#include <cmath>

#include "hashing/fnv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace siren::sim {

namespace {

/// One phase of the synthetic application: a counter level with an
/// oscillation riding on it (iterative solvers beat at their sweep
/// period) and a linear slope (ramp-up, drain).
struct Phase {
    double weight;  ///< share of the trace this phase occupies
    double level;   ///< baseline counter value
    double amp;     ///< oscillation amplitude
    double period;  ///< oscillation period, in samples
    double slope;   ///< level change across the phase
};

constexpr std::uint64_t kTraceSalt = 0xB14AC7E5ull;

}  // namespace

std::vector<double> synthesize_trace(const TraceRecipe& recipe) {
    util::require(recipe.samples > 0, "synthesize_trace: zero samples");
    const std::uint64_t base = util::mix64(hash::fnv1a64(recipe.lineage) ^ kTraceSalt);

    // Phase structure from the lineage seed alone: the algorithm's shape.
    util::Rng shape(base);
    const std::size_t phase_count = 3 + shape.index(4);
    std::vector<Phase> phases(phase_count);
    double total_weight = 0.0;
    for (Phase& p : phases) {
        p.weight = 0.5 + shape.uniform();
        p.level = 0.5 + 3.5 * shape.uniform();
        p.amp = p.level * 0.6 * shape.uniform();
        p.period = 8.0 + 32.0 * shape.uniform();
        p.slope = p.level * 0.5 * (shape.uniform() - 0.5);
        total_weight += p.weight;
    }

    // Version drift: each step nudges every phase's level and period by
    // ~1%. Behavior drifts far slower than content — the synthesizer
    // rewrites ~3% of code blocks per step, but the solver underneath
    // still runs the same phases — so the behavioral channel keeps
    // recognizing versions whose content digests long stopped matching.
    for (std::size_t step = 1; step <= recipe.version; ++step) {
        util::Rng drift(util::mix64(base ^ (step * 0x9E3779B97F4A7C15ull)));
        for (Phase& p : phases) {
            p.level *= 1.0 + 0.02 * (drift.uniform() - 0.5);
            p.period *= 1.0 + 0.02 * (drift.uniform() - 0.5);
        }
    }

    // Noise is the only place run_seed enters: two runs of one binary
    // share every shape parameter above and differ only here.
    util::Rng noise(util::mix64(base ^ util::mix64(recipe.run_seed ^ 0x5EEDFACEull)));

    std::vector<double> samples;
    samples.reserve(recipe.samples);
    std::size_t emitted = 0;
    double consumed_weight = 0.0;
    for (std::size_t pi = 0; pi < phases.size(); ++pi) {
        const Phase& p = phases[pi];
        consumed_weight += p.weight;
        // Cumulative-weight boundaries: the last phase always lands
        // exactly on recipe.samples regardless of rounding.
        const std::size_t boundary =
            pi + 1 == phases.size()
                ? recipe.samples
                : static_cast<std::size_t>(consumed_weight / total_weight *
                                           static_cast<double>(recipe.samples));
        const std::size_t phase_len = boundary > emitted ? boundary - emitted : 0;
        for (std::size_t i = 0; i < phase_len; ++i) {
            const double t = static_cast<double>(i);
            const double progress =
                phase_len > 1 ? t / static_cast<double>(phase_len - 1) : 0.0;
            double value = p.level + p.slope * progress +
                           p.amp * std::sin(2.0 * M_PI * t / p.period);
            value *= 1.0 + recipe.noise * (2.0 * noise.uniform() - 1.0);
            samples.push_back(value);
            ++emitted;
        }
    }
    return samples;
}

}  // namespace siren::sim
