#include "workload/synthesizer.hpp"

#include <algorithm>

#include "elfio/elfio.hpp"
#include "hashing/fnv.hpp"
#include "sim/traces.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace siren::workload {

namespace {

constexpr std::size_t kBlockBytes = 4096;

std::uint64_t lineage_seed(const std::string& lineage) {
    return util::mix64(hash::fnv1a64(lineage));
}

/// Generation of an item at `version`: the latest drift step <= version
/// that rewrote it (0 = original). Deterministic per (lineage, kind, item).
std::size_t generation_at(std::uint64_t base, std::uint64_t kind, std::size_t item,
                          std::size_t version, double rate) {
    for (std::size_t step = version; step >= 1; --step) {
        // Independent coin per (item, step); same coin for every variant,
        // which is what makes nearby versions share content.
        util::Rng coin(util::mix64(base ^ (kind * 0x9E37u) ^
                                   util::mix64(item * 1000003ull + step)));
        if (coin.chance(rate)) return step;
    }
    return 0;
}

/// Pseudo-word generator for identifiers and message text.
std::string word(util::Rng& rng, std::size_t min_len = 3, std::size_t max_len = 9) {
    static constexpr char kVowels[] = "aeiou";
    static constexpr char kConsonants[] = "bcdfghklmnprstvz";
    const std::size_t len = min_len + rng.index(max_len - min_len + 1);
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        out += (i % 2 == 0) ? kConsonants[rng.index(sizeof kConsonants - 1)]
                            : kVowels[rng.index(sizeof kVowels - 1)];
    }
    return out;
}

std::string make_string(std::uint64_t seed, const std::string& lineage) {
    util::Rng rng(seed);
    switch (rng.index(6)) {
        case 0: return "ERROR: " + word(rng) + " failed in " + word(rng) + "_" + word(rng) + "()";
        case 1: return lineage + ": cannot open %s: %s";
        case 2: return word(rng) + "_" + word(rng) + ".f90";
        case 3: return "Usage: %s [--" + word(rng) + "] [--" + word(rng) + "=N] FILE";
        case 4: return word(rng) + " tolerance exceeded: %e > %e";
        default: return "[" + word(rng) + "] step %d of %d (" + word(rng) + ")";
    }
}

std::string make_symbol(std::uint64_t seed, const std::string& lineage) {
    util::Rng rng(seed);
    std::string prefix = lineage.substr(0, std::min<std::size_t>(4, lineage.size()));
    prefix = util::to_lower(prefix);
    switch (rng.index(4)) {
        case 0: return prefix + "_" + word(rng) + "_" + word(rng);
        case 1: return "mo_" + word(rng) + "_" + word(rng) + "_";
        case 2: return prefix + "_" + word(rng) + "_init";
        default: return prefix + "_" + word(rng) + "_run";
    }
}

}  // namespace

std::vector<std::uint8_t> synthesize(const BinaryRecipe& recipe) {
    const std::uint64_t base = lineage_seed(recipe.lineage);

    // --- .text: blocks whose content depends on their drift generation ----
    std::vector<std::uint8_t> code;
    code.reserve(recipe.code_blocks * kBlockBytes);
    for (std::size_t b = 0; b < recipe.code_blocks; ++b) {
        const std::size_t gen =
            generation_at(base, 1, b, recipe.version, recipe.code_mutation_rate);
        util::Rng rng(util::mix64(base ^ util::mix64(b * 2 + 1) ^ util::mix64(gen * 7919)));
        const auto block = rng.bytes(kBlockBytes);
        code.insert(code.end(), block.begin(), block.end());
    }

    // --- strings ------------------------------------------------------------
    std::vector<std::string> strings;
    strings.reserve(recipe.string_count + 3);
    strings.push_back(recipe.lineage + " " +
                      (recipe.version_tag.empty() ? "build" : recipe.version_tag));
    for (std::size_t i = 0; i < recipe.string_count; ++i) {
        const std::size_t gen =
            generation_at(base, 2, i, recipe.version, recipe.string_mutation_rate);
        strings.push_back(make_string(
            util::mix64(base ^ util::mix64(0xABCD + i) ^ util::mix64(gen * 31337)),
            recipe.lineage));
    }

    // --- symbols ------------------------------------------------------------
    std::vector<elfio::BuildSymbol> symbols;
    symbols.reserve(recipe.symbol_count);
    for (std::size_t i = 0; i < recipe.symbol_count; ++i) {
        const std::size_t gen =
            generation_at(base, 3, i, recipe.version, recipe.symbol_mutation_rate);
        elfio::BuildSymbol sym;
        sym.name = make_symbol(
            util::mix64(base ^ util::mix64(0x51D5 + i) ^ util::mix64(gen * 104729)),
            recipe.lineage);
        sym.bind = elfio::STB_GLOBAL;
        sym.type = (i % 5 == 4) ? elfio::STT_OBJECT : elfio::STT_FUNC;
        sym.value = 0x401000 + i * 0x40;
        sym.size = 0x40;
        symbols.push_back(std::move(sym));
    }

    elfio::Builder builder;
    builder.set_type(elfio::ET_EXEC)
        .set_text(std::move(code))
        .set_rodata_strings(strings)
        .set_comments(recipe.compilers)
        .set_needed(recipe.needed)
        .set_symbols(std::move(symbols));
    return builder.build();
}

std::vector<std::uint8_t> synthesize_system_tool(const std::string& name) {
    BinaryRecipe recipe;
    recipe.lineage = "coreutils/" + name;
    recipe.version = 0;
    recipe.compilers = {"GCC: (SUSE Linux) 7.5.0"};
    recipe.needed = {"libc.so.6"};
    recipe.code_blocks = 6;
    recipe.string_count = 40;
    recipe.symbol_count = 12;
    recipe.version_tag = "8.32";
    return synthesize(recipe);
}

std::string synthesize_python_script(const std::string& user, std::size_t index,
                                     const std::vector<std::string>& packages) {
    util::Rng rng(util::mix64(hash::fnv1a64(user) ^ util::mix64(index * 7 + 13)));
    std::string out = "#!/usr/bin/env python3\n\"\"\"" + user + " workflow " +
                      std::to_string(index) + "\"\"\"\n";
    for (const auto& pkg : packages) out += "import " + pkg + "\n";
    out += "\n\ndef main():\n";
    const std::size_t lines = 10 + rng.index(30);
    for (std::size_t i = 0; i < lines; ++i) {
        out += "    " + word(rng) + "_" + word(rng) + " = " + word(rng) + "(" +
               std::to_string(rng.index(1000)) + ")\n";
    }
    out += "\n\nif __name__ == \"__main__\":\n    main()\n";
    return out;
}

std::vector<double> behavior_trace(const BinaryRecipe& recipe, std::uint64_t run_seed,
                                   std::size_t samples) {
    sim::TraceRecipe trace;
    trace.lineage = recipe.lineage;
    trace.version = recipe.version;
    trace.samples = samples;
    trace.run_seed = run_seed;
    return sim::synthesize_trace(trace);
}

}  // namespace siren::workload
