#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "collect/exe_store.hpp"
#include "sim/cluster.hpp"
#include "workload/campaign.hpp"
#include "workload/synthesizer.hpp"

namespace siren::workload {

struct GeneratorOptions {
    /// Campaign scale: 1.0 reproduces the paper's process counts; smaller
    /// values shrink every per-entity count proportionally (minimum 1) so
    /// the *shape* of every table survives.
    double scale = 1.0;
    std::uint64_t seed = 42;
};

struct CampaignTotals {
    std::uint64_t jobs = 0;
    std::uint64_t processes = 0;
};

/// Materializes a CampaignSpec into a deterministic plan of jobs and
/// process runs, registers every unique synthetic executable, and streams
/// the resulting SimProcess observations to a sink (normally the
/// Collector). The plan is computed once in the constructor; run_jobs()
/// slices it so callers can shard emission across threads.
class Generator {
public:
    explicit Generator(CampaignSpec spec, GeneratorOptions options = {});

    /// Synthesize and register every unique executable image referenced by
    /// the plan. Call once before run()/run_jobs().
    void populate_store(collect::FileStore& store) const;

    std::size_t job_count() const { return jobs_.size(); }
    const CampaignTotals& totals() const { return totals_; }

    using Sink = std::function<void(const sim::SimProcess&)>;

    /// Emit all processes in chronological job order.
    CampaignTotals run(const Sink& sink) const;

    /// Emit the jobs in [begin, end) only — the parallel sharding hook.
    CampaignTotals run_jobs(std::size_t begin, std::size_t end, const Sink& sink) const;

private:
    /// Everything constant about "a process running executable X in
    /// environment Y": profiles are shared by all processes of that shape.
    struct Profile {
        std::string exe_path;
        std::vector<std::string> objects;
        std::vector<std::string> modules;
        sim::FileMeta meta;
        std::optional<sim::PythonInfo> python;
        bool is_bash = false;
        bool is_srun = false;
    };

    struct Entry {
        std::size_t profile = 0;
        std::uint64_t count = 0;
        std::uint32_t step_id = 0;
    };

    struct JobPlan {
        std::size_t user = 0;  ///< index into spec_.users
        std::uint64_t job_id = 0;
        std::int64_t time = 0;
        std::size_t node = 0;
        std::vector<Entry> entries;
    };

    std::uint64_t scaled(std::uint64_t n) const;
    std::size_t intern_profile(Profile profile);
    std::size_t user_index(const std::string& name) const;
    void add_entry(std::size_t job_index, std::size_t profile, std::uint64_t count);

    void plan_jobs();
    void plan_system_execs(std::vector<std::uint64_t>& capacity);
    void plan_other_execs(std::vector<std::uint64_t>& capacity);
    void plan_software();
    void plan_python();
    /// Every planned job must observe at least one process (a Slurm job
    /// always runs something); empty jobs get one process of the user's
    /// habitual executable.
    void fill_empty_jobs();

    /// Spread `total` processes of `profile` across `slots` of the user's
    /// jobs, round-robin starting at `first_slot` (stride-mapped onto the
    /// user's job list).
    void spread(std::size_t user, std::uint64_t total, std::size_t profile,
                std::uint64_t slots, std::uint64_t first_slot = 0);

    void emit_job(const JobPlan& job, const Sink& sink) const;

    CampaignSpec spec_;
    GeneratorOptions options_;

    std::vector<Profile> profiles_;
    /// For Python profiles: the memory-mapped file list (interpreter
    /// runtime + imported packages' native extensions), indexed by profile.
    std::vector<std::vector<std::string>> python_maps_;
    std::vector<std::pair<std::string, BinaryRecipe>> recipes_;  ///< unique path -> recipe
    std::vector<JobPlan> jobs_;
    std::vector<std::vector<std::size_t>> user_jobs_;  ///< per user: indices into jobs_
    std::vector<std::size_t> user_filler_;  ///< per user: habitual profile (SIZE_MAX unset)
    CampaignTotals totals_;
};

}  // namespace siren::workload
