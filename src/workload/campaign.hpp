#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "collect/exe_store.hpp"
#include "sim/cluster.hpp"

namespace siren::workload {

/// Processes of one executable variant within one allocation.
struct VariantRun {
    std::size_t variant = 0;      ///< variant index within the software spec
    std::uint64_t processes = 0;  ///< processes executing this variant
};

/// One user's share of a software package: which variants they run, how
/// many processes per variant, and across how many of their jobs the
/// processes spread (round-robin over `jobs` job slots).
struct UserAlloc {
    std::string user;
    std::uint64_t jobs = 1;  ///< distinct jobs this software appears in
    std::vector<VariantRun> runs;
};

/// One set of loaded shared objects, with the number of processes that
/// should exhibit it. Models environment-dependent library deviations
/// (paper Table 4: three bash variants differing in libtinfo/libm).
struct ObjectSetVariant {
    std::string user;               ///< restrict to this user; empty = anyone
    std::uint64_t processes = 0;    ///< target count; 0 = absorbs the remainder
    std::vector<std::string> objects;
};

/// A system-directory executable (paper Table 3).
struct SystemExecSpec {
    std::string path;
    std::vector<std::string> users;  ///< which users run it (unique-users target)
    /// Users that must receive at least this many processes (so their
    /// deviating object variants have enough volume).
    std::vector<std::pair<std::string, std::uint64_t>> user_minimums;
    std::uint64_t processes = 0;  ///< total process target
    std::uint64_t jobs = 0;       ///< total job-membership target
    std::vector<ObjectSetVariant> object_variants;  ///< [0] = default set
};

/// Executable variants sharing one compiler combination (paper Table 6:
/// each executable's .comment may list several toolchains). Groups cover
/// contiguous variant-index ranges: the first group holds variants
/// [0, variants), the next the following range, and so on.
struct VariantGroup {
    std::size_t variants = 1;            ///< distinct executables (unique FILE_H)
    std::vector<std::string> compilers;  ///< .comment identification strings
};

/// One user-directory software package (paper Table 5 row).
struct UserSoftwareSpec {
    std::string label;          ///< catalog ground truth (evaluation only)
    std::string lineage;        ///< synthesizer lineage; UNKNOWN shares icon's
    std::size_t version_base = 0;  ///< lineage version of variant 0
    /// Path template; "{user}" and "{i}" are substituted. A path containing
    /// the label name is what the paper's regex labeler keys on; UNKNOWN
    /// uses a nondescript "a.out" pattern.
    std::string path_pattern;
    std::vector<UserAlloc> allocations;
    std::vector<VariantGroup> groups;
    /// Optional explicit lineage version per variant index; when empty the
    /// version is version_base + variant index. Used by the UNKNOWN spec to
    /// place its a.out binaries at controlled drift distances from icon.
    std::vector<std::size_t> variant_versions;
    std::vector<std::string> objects;               ///< default loaded objects
    std::vector<ObjectSetVariant> object_variants;  ///< optional deviating sets
    std::vector<std::string> modules;               ///< base LOADEDMODULES list
    std::size_t module_jitter = 1;  ///< number of module-version variants (>=1)
    std::size_t code_blocks = 24;   ///< binary size knob (x 4 KiB)
};

/// A group of Python runs: one user, one interpreter, several scripts.
struct PythonGroupSpec {
    std::string user;
    std::size_t scripts = 1;       ///< distinct input scripts (unique SCRIPT_H)
    std::uint64_t processes = 0;
    std::uint64_t jobs = 1;
    std::vector<std::string> packages;  ///< imported packages (Figure 3)
};

/// One system Python interpreter (paper Table 8 row).
struct PythonSpec {
    std::string interpreter_path;
    std::vector<std::string> objects;  ///< interpreter's loaded objects
    std::vector<PythonGroupSpec> groups;
};

/// Per-user totals (paper Table 2 row).
struct UserSpec {
    std::string name;  ///< anonymized (user_1 ... user_12)
    std::int64_t uid = 0;
    std::uint64_t jobs = 0;
    std::uint64_t system_processes = 0;  ///< target for the system category
    std::size_t other_execs = 0;  ///< count of long-tail system execs private to this user
};

/// The whole deployment campaign.
struct CampaignSpec {
    std::vector<UserSpec> users;
    std::vector<SystemExecSpec> system_execs;      ///< the top-10 of Table 3
    std::vector<std::string> other_exec_names;     ///< long-tail pool (names under /usr/bin)
    std::vector<UserSoftwareSpec> software;
    std::vector<PythonSpec> python;
    std::size_t nodes = 32;
    std::int64_t epoch = 1733875200;       ///< 2024-12-11, campaign start
    std::int64_t duration_seconds = 7430400;  ///< through 2025-03-07
};

/// The paper's LUMI opt-in campaign: 12 users, 13,448 jobs, 2,317,859
/// system + 9,042 user + 23,316 Python processes, with the software mix of
/// Tables 3-8 and Figures 2-5.
CampaignSpec lumi_campaign();

/// A small smoke-test campaign (3 users, a few hundred processes) for unit
/// tests and the quickstart example.
CampaignSpec mini_campaign();

/// Map a Figure-2/Figure-5 library tag ("hdf5-parallel-cray") to the
/// concrete shared-object path the generator injects for it.
std::string library_path_for_tag(const std::string& tag);

/// Compiler identification strings as they appear in .comment sections,
/// keyed by the paper's provenance label ("GCC [SUSE]" -> "GCC: (SUSE
/// Linux) 7.5.0", ...).
std::string compiler_comment_for(const std::string& provenance);

/// Path of the memory-mapped native extension a Python interpreter maps
/// when `package` is imported ("python3.10", "heapq" ->
/// ".../lib-dynload/_heapq.cpython-3.10-...so").
std::string package_map_path(const std::string& interpreter, const std::string& package);

}  // namespace siren::workload
