#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "hashing/fnv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace siren::workload {

namespace {

std::string substitute(std::string pattern, const std::string& user, std::size_t i) {
    pattern = util::replace_all(pattern, "{user}", user);
    pattern = util::replace_all(pattern, "{i}", std::to_string(i));
    return pattern;
}

sim::FileMeta make_meta(const std::string& path, std::int64_t uid, std::int64_t mtime,
                        std::int64_t size_estimate) {
    sim::FileMeta m;
    m.inode = util::mix64(hash::fnv1a64(path)) % 100000000;
    m.size = size_estimate;
    m.mode = 0755;
    m.owner_uid = uid;
    m.owner_gid = uid;
    m.atime = mtime + 3600;
    m.mtime = mtime;
    m.ctime = mtime;
    return m;
}

std::vector<sim::MapsEntry> maps_from_paths(const std::string& exe,
                                            const std::vector<std::string>& paths) {
    std::vector<sim::MapsEntry> out;
    out.reserve(paths.size() + 1);
    std::uint64_t addr = 0x400000;
    out.push_back({addr, addr + 0x200000, "r-xp", exe});
    addr = 0x7f0000000000;
    for (const auto& p : paths) {
        out.push_back({addr, addr + 0x40000, "r-xp", p});
        addr += 0x100000;
    }
    return out;
}

/// Proportional integer apportionment of `total` over `weights`, honouring
/// per-item caps; largest-remainder rounding. Returns the allocation.
std::vector<std::uint64_t> apportion(std::uint64_t total,
                                     const std::vector<std::uint64_t>& weights,
                                     const std::vector<std::uint64_t>& caps) {
    const std::size_t n = weights.size();
    std::vector<std::uint64_t> alloc(n, 0);
    std::uint64_t remaining = total;

    // Iterate because clamping to caps frees shares for the others.
    for (int round = 0; round < 8 && remaining > 0; ++round) {
        long double weight_sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (alloc[i] < caps[i]) weight_sum += static_cast<long double>(weights[i]) + 1;
        }
        if (weight_sum <= 0) break;
        bool progressed = false;
        std::uint64_t distributed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (alloc[i] >= caps[i]) continue;
            const auto share = static_cast<std::uint64_t>(
                static_cast<long double>(remaining) *
                (static_cast<long double>(weights[i]) + 1) / weight_sum);
            const std::uint64_t give = std::min<std::uint64_t>(share, caps[i] - alloc[i]);
            alloc[i] += give;
            distributed += give;
            progressed = progressed || give > 0;
        }
        remaining -= distributed;
        if (!progressed) {
            // Shares rounded down to zero everywhere: hand out one by one.
            for (std::size_t i = 0; i < n && remaining > 0; ++i) {
                if (alloc[i] < caps[i]) {
                    ++alloc[i];
                    --remaining;
                }
            }
        }
    }
    return alloc;
}

}  // namespace

Generator::Generator(CampaignSpec spec, GeneratorOptions options)
    : spec_(std::move(spec)), options_(options) {
    util::require(options_.scale > 0.0 && options_.scale <= 1.0,
                  "generator scale must be in (0, 1]");
    plan_jobs();

    std::vector<std::uint64_t> capacity(spec_.users.size());
    for (std::size_t u = 0; u < spec_.users.size(); ++u) {
        capacity[u] = scaled(spec_.users[u].system_processes);
        if (spec_.users[u].system_processes == 0) capacity[u] = 0;
    }
    plan_system_execs(capacity);
    plan_other_execs(capacity);
    plan_software();
    plan_python();
    fill_empty_jobs();

    totals_.jobs = jobs_.size();
    totals_.processes = 0;
    for (const auto& job : jobs_) {
        for (const auto& entry : job.entries) totals_.processes += entry.count;
    }
}

std::uint64_t Generator::scaled(std::uint64_t n) const {
    if (n == 0) return 0;
    const auto s = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(n) * options_.scale));
    return std::max<std::uint64_t>(1, s);
}

std::size_t Generator::user_index(const std::string& name) const {
    for (std::size_t u = 0; u < spec_.users.size(); ++u) {
        if (spec_.users[u].name == name) return u;
    }
    throw util::Error("campaign references unknown user: " + name);
}

std::size_t Generator::intern_profile(Profile profile) {
    profiles_.push_back(std::move(profile));
    return profiles_.size() - 1;
}

void Generator::add_entry(std::size_t job_index, std::size_t profile, std::uint64_t count) {
    if (count == 0) return;
    auto& entries = jobs_[job_index].entries;
    // Merge with an existing entry of the same profile (keeps plans small
    // when several runs land in the same job).
    for (auto& e : entries) {
        if (e.profile == profile) {
            e.count += count;
            return;
        }
    }
    Entry e;
    e.profile = profile;
    e.count = count;
    e.step_id = static_cast<std::uint32_t>(entries.size());
    entries.push_back(e);
}

void Generator::plan_jobs() {
    user_jobs_.resize(spec_.users.size());
    struct Draft {
        std::size_t user;
        std::int64_t time;
    };
    std::vector<Draft> drafts;
    for (std::size_t u = 0; u < spec_.users.size(); ++u) {
        const std::uint64_t jobs = scaled(spec_.users[u].jobs);
        util::Rng rng(util::mix64(options_.seed ^ (u * 977)));
        for (std::uint64_t k = 0; k < jobs; ++k) {
            const std::int64_t t =
                spec_.epoch +
                static_cast<std::int64_t>(k * static_cast<std::uint64_t>(spec_.duration_seconds) / jobs) +
                rng.range(0, 599);
            drafts.push_back({u, t});
        }
    }
    std::sort(drafts.begin(), drafts.end(), [](const Draft& a, const Draft& b) {
        return a.time < b.time || (a.time == b.time && a.user < b.user);
    });

    jobs_.reserve(drafts.size());
    for (std::size_t i = 0; i < drafts.size(); ++i) {
        JobPlan job;
        job.user = drafts[i].user;
        job.job_id = 1000001 + i;
        job.time = drafts[i].time;
        job.node = util::mix64(options_.seed ^ (i * 31)) % spec_.nodes;
        user_jobs_[drafts[i].user].push_back(i);
        jobs_.push_back(std::move(job));
    }
}

void Generator::spread(std::size_t user, std::uint64_t total, std::size_t profile,
                       std::uint64_t slots, std::uint64_t first_slot) {
    if (total == 0) return;
    const auto& job_indices = user_jobs_[user];
    if (job_indices.empty()) return;
    if (user_filler_.size() <= user) user_filler_.resize(spec_.users.size(), SIZE_MAX);
    if (user_filler_[user] == SIZE_MAX) user_filler_[user] = profile;
    slots = std::max<std::uint64_t>(1, std::min<std::uint64_t>(slots, job_indices.size()));

    const std::uint64_t base = total / slots;
    const std::uint64_t extra = total % slots;
    for (std::uint64_t s = 0; s < slots; ++s) {
        const std::uint64_t count = base + (s < extra ? 1 : 0);
        if (count == 0) continue;
        // Stride-map slot -> one of the user's jobs so software spreads
        // over the whole campaign window.
        const std::uint64_t slot = (s + first_slot) % slots;
        const std::size_t job =
            job_indices[static_cast<std::size_t>(slot * job_indices.size() / slots)];
        add_entry(job, profile, count);
    }
}

void Generator::plan_system_execs(std::vector<std::uint64_t>& capacity) {
    for (const auto& exec : spec_.system_execs) {
        const std::uint64_t total = scaled(exec.processes);
        const std::uint64_t total_jobs = scaled(exec.jobs);

        // Participants and their minimums.
        std::vector<std::size_t> users;
        for (const auto& name : exec.users) {
            const std::size_t u = user_index(name);
            if (capacity[u] > 0) users.push_back(u);
        }
        if (users.empty()) continue;

        std::vector<std::uint64_t> alloc(users.size(), 0);
        std::uint64_t assigned = 0;
        for (const auto& [name, minimum] : exec.user_minimums) {
            for (std::size_t i = 0; i < users.size(); ++i) {
                if (spec_.users[users[i]].name != name) continue;
                alloc[i] = std::min(scaled(minimum), capacity[users[i]]);
                assigned += alloc[i];
            }
        }

        // Remainder proportional to remaining per-user capacity.
        if (assigned < total) {
            std::vector<std::uint64_t> weights(users.size()), caps(users.size());
            for (std::size_t i = 0; i < users.size(); ++i) {
                weights[i] = capacity[users[i]] - alloc[i];
                caps[i] = capacity[users[i]] - alloc[i];
            }
            const auto extra = apportion(total - assigned, weights, caps);
            for (std::size_t i = 0; i < users.size(); ++i) alloc[i] += extra[i];
        }

        // Per-user job membership target.
        std::uint64_t participant_jobs = 0;
        for (const std::size_t u : users) participant_jobs += user_jobs_[u].size();

        // Object-set variants: named-user budgets first, default absorbs the
        // rest. Profiles are created lazily per (variant).
        std::vector<std::size_t> variant_profiles(exec.object_variants.size(), SIZE_MAX);
        auto profile_for_variant = [&](std::size_t v) {
            if (variant_profiles[v] == SIZE_MAX) {
                Profile p;
                p.exe_path = exec.path;
                p.objects = exec.object_variants[v].objects;
                p.meta = make_meta(exec.path, 0, spec_.epoch - 90 * 86400, 48 * 1024);
                p.is_bash = util::ends_with(exec.path, "/bash");
                p.is_srun = util::ends_with(exec.path, "/srun");
                variant_profiles[v] = intern_profile(std::move(p));
            }
            return variant_profiles[v];
        };
        std::vector<std::uint64_t> variant_budget(exec.object_variants.size(), 0);
        for (std::size_t v = 1; v < exec.object_variants.size(); ++v) {
            variant_budget[v] = scaled(exec.object_variants[v].processes);
        }

        for (std::size_t i = 0; i < users.size(); ++i) {
            const std::size_t u = users[i];
            if (alloc[i] == 0) continue;
            std::uint64_t remaining = alloc[i];
            capacity[u] -= std::min(capacity[u], alloc[i]);

            const std::uint64_t user_job_target = std::max<std::uint64_t>(
                1, total_jobs * user_jobs_[u].size() / std::max<std::uint64_t>(1, participant_jobs));

            // Deviating variants reserved for this user drain first.
            for (std::size_t v = 1; v < exec.object_variants.size() && remaining > 0; ++v) {
                if (exec.object_variants[v].user != spec_.users[u].name) continue;
                const std::uint64_t take = std::min(remaining, variant_budget[v]);
                variant_budget[v] -= take;
                remaining -= take;
                if (take > 0) {
                    spread(u, take, profile_for_variant(v),
                           std::max<std::uint64_t>(1, user_job_target / 4), v);
                }
            }
            spread(u, remaining, profile_for_variant(0), user_job_target);
        }
    }
}

void Generator::plan_other_execs(std::vector<std::uint64_t>& capacity) {
    std::size_t pool_cursor = 0;
    for (std::size_t u = 0; u < spec_.users.size(); ++u) {
        std::uint64_t remaining = capacity[u];
        if (remaining == 0) continue;
        std::size_t count = std::min<std::size_t>(spec_.users[u].other_execs,
                                                  spec_.other_exec_names.size() - pool_cursor);
        count = std::min<std::size_t>(count, remaining);
        if (count == 0) {
            // No private pool left but processes remain: put them on cat.
            util::log_debug("generator: user " + spec_.users[u].name +
                            " has leftover system processes and no exec pool");
            continue;
        }

        // Harmonic long-tail split of the remainder over `count` tools.
        double weight_sum = 0;
        for (std::size_t k = 0; k < count; ++k) weight_sum += 1.0 / static_cast<double>(k + 1);
        std::uint64_t given = 0;
        for (std::size_t k = 0; k < count; ++k) {
            std::uint64_t procs =
                (k + 1 == count)
                    ? remaining - given
                    : std::min<std::uint64_t>(
                          remaining - given,
                          static_cast<std::uint64_t>(static_cast<double>(remaining) /
                                                     (static_cast<double>(k + 1) * weight_sum)));
            if (procs == 0) procs = (given < remaining) ? 1 : 0;
            given += procs;
            if (procs == 0) continue;

            const std::string name = spec_.other_exec_names[pool_cursor + k];
            Profile p;
            p.exe_path = "/usr/bin/" + name;
            p.objects = {"/lib64/libc.so.6", library_path_for_tag("siren")};
            p.meta = make_meta(p.exe_path, 0, spec_.epoch - 120 * 86400, 32 * 1024);
            const std::size_t profile = intern_profile(std::move(p));
            // Long-tail tools are the preferred empty-job filler: padding
            // them never distorts the Table 3 top-10 counts.
            if (user_filler_.size() <= u) user_filler_.resize(spec_.users.size(), SIZE_MAX);
            user_filler_[u] = profile;

            const auto jobs = static_cast<std::uint64_t>(
                std::sqrt(static_cast<double>(procs)) + 1);
            spread(u, procs, profile, jobs, k);
        }
        capacity[u] = 0;
        pool_cursor += count;
    }
}

void Generator::plan_software() {
    for (const auto& soft : spec_.software) {
        // Variant index -> compiler group.
        std::vector<std::size_t> group_of;
        for (std::size_t g = 0; g < soft.groups.size(); ++g) {
            for (std::size_t k = 0; k < soft.groups[g].variants; ++k) group_of.push_back(g);
        }
        const std::size_t total_variants = group_of.size();

        // Deviating object-set budgets drain from the *last* runs so the
        // low-index variants (the similarity-search anchors) keep the
        // default set.
        std::vector<std::uint64_t> object_budget(soft.object_variants.size());
        for (std::size_t v = 0; v < soft.object_variants.size(); ++v) {
            object_budget[v] = scaled(soft.object_variants[v].processes);
        }

        for (const auto& alloc : soft.allocations) {
            const std::size_t u = user_index(alloc.user);
            if (user_jobs_[u].empty()) continue;
            const std::uint64_t slots =
                std::max<std::uint64_t>(1, std::min<std::uint64_t>(scaled(alloc.jobs),
                                                                   user_jobs_[u].size()));

            // Scale the run list: keep a strided subset (always including
            // run 0) so variant diversity shrinks with the process count.
            std::vector<VariantRun> runs;
            const std::size_t keep = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::llround(static_cast<double>(alloc.runs.size()) * options_.scale)));
            for (std::size_t i = 0; i < keep; ++i) {
                runs.push_back(alloc.runs[i * alloc.runs.size() / keep]);
            }

            // Assign deviating object sets to a strided subset of runs,
            // never run 0 (the similarity-search twin keeps the default
            // set) — this is what puts the OB_H=57 rows into Table 7.
            std::vector<std::size_t> run_object_variant(runs.size(), SIZE_MAX);
            for (std::size_t v = 0; v < soft.object_variants.size(); ++v) {
                std::uint64_t budget = object_budget[v];
                for (std::size_t r = 2; r < runs.size() && budget > 0; r += 3) {
                    if (run_object_variant[r] != SIZE_MAX) continue;
                    const std::uint64_t procs = scaled(runs[r].processes);
                    if (procs > budget) continue;
                    run_object_variant[r] = v;
                    budget -= procs;
                }
                object_budget[v] = budget;
            }

            std::uint64_t slot_cursor = 0;
            for (std::size_t r = 0; r < runs.size(); ++r) {
                const std::size_t variant = runs[r].variant;
                util::require(variant < total_variants,
                              "software '" + soft.label + "': run variant out of range");
                const std::uint64_t procs = scaled(runs[r].processes);

                Profile p;
                p.exe_path = substitute(soft.path_pattern, alloc.user, variant);
                p.objects = run_object_variant[r] == SIZE_MAX
                                ? soft.objects
                                : soft.object_variants[run_object_variant[r]].objects;
                // Module list with a per-variant version jitter.
                p.modules = soft.modules;
                const std::size_t jitter =
                    soft.module_jitter > 1 ? variant % soft.module_jitter : 0;
                if (jitter > 0 && !p.modules.empty()) {
                    const std::size_t m = variant % p.modules.size();
                    p.modules[m] += ".p" + std::to_string(jitter);
                }

                const std::size_t version = soft.variant_versions.empty()
                                                ? soft.version_base + variant
                                                : soft.variant_versions.at(variant);
                p.meta = make_meta(p.exe_path, spec_.users[u].uid,
                                   spec_.epoch - 30 * 86400 + static_cast<std::int64_t>(version) * 3600,
                                   static_cast<std::int64_t>(soft.code_blocks) * 4096 + 24000);
                const std::size_t profile = intern_profile(std::move(p));

                // Remember the recipe for populate_store (first writer wins;
                // identical path => identical recipe by construction).
                BinaryRecipe recipe;
                recipe.lineage = soft.lineage;
                recipe.version = version;
                recipe.compilers = soft.groups[group_of[variant]].compilers;
                for (const auto& obj : profiles_[profile].objects) {
                    recipe.needed.emplace_back(util::basename(obj));
                }
                recipe.code_blocks = soft.code_blocks;
                recipe.version_tag = "v2." + std::to_string(version);
                recipes_.emplace_back(profiles_[profile].exe_path, std::move(recipe));

                spread(u, procs, profile, slots, slot_cursor);
                slot_cursor += std::max<std::uint64_t>(1, procs);
            }
        }
    }
}

void Generator::plan_python() {
    for (const auto& py : spec_.python) {
        const std::string interp = std::string(util::basename(py.interpreter_path));

        BinaryRecipe recipe;
        recipe.lineage = "cpython";
        // "python3.10" -> minor version 10 drift steps from the 3.x origin.
        recipe.version = static_cast<std::size_t>(
            std::strtoul(interp.substr(interp.find('.') + 1).c_str(), nullptr, 10));
        recipe.compilers = {compiler_comment_for("GCC [SUSE]")};
        recipe.needed = {"libc.so.6"};
        recipe.code_blocks = 36;
        recipe.version_tag = interp.substr(6);
        recipes_.emplace_back(py.interpreter_path, std::move(recipe));

        for (const auto& group : py.groups) {
            const std::size_t u = user_index(group.user);
            if (user_jobs_[u].empty()) continue;
            const std::uint64_t total = scaled(group.processes);
            const std::uint64_t slots =
                std::max<std::uint64_t>(1, std::min<std::uint64_t>(scaled(group.jobs),
                                                                   user_jobs_[u].size()));
            const std::size_t scripts = std::max<std::size_t>(
                1, std::min<std::size_t>(
                       group.scripts,
                       static_cast<std::size_t>(std::llround(
                           static_cast<double>(group.scripts) * options_.scale)) +
                           1));

            // Memory map: interpreter runtime plus each imported package's
            // native extension (what the paper mines for imports).
            std::vector<std::string> map_paths = py.objects;
            for (const auto& pkg : group.packages) {
                map_paths.push_back(package_map_path(interp, pkg));
            }

            for (std::size_t s = 0; s < scripts; ++s) {
                const std::uint64_t procs = total / scripts + (s < total % scripts ? 1 : 0);
                if (procs == 0) continue;

                Profile p;
                p.exe_path = py.interpreter_path;
                p.objects = py.objects;
                p.meta = make_meta(py.interpreter_path, 0, spec_.epoch - 200 * 86400, 160 * 1024);

                sim::PythonInfo info;
                info.script_path = "/users/" + group.user + "/scripts/" + interp + "_run_" +
                                   std::to_string(s) + ".py";
                info.script_content = synthesize_python_script(group.user, s, group.packages);
                info.script_meta =
                    make_meta(info.script_path, spec_.users[u].uid, spec_.epoch - 10 * 86400,
                              static_cast<std::int64_t>(info.script_content.size()));
                p.python = std::move(info);

                const std::size_t profile = intern_profile(std::move(p));
                python_maps_.resize(profiles_.size());
                python_maps_[profile] = map_paths;

                // Full slot range with a per-script offset: scripts share
                // the group's jobs instead of piling into a couple of them.
                spread(u, procs, profile, slots, s * 7);
            }
        }
    }
}

void Generator::fill_empty_jobs() {
    if (user_filler_.size() < spec_.users.size()) {
        user_filler_.resize(spec_.users.size(), SIZE_MAX);
    }
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
        if (!jobs_[j].entries.empty()) continue;
        std::size_t filler = user_filler_[jobs_[j].user];
        if (filler == SIZE_MAX) {
            // A user with jobs but no planned executables at all: give them
            // a plain bash.
            Profile p;
            p.exe_path = "/usr/bin/bash";
            p.objects = {"/lib64/libtinfo.so.6", "/lib64/libc.so.6",
                         library_path_for_tag("siren")};
            p.meta = make_meta(p.exe_path, 0, spec_.epoch - 90 * 86400, 48 * 1024);
            p.is_bash = true;
            filler = intern_profile(std::move(p));
            user_filler_[jobs_[j].user] = filler;
        }
        add_entry(j, filler, 1);
    }
}

void Generator::populate_store(collect::FileStore& store) const {
    std::set<std::string> done;
    for (const auto& [path, recipe] : recipes_) {
        if (!done.insert(path).second) continue;
        collect::ExecutableImage image;
        image.bytes = synthesize(recipe);
        image.meta = make_meta(path, 0, spec_.epoch - 30 * 86400,
                               static_cast<std::int64_t>(image.bytes.size()));
        store.register_executable(path, std::move(image));
    }
    // System tools and interpreters not covered by software recipes.
    for (const auto& profile : profiles_) {
        if (!done.insert(profile.exe_path).second) continue;
        collect::ExecutableImage image;
        image.bytes = synthesize_system_tool(std::string(util::basename(profile.exe_path)));
        image.meta = profile.meta;
        image.meta.size = static_cast<std::int64_t>(image.bytes.size());
        store.register_executable(profile.exe_path, std::move(image));
    }
}

CampaignTotals Generator::run(const Sink& sink) const {
    return run_jobs(0, jobs_.size(), sink);
}

CampaignTotals Generator::run_jobs(std::size_t begin, std::size_t end, const Sink& sink) const {
    CampaignTotals done;
    end = std::min(end, jobs_.size());
    for (std::size_t j = begin; j < end; ++j) {
        emit_job(jobs_[j], sink);
        ++done.jobs;
        for (const auto& e : jobs_[j].entries) done.processes += e.count;
    }
    return done;
}

void Generator::emit_job(const JobPlan& job, const Sink& sink) const {
    const UserSpec& user = spec_.users[job.user];
    std::int64_t pid = 2000 + static_cast<std::int64_t>((job.job_id * 37) % 100000);
    const std::int64_t ppid = pid - 1;

    // exec()-chain modelling: the first srun of a job replaces the job's
    // first bash process, keeping its PID (and, at 1-second granularity,
    // its timestamp) — the situation the HASH header field disambiguates.
    std::int64_t first_bash_pid = -1;
    bool srun_chained = false;

    for (const auto& entry : job.entries) {
        const Profile& profile = profiles_[entry.profile];
        for (std::uint64_t c = 0; c < entry.count; ++c) {
            sim::SimProcess p;
            p.job_id = job.job_id;
            p.step_id = entry.step_id;
            p.slurm_procid = 0;
            p.host = "nid" + std::to_string(100000 + job.node);
            if (profile.is_srun && !srun_chained && first_bash_pid >= 0) {
                p.pid = first_bash_pid;
                srun_chained = true;
            } else {
                p.pid = pid++;
            }
            if (profile.is_bash && first_bash_pid < 0) first_bash_pid = p.pid;
            p.ppid = ppid;
            p.uid = user.uid;
            p.gid = user.uid;
            p.start_time = job.time;
            p.exe_path = profile.exe_path;
            p.exe_meta = profile.meta;
            p.loaded_modules = profile.modules;
            p.loaded_objects = profile.objects;
            if (profile.python) {
                p.python = profile.python;
                p.memory_map = maps_from_paths(
                    profile.exe_path,
                    entry.profile < python_maps_.size() ? python_maps_[entry.profile]
                                                        : profile.objects);
            } else if (sim::categorize_path(profile.exe_path) == sim::PathCategory::kUser) {
                p.memory_map = maps_from_paths(profile.exe_path, profile.objects);
            }
            sink(p);
        }
    }
}

}  // namespace siren::workload
