#include <map>

#include "util/error.hpp"
#include "workload/campaign.hpp"

// The LUMI opt-in campaign catalog.
//
// Every number here is taken from the paper's evaluation (Tables 2-8,
// Figures 2-5). Where the paper gives only marginals (per-user totals in
// Table 2, per-executable totals in Table 3), the joint allocation was
// reconstructed so that the marginals are consistent; DESIGN.md documents
// the reconstruction. The per-label user assignment is exact: the paper's
// per-user user-directory process counts uniquely decompose into the
// per-label counts (e.g. user_4's 642 = icon 625 + UNKNOWN 17).
namespace siren::workload {

namespace {

// --- compiler identification strings ---------------------------------------

const std::map<std::string, std::string>& compiler_comments() {
    static const std::map<std::string, std::string> kMap = {
        {"GCC [SUSE]", "GCC: (SUSE Linux) 7.5.0"},
        {"GCC [Red Hat]", "GCC: (GNU) 8.5.0 20210514 (Red Hat 8.5.0-18)"},
        {"GCC [conda]", "GCC: (conda-forge gcc 12.3.0-3) 12.3.0"},
        {"GCC [HPE]", "GCC: (HPE) 10.3.0 20210408"},
        {"clang [Cray]", "Cray clang version 15.0.1 (CrayPE 2.7.20)"},
        {"clang [AMD]", "AMD clang version 14.0.6 (ROCm 5.2.3)"},
        {"LLD [AMD]", "Linker: AMD LLD 14.0.6"},
        {"rustc", "rustc version 1.68.2"},
    };
    return kMap;
}

// --- library-tag -> concrete shared object path -----------------------------
//
// Each path contains exactly the substrings of its tag (in the canonical
// filter order) and no other filter substring; see
// analytics::kLibraryFilterSubstrings.

const std::map<std::string, std::string>& tag_paths() {
    static const std::map<std::string, std::string> kMap = {
        {"siren", "/opt/siren/lib/siren.so"},
        {"pthread", "/lib64/libpthread.so.0"},
        {"cray", "/opt/cray/pe/lib64/libcommon.so.1"},
        {"quadmath-cray", "/opt/cray/pe/gcc-libs/libquadmath.so.0"},
        {"fabric-cray", "/opt/cray/libfabric/1.15.2/lib64/libfabric.so.1"},
        {"pmi-cray", "/opt/cray/pe/pmi/6.1.12/lib/libpmi.so.0"},
        {"rocm", "/opt/rocm-5.2.3/lib/libhsa-runtime64.so.1"},
        {"numa", "/usr/lib64/libnuma.so.1"},
        {"drm", "/usr/lib64/libdrm.so.2"},
        {"amdgpu-drm", "/usr/lib64/libdrm_amdgpu.so.1"},
        {"fortran", "/usr/lib64/libgfortran.so.5"},
        {"libsci-cray", "/opt/cray/pe/libsci/23.02.1.1/lib/libsci_gnu.so.6"},
        {"rocm-blas", "/opt/rocm-5.2.3/lib/librocblas.so.0"},
        {"rocsolver-rocm", "/opt/rocm-5.2.3/lib/librocsolver.so.0"},
        {"rocsparse-rocm", "/opt/rocm-5.2.3/lib/librocsparse.so.0"},
        {"fft-cray", "/opt/cray/pe/fftw/3.3.10.3/lib/libfftw3.so.3"},
        {"rocm-fft", "/opt/rocm-5.2.3/lib/libfft_utils.so.0"},
        {"rocfft-rocm-fft", "/opt/rocm-5.2.3/lib/librocfft.so.0"},
        {"craymath-cray", "/opt/cray/pe/lib64/libcraymath.so.1"},
        {"MIOpen-rocm", "/opt/rocm-5.2.3/lib/libMIOpen.so.1"},
        {"gromacs", "/projappl/project_465000111/gromacs-2023.1/lib/libgromacs_mpi.so.8"},
        {"boost", "/usr/lib64/libboost_program_options.so.1.80.0"},
        {"netcdf-cray", "/opt/cray/pe/netcdf/4.9.0.1/lib/libnetcdf.so.19"},
        {"amdgpu-cray", "/opt/cray/pe/lib64/libamdgpu_support.so.1"},
        {"openacc-cray", "/opt/cray/pe/cce/15.0.1/lib/libopenacc.so.1"},
        {"rocm-torch", "/opt/rocm-5.2.3/lib/libtorch_hip.so.1"},
        {"numa-rocm-torch", "/opt/rocm-5.2.3/lib/libtorch_numa.so.1"},
        {"numa-spack", "/appl/spack/v018/linux-sles15/libnuma.so.1"},
        {"spack", "/appl/spack/v018/linux-sles15/libutil_misc.so.2"},
        {"blas-spack", "/appl/spack/v018/linux-sles15/libopenblas.so.0"},
        {"rocsolver-spack", "/appl/spack/v018/linux-sles15/librocsolver.so.0"},
        {"rocsparse-spack", "/appl/spack/v018/linux-sles15/librocsparse.so.0"},
        {"drm-spack", "/appl/spack/v018/linux-sles15/libdrm.so.2"},
        {"amdgpu-drm-spack", "/appl/spack/v018/linux-sles15/libdrm_amdgpu.so.1"},
        {"climatedt", "/appl/local/climatedt/lib/libdestine_core.so.1"},
        {"climatedt-yaml", "/appl/local/climatedt/lib/libyaml_config.so.0"},
        {"hdf5-cray", "/opt/cray/pe/hdf5/1.12.2.3/lib/libhdf5.so.200"},
        {"cuda-amber", "/users/user_10/amber22/lib/libcuda_kernels.so.1"},
        {"amber", "/users/user_10/amber22/lib/libsff.so.1"},
        {"netcdf-parallel-cray", "/opt/cray/pe/parallel-netcdf/1.12.3.3/lib/libpnetcdf.so.4"},
        {"hdf5-parallel-cray", "/opt/cray/pe/hdf5-parallel/1.12.2.3/lib/libhdf5_parallel.so.200"},
        {"hdf5-fortran-parallel-cray",
         "/opt/cray/pe/hdf5-parallel/1.12.2.3/lib/libhdf5_fortran_parallel.so.200"},
        {"torch-tykky", "/appl/local/tykky/torch-env/lib/libtorch.so.2"},
        {"numa-torch-tykky", "/appl/local/tykky/torch-env/lib/libtorch_numa.so.2"},
    };
    return kMap;
}

/// Plain libc: carries no tag, present everywhere.
const std::string kLibc = "/lib64/libc.so.6";

std::vector<std::string> objects_for_tags(const std::vector<std::string>& tags) {
    std::vector<std::string> out;
    out.reserve(tags.size() + 1);
    for (const auto& tag : tags) out.push_back(library_path_for_tag(tag));
    out.push_back(kLibc);
    return out;
}

/// The common LUMI software stack every module environment carries; a
/// realistic LOADEDMODULES has ~15-25 entries, which is what makes the
/// MO_H similarity degrade gently (Table 7: 82..100) instead of cliffing.
std::vector<std::string> with_base_modules(std::vector<std::string> specific) {
    static const std::vector<std::string> kBase = {
        "lumi-stack/23.03",       "craype-x86-trento",     "craype-accel-amd-gfx90a",
        "libfabric/1.15.2.0",     "craype-network-ofi",    "perftools-base/23.03.0",
        "xpmem/2.5.2-2.4_3.30",   "cray-dsmml/0.2.2",      "cray-libsci/23.02.1.1",
        "lumi-tools/23.03",       "init-lumi/0.2",
    };
    specific.insert(specific.end(), kBase.begin(), kBase.end());
    return specific;
}

std::vector<std::string> comments_for(const std::vector<std::string>& provenances) {
    std::vector<std::string> out;
    out.reserve(provenances.size());
    for (const auto& p : provenances) out.push_back(compiler_comment_for(p));
    return out;
}

}  // namespace

// --- python package -> mapped .so path --------------------------------------

std::string package_map_path(const std::string& interpreter, const std::string& package) {
    // interpreter: "python3.10" etc.
    static const std::map<std::string, std::string> kSitePackages = {
        {"numpy", "numpy/core/_multiarray_umath"},
        {"pandas", "pandas/_libs/lib"},
        {"scipy", "scipy/linalg/_fblas"},
        {"mpi4py", "mpi4py/MPI"},
    };
    // Stdlib modules whose extension has no leading underscore.
    static const std::map<std::string, bool> kNoUnderscore = {
        {"math", true},      {"cmath", true},   {"array", true},  {"select", true},
        {"fcntl", true},     {"grp", true},     {"mmap", true},   {"binascii", true},
        {"unicodedata", true}, {"zlib", true},
    };
    const std::string version = interpreter.substr(6);  // "3.10"
    const std::string base = "/usr/lib64/" + interpreter;
    auto site = kSitePackages.find(package);
    if (site != kSitePackages.end()) {
        return base + "/site-packages/" + site->second + ".cpython-" + version + "-x86_64-linux-gnu.so";
    }
    const bool bare = kNoUnderscore.find(package) != kNoUnderscore.end();
    return base + "/lib-dynload/" + (bare ? "" : "_") + package + ".cpython-" + version +
           "-x86_64-linux-gnu.so";
}

std::string library_path_for_tag(const std::string& tag) {
    auto it = tag_paths().find(tag);
    util::require(it != tag_paths().end(), "unknown library tag: " + tag);
    return it->second;
}

std::string compiler_comment_for(const std::string& provenance) {
    auto it = compiler_comments().find(provenance);
    util::require(it != compiler_comments().end(), "unknown compiler provenance: " + provenance);
    return it->second;
}

namespace {

// --- system executable specs (Table 3) --------------------------------------

std::vector<SystemExecSpec> system_exec_specs() {
    const std::string siren_so = library_path_for_tag("siren");

    std::vector<SystemExecSpec> out;

    {
        SystemExecSpec srun;
        srun.path = "/usr/bin/srun";
        srun.users = {"user_1", "user_2", "user_4", "user_5", "user_7", "user_8",
                      "user_9", "user_10", "user_11", "user_12"};
        srun.user_minimums = {{"user_12", 2}, {"user_9", 4}, {"user_7", 3}, {"user_5", 40}};
        srun.processes = 4564;
        srun.jobs = 1642;
        srun.object_variants = {
            {"", 0, {kLibc, "/usr/lib64/slurm/libslurmfull.so", "/opt/cray/pe/pmi/6.1.12/lib/libpmi.so.0", siren_so}},
            {"user_4", 800, {kLibc, "/usr/lib64/slurm/libslurmfull.so", "/opt/cray/pe/pmi/6.1.8/lib/libpmi.so.0", siren_so}},
            {"user_2", 300, {kLibc, "/usr/lib64/slurm/libslurmfull.so", "/opt/cray/libfabric/1.15.2/lib64/libfabric.so.1", siren_so}},
        };
        out.push_back(std::move(srun));
    }
    {
        SystemExecSpec bash;
        bash.path = "/usr/bin/bash";
        bash.users = {"user_1", "user_2", "user_4", "user_7", "user_8",
                      "user_9", "user_10", "user_11"};
        bash.user_minimums = {{"user_11", 700}, {"user_8", 200}, {"user_9", 2}, {"user_7", 5}};
        bash.processes = 161418;
        bash.jobs = 13105;
        // Table 4: the three bash shared-object sets (libtinfo / libm
        // deviations caused by user environments).
        bash.object_variants = {
            {"", 0, {"/lib64/libtinfo.so.6", kLibc, siren_so}},
            {"user_11", 460, {"/appl/spack/v018/linux-sles15/libtinfo.so.6", kLibc, siren_so}},
            {"user_8", 54, {"/appl/local/SW/ncurses/6.4/lib/libtinfo.so.6", "/lib64/libm.so.6", kLibc, siren_so}},
        };
        out.push_back(std::move(bash));
    }
    {
        SystemExecSpec lua;
        lua.path = "/usr/bin/lua5.3";
        lua.users = {"user_1", "user_2", "user_3", "user_4", "user_5", "user_8",
                     "user_10", "user_11"};
        lua.user_minimums = {{"user_3", 4}, {"user_5", 30}};
        lua.processes = 18448;
        lua.jobs = 882;
        lua.object_variants = {
            {"", 0, {"/usr/lib64/liblua5.3.so.5", kLibc, "/lib64/libm.so.6", siren_so}},
            {"user_2", 500, {"/usr/lib64/liblua5.3.so.5", kLibc, "/lib64/libm.so.6", "/usr/lib64/libreadline.so.7", siren_so}},
        };
        out.push_back(std::move(lua));
    }

    auto simple = [&](std::string path, std::vector<std::string> users,
                      std::uint64_t processes, std::uint64_t jobs,
                      std::vector<std::string> objects) {
        SystemExecSpec s;
        s.path = std::move(path);
        s.users = std::move(users);
        s.processes = processes;
        s.jobs = jobs;
        objects.push_back(siren_so);
        s.object_variants = {{"", 0, std::move(objects)}};
        out.push_back(std::move(s));
    };

    simple("/usr/bin/rm", {"user_1", "user_2", "user_4", "user_8", "user_10", "user_11"},
           544025, 12182, {kLibc});
    simple("/usr/bin/cat", {"user_1", "user_2", "user_4", "user_8", "user_10", "user_11"},
           29003, 9774, {kLibc});
    simple("/usr/bin/uname", {"user_1", "user_2", "user_4", "user_8", "user_10"},
           28053, 1182, {kLibc});
    simple("/usr/bin/ls", {"user_1", "user_2", "user_4", "user_10", "user_11"},
           9057, 1130, {kLibc, "/lib64/libcap.so.2"});
    simple("/usr/bin/mkdir", {"user_1", "user_2", "user_4", "user_10"},
           547089, 8863, {kLibc});
    simple("/usr/bin/grep", {"user_1", "user_2", "user_4", "user_8"},
           9268, 1115, {kLibc, "/usr/lib64/libpcre.so.1"});
    simple("/usr/bin/cp", {"user_1", "user_2", "user_4", "user_11"},
           11655, 1019, {kLibc, "/lib64/libacl.so.1"});

    return out;
}

std::vector<std::string> other_exec_names() {
    return {
        "sed",  "awk",      "tar",     "tail",    "head",   "sort",   "find",    "xargs",
        "chmod", "chown",   "touch",   "date",    "env",    "id",     "hostname", "sleep",
        "tee",  "wc",       "tr",      "cut",     "dirname", "basename", "readlink", "du",
        "df",   "ps",       "sync",    "ln",      "mv",     "stat",   "truncate", "mktemp",
        "realpath", "seq",  "printf",  "expr",    "numfmt", "od",     "split",   "join",
        "comm", "uniq",     "paste",   "fold",    "fmt",    "pr",     "nl",      "tac",
        "rev",  "shuf",     "timeout", "nice",    "ionice", "nohup",  "setsid",  "flock",
        "logger", "getent", "locale",  "iconv",   "file",   "which",  "whereis", "man",
        "less", "more",     "vi",      "nano",    "diff",   "cmp",    "patch",   "make",
        "m4",   "bison",    "flex",    "ar",      "nm",     "objdump", "strip",  "ranlib",
        "ldd",  "ldconfig", "pkg-config", "install", "rsync", "scp",  "ssh",     "curl",
        "wget", "git",      "svn",     "hg",      "python-config", "perl", "ruby", "tclsh",
        "lua",  "node",     "sqlite3", "bc",      "dc",     "units",  "cal",     "factor",
        "yes",  "true",     "false",   "test",    "expand", "unexpand",
    };
}

// --- user software specs (Table 5 / 6, Figures 2/4/5) -----------------------

std::vector<UserSoftwareSpec> software_specs() {
    std::vector<UserSoftwareSpec> out;

    // LAMMPS: 2 users, 226 procs, 5 variants (3x GCC [SUSE], 2x LLD [AMD]).
    {
        UserSoftwareSpec s;
        s.label = "LAMMPS";
        s.lineage = "lammps";
        s.path_pattern = "/users/{user}/lammps/build_{i}/bin/lmp";
        s.groups = {{3, comments_for({"GCC [SUSE]"})},
                    {2, comments_for({"LLD [AMD]"})}};
        s.allocations = {
            {"user_2", 222, {{0, 101}, {1, 101}, {3, 20}}},
            {"user_3", 2, {{2, 2}, {4, 2}}},
        };
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
             "numa", "drm", "amdgpu-drm", "libsci-cray", "rocm-blas", "rocsolver-rocm",
             "rocsparse-rocm", "fft-cray", "rocm-fft", "rocfft-rocm-fft", "MIOpen-rocm",
             "rocm-torch", "numa-rocm-torch", "torch-tykky", "numa-torch-tykky"});
        s.modules = with_base_modules({"PrgEnv-gnu/8.4.0", "gcc/12.2.0", "craype/2.7.20",
                                       "cray-mpich/8.1.25", "rocm/5.2.3", "lumi-tykky/1.2"});
        s.module_jitter = 2;
        out.push_back(std::move(s));
    }

    // GROMACS: one shared project-directory executable, 2 users.
    {
        UserSoftwareSpec s;
        s.label = "GROMACS";
        s.lineage = "gromacs";
        s.path_pattern = "/projappl/project_465000111/gromacs-2023.1/bin/gmx_mpi";
        s.groups = {{1, comments_for({"LLD [AMD]"})}};
        s.allocations = {
            {"user_8", 214, {{0, 2103}}},
            {"user_7", 1, {{0, 1}}},
        };
        s.objects = objects_for_tags({"siren", "pthread", "cray", "quadmath-cray",
                                      "fabric-cray", "pmi-cray", "rocm", "numa", "drm",
                                      "amdgpu-drm", "fortran", "gromacs", "boost"});
        s.modules = with_base_modules({"PrgEnv-amd/8.4.0", "rocm/5.2.3", "craype/2.7.20",
                                       "cray-mpich/8.1.25", "gromacs/2023.1"});
        out.push_back(std::move(s));
    }

    // miniconda: user-dir Python interpreter => counts as *user* executable.
    {
        UserSoftwareSpec s;
        s.label = "miniconda";
        s.lineage = "miniconda";
        s.path_pattern = "/users/{user}/miniconda3/envs/work_{i}/bin/python3.9";
        s.groups = {{4, comments_for({"GCC [Red Hat]", "GCC [conda]"})},
                    {1, comments_for({"GCC [Red Hat]", "rustc"})}};
        // Wide version spacing: adjacent drift steps can leave a small
        // binary byte-identical, which would merge two FILE_H values.
        s.variant_versions = {0, 5, 10, 15, 20};
        s.allocations = {
            {"user_2", 673, {{0, 1246}, {1, 1246}, {2, 1246}, {3, 1245}, {4, 35}}},
        };
        s.objects = objects_for_tags({"siren", "pthread"});
        s.modules = with_base_modules({"lumi-container-wrapper/1.0"});
        out.push_back(std::move(s));
    }

    // janko: spack-built code of user_11.
    {
        UserSoftwareSpec s;
        s.label = "janko";
        s.lineage = "janko";
        s.path_pattern = "/users/{user}/janko/bin/janko_v{i}";
        s.groups = {{2, comments_for({"GCC [SUSE]", "GCC [HPE]"})}};
        s.allocations = {{"user_11", 138, {{0, 69}, {1, 69}}}};
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray",
             "fortran", "libsci-cray", "numa-spack", "spack", "blas-spack",
             "rocsolver-spack", "rocsparse-spack", "drm-spack", "amdgpu-drm-spack"});
        s.modules = with_base_modules({"PrgEnv-gnu/8.4.0", "gcc/12.2.0", "spack/23.03"});
        s.module_jitter = 2;
        out.push_back(std::move(s));
    }

    // icon: 175 variants in three compiler groups; the similarity-search
    // target of Table 7.
    {
        UserSoftwareSpec s;
        s.label = "icon";
        s.lineage = "icon";
        s.path_pattern = "/users/{user}/icon-model/build_{i}/bin/icon";
        s.groups = {{130, comments_for({"GCC [SUSE]"})},
                    {32, comments_for({"GCC [SUSE]", "clang [Cray]"})},
                    {13, comments_for({"GCC [SUSE]", "clang [Cray]", "clang [AMD]"})}};
        // Even lineage versions (0,2,4,...): leaves the odd versions free
        // for the UNKNOWN a.out binaries, so only the deliberate twin
        // (version 0) is byte-identical to an icon build.
        for (std::size_t i = 0; i < 175; ++i) s.variant_versions.push_back(2 * i);
        UserAlloc alloc;
        alloc.user = "user_4";
        alloc.jobs = 64;
        // 563 processes over the 130 GCC-only variants ...
        for (std::size_t i = 0; i < 130; ++i) {
            alloc.runs.push_back({i, i < 43 ? 5u : 4u});
        }
        // ... 44 over the +Cray variants ...
        for (std::size_t i = 130; i < 162; ++i) {
            alloc.runs.push_back({i, i < 142 ? 2u : 1u});
        }
        // ... 18 over the +AMD variants.
        for (std::size_t i = 162; i < 175; ++i) {
            alloc.runs.push_back({i, i < 167 ? 2u : 1u});
        }
        s.allocations = {std::move(alloc)};
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
             "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "craymath-cray",
             "netcdf-cray", "amdgpu-cray", "openacc-cray", "climatedt", "climatedt-yaml",
             "hdf5-cray"});
        // Some builds are CPU-only: a deviating (smaller) object set, the
        // source of the OB_H=57 rows in Table 7.
        s.object_variants = {
            {"", 120, objects_for_tags({"siren", "pthread", "cray", "quadmath-cray",
                                        "fabric-cray", "pmi-cray", "fortran", "libsci-cray",
                                        "craymath-cray", "netcdf-cray", "climatedt",
                                        "climatedt-yaml", "hdf5-cray"})},
        };
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1", "craype/2.7.20",
                                       "cray-mpich/8.1.25", "cray-hdf5/1.12.2",
                                       "cray-netcdf/4.9.0", "lumi-climatedt/1.3"});
        s.module_jitter = 4;
        out.push_back(std::move(s));
    }

    // amber.
    {
        UserSoftwareSpec s;
        s.label = "amber";
        s.lineage = "amber";
        s.path_pattern = "/users/{user}/amber22/bin/pmemd_v{i}";
        s.groups = {{2, comments_for({"GCC [SUSE]", "clang [AMD]"})}};
        s.allocations = {{"user_10", 27, {{0, 445}, {1, 444}}}};
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
             "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "rocm-blas",
             "rocsolver-rocm", "rocsparse-rocm", "fft-cray", "rocm-fft", "rocfft-rocm-fft",
             "netcdf-cray", "cuda-amber", "amber", "netcdf-parallel-cray",
             "hdf5-parallel-cray", "hdf5-fortran-parallel-cray"});
        s.modules = with_base_modules({"PrgEnv-gnu/8.4.0", "rocm/5.2.3", "amber/22"});
        out.push_back(std::move(s));
    }

    // gzip: a user-installed compression utility; nearly static.
    {
        UserSoftwareSpec s;
        s.label = "gzip";
        s.lineage = "gzip";
        s.path_pattern = "/users/{user}/tools/bin/gzip";
        s.groups = {{1, comments_for({"LLD [AMD]"})}};
        s.allocations = {{"user_2", 18, {{0, 19}}}};
        s.objects = objects_for_tags({"siren"});
        s.modules = {};
        s.code_blocks = 10;
        out.push_back(std::move(s));
    }

    // UNKNOWN: icon-lineage binaries under nondescript a.out paths. The
    // regex labeler cannot name them; the Table-7 similarity search can.
    {
        UserSoftwareSpec s;
        s.label = "icon";  // ground truth (evaluation only)
        s.lineage = "icon";
        s.version_base = 0;
        s.path_pattern = "/scratch/project_465000531/run_{i}/a.out";
        s.groups = {{7, comments_for({"GCC [SUSE]"})}};
        // Variant 0 is byte-identical to icon build_0 (same lineage,
        // version 0): the 100-similarity row of Table 7. The others sit at
        // increasing drift distances on odd versions no icon build uses,
        // so exact-hash matching finds only the twin.
        s.variant_versions = {0, 3, 5, 9, 15, 23, 37};
        s.allocations = {{"user_4", 3, {{0, 5}, {1, 2}, {2, 3}, {3, 2}, {4, 2}, {5, 2}, {6, 1}}}};
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
             "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "craymath-cray",
             "netcdf-cray", "amdgpu-cray", "openacc-cray", "climatedt", "climatedt-yaml",
             "hdf5-cray"});
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1", "craype/2.7.20",
                                       "cray-mpich/8.1.25", "cray-hdf5/1.12.2",
                                       "cray-netcdf/4.9.0", "lumi-climatedt/1.3"});
        s.module_jitter = 2;
        out.push_back(std::move(s));
    }

    // alexandria.
    {
        UserSoftwareSpec s;
        s.label = "alexandria";
        s.lineage = "alexandria";
        s.path_pattern = "/users/{user}/alexandria/bin/alexandria";
        s.groups = {{1, comments_for({"GCC [SUSE]"})}};
        s.allocations = {{"user_9", 2, {{0, 4}}}};
        s.objects = objects_for_tags({"siren", "pthread", "cray", "quadmath-cray",
                                      "fabric-cray", "pmi-cray", "fortran", "craymath-cray"});
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1"});
        out.push_back(std::move(s));
    }

    // RadRad.
    {
        UserSoftwareSpec s;
        s.label = "RadRad";
        s.lineage = "radrad";
        s.path_pattern = "/users/{user}/RadRad/RadRad_v{i}";
        s.groups = {{2, comments_for({"GCC [SUSE]", "clang [Cray]"})}};
        s.allocations = {{"user_6", 2, {{0, 1}, {1, 1}}}};
        s.objects = objects_for_tags(
            {"siren", "pthread", "cray", "quadmath-cray", "rocm", "numa", "drm",
             "amdgpu-drm", "fortran", "libsci-cray", "rocm-blas", "rocsolver-rocm",
             "rocsparse-rocm", "craymath-cray", "amdgpu-cray", "openacc-cray"});
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1", "rocm/5.2.3"});
        out.push_back(std::move(s));
    }

    return out;
}

// --- python specs (Table 8, Figure 3) ----------------------------------------

std::vector<PythonSpec> python_specs() {
    const std::string siren_so = library_path_for_tag("siren");

    auto interp_objects = [&](const std::string& name) {
        return std::vector<std::string>{
            "/usr/lib64/lib" + name + ".so.1.0",
            kLibc,
            "/lib64/libpthread.so.0",
            siren_so,
        };
    };

    std::vector<PythonSpec> out;
    {
        PythonSpec p;
        p.interpreter_path = "/usr/bin/python3.6";
        p.objects = interp_objects("python3.6m");
        p.groups = {{"user_4", 6, 14884, 28,
                     {"heapq", "struct", "math", "posixsubprocess", "select", "mpi4py",
                      "numpy", "pickle", "socket", "json", "random", "queue",
                      "multiprocessing", "ctypes", "fcntl"}}};
        out.push_back(std::move(p));
    }
    {
        PythonSpec p;
        p.interpreter_path = "/usr/bin/python3.11";
        p.objects = interp_objects("python3.11");
        p.groups = {{"user_4", 5, 8402, 8,
                     {"heapq", "struct", "math", "posixsubprocess", "select", "numpy",
                      "pandas", "scipy", "csv", "datetime", "decimal", "json", "hashlib",
                      "blake2", "sha512", "sha3", "zlib", "bz2", "lzma", "zoneinfo"}}};
        out.push_back(std::move(p));
    }
    {
        PythonSpec p;
        p.interpreter_path = "/usr/bin/python3.10";
        p.objects = interp_objects("python3.10");
        p.groups = {
            {"user_5", 26, 29, 29,
             {"heapq", "struct", "math", "select", "posixsubprocess", "array", "binascii",
              "bisect", "cmath", "ctypes", "grp", "mmap", "opcode", "queue", "random",
              "unicodedata", "socket", "hashlib", "blake2"}},
            {"user_12", 1, 1, 1, {"heapq", "struct", "json", "datetime", "csv"}},
        };
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace

CampaignSpec lumi_campaign() {
    CampaignSpec spec;
    spec.users = {
        // name, uid, jobs, system processes, private long-tail exec count
        {"user_1", 1001, 11782, 1731077, 42},
        {"user_2", 1002, 930, 48095, 16},
        {"user_3", 1003, 2, 6, 1},
        {"user_4", 1004, 205, 528205, 16},
        {"user_5", 1005, 47, 94, 1},
        {"user_6", 1006, 2, 0, 0},
        {"user_7", 1007, 1, 17, 1},
        {"user_8", 1008, 216, 3039, 8},
        {"user_9", 1009, 4, 8, 1},
        {"user_10", 1010, 28, 3336, 8},
        {"user_11", 1011, 230, 3980, 8},
        {"user_12", 1012, 1, 2, 0},
    };
    spec.system_execs = system_exec_specs();
    spec.other_exec_names = other_exec_names();
    spec.software = software_specs();
    spec.python = python_specs();
    return spec;
}

CampaignSpec mini_campaign() {
    CampaignSpec spec;
    spec.users = {
        {"user_1", 1001, 12, 120, 2},
        {"user_2", 1002, 6, 40, 1},
        {"user_4", 1004, 5, 30, 1},
    };

    const std::string siren_so = library_path_for_tag("siren");
    {
        SystemExecSpec bash;
        bash.path = "/usr/bin/bash";
        bash.users = {"user_1", "user_2", "user_4"};
        bash.processes = 90;
        bash.jobs = 20;
        bash.object_variants = {
            {"", 0, {"/lib64/libtinfo.so.6", kLibc, siren_so}},
            {"user_2", 10, {"/appl/spack/v018/linux-sles15/libtinfo.so.6", kLibc, siren_so}},
        };
        spec.system_execs.push_back(std::move(bash));
    }
    {
        SystemExecSpec srun;
        srun.path = "/usr/bin/srun";
        srun.users = {"user_1", "user_2", "user_4"};
        srun.processes = 40;
        srun.jobs = 15;
        srun.object_variants = {{"", 0, {kLibc, "/usr/lib64/slurm/libslurmfull.so", siren_so}}};
        spec.system_execs.push_back(std::move(srun));
    }
    spec.other_exec_names = {"sed", "awk", "tar", "sort"};

    {
        UserSoftwareSpec s;
        s.label = "icon";
        s.lineage = "icon";
        s.path_pattern = "/users/{user}/icon-model/build_{i}/bin/icon";
        s.groups = {{6, comments_for({"GCC [SUSE]"})}};
        s.variant_versions = {0, 2, 4, 6, 8, 10};
        s.allocations = {{"user_4", 4, {{0, 4}, {1, 2}, {2, 2}, {3, 1}, {4, 1}, {5, 1}}}};
        s.objects = objects_for_tags({"siren", "pthread", "cray", "fortran", "climatedt"});
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1"});
        s.module_jitter = 2;
        s.code_blocks = 8;
        spec.software.push_back(std::move(s));
    }
    {
        UserSoftwareSpec s;
        s.label = "icon";  // ground truth: an a.out copy of icon build_0
        s.lineage = "icon";
        s.path_pattern = "/scratch/project_1/run_{i}/a.out";
        s.groups = {{2, comments_for({"GCC [SUSE]"})}};
        s.variant_versions = {0, 7};
        s.allocations = {{"user_4", 1, {{0, 2}, {1, 1}}}};
        s.objects = objects_for_tags({"siren", "pthread", "cray", "fortran", "climatedt"});
        s.modules = with_base_modules({"PrgEnv-cray/8.4.0", "cce/15.0.1"});
        s.code_blocks = 8;
        spec.software.push_back(std::move(s));
    }

    {
        PythonSpec p;
        p.interpreter_path = "/usr/bin/python3.10";
        p.objects = {"/usr/lib64/libpython3.10.so.1.0", kLibc, siren_so};
        p.groups = {{"user_2", 2, 6, 3, {"heapq", "struct", "numpy"}}};
        spec.python.push_back(std::move(p));
    }

    spec.nodes = 4;
    return spec;
}

}  // namespace siren::workload
