#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace siren::workload {

/// Recipe for one synthetic application executable.
///
/// The generator has no real user binaries (LUMI's are proprietary), so it
/// synthesizes ELF images whose *relationships* match real software
/// evolution: executables of the same `lineage` share most content;
/// `version` counts drift steps away from the lineage origin, and each step
/// rewrites a small, deterministic fraction of code blocks, printable
/// strings and symbols. Two variants k steps apart therefore have fuzzy
/// similarity decaying with k — fastest for raw bytes (FI_H), slower for
/// strings (ST_H), slowest for symbols (SY_H), matching how recompilation
/// and minor code changes affect real binaries (paper Table 7's pattern).
struct BinaryRecipe {
    std::string lineage;                  ///< seed key: same lineage = same software
    std::size_t version = 0;              ///< drift steps from the lineage origin
    std::vector<std::string> compilers;   ///< .comment identification strings
    std::vector<std::string> needed;      ///< DT_NEEDED shared library names

    std::size_t code_blocks = 24;         ///< 4 KiB blocks of .text
    std::size_t string_count = 120;       ///< printable strings in .rodata
    std::size_t symbol_count = 80;        ///< global symbols in .symtab

    double code_mutation_rate = 0.03;     ///< per-step fraction of blocks rewritten
    double string_mutation_rate = 0.003;  ///< per-step fraction of strings rewritten
    double symbol_mutation_rate = 0.0012; ///< per-step fraction of symbols renamed

    std::string version_tag;              ///< human-readable version in strings
};

/// Deterministically synthesize the ELF image for a recipe. Same recipe,
/// same bytes — two recipes differing only in `version` share all content
/// not touched by the intervening drift steps.
std::vector<std::uint8_t> synthesize(const BinaryRecipe& recipe);

/// Synthesize a small "system utility" image (bash, rm, ...): single
/// version, distro compiler comment, compact size.
std::vector<std::uint8_t> synthesize_system_tool(const std::string& name);

/// Synthesize Python script text: import lines for `packages` plus a
/// deterministic body derived from (user, index).
std::string synthesize_python_script(const std::string& user, std::size_t index,
                                     const std::vector<std::string>& packages);

/// Synthesize the runtime counter trace one run of this recipe's binary
/// would emit (see sim::synthesize_trace): same lineage = same phase
/// structure, version drift nudges it ~1% per step, `run_seed` varies
/// only the measurement noise. This is the behavioral twin of
/// synthesize() — content comes from the ELF image, behavior from here.
std::vector<double> behavior_trace(const BinaryRecipe& recipe, std::uint64_t run_seed,
                                   std::size_t samples = 256);

}  // namespace siren::workload
