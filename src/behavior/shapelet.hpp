#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fuzzy/ctph.hpp"

namespace siren::behavior {

/// Behavioral fingerprints: quantized shapelet digests of runtime counter
/// traces (SAX-style — Lin et al.'s Symbolic Aggregate approXimation).
///
/// A trace is a windowed time series of one runtime counter (instructions,
/// FLOPs, power, network bytes — anything sampled at a fixed cadence while
/// the job runs). The digest pipeline:
///
///   1. z-normalize the whole trace (mean 0, stddev 1) — recognition must
///      not depend on absolute counter magnitude, only on *shape*: the same
///      solver on a faster node traces the same curve, scaled.
///   2. Piecewise-aggregate into windows of `w` samples (window means).
///   3. Quantize each window mean into a 16-symbol alphabet ('A'..'P')
///      using equiprobable N(0,1) breakpoints.
///
/// The resulting symbol string is packaged as a fuzzy::FuzzyDigest —
/// digest1 at window w, digest2 at window 2w, exactly the two-resolution
/// scheme spamsum uses — so the entire existing compare stack
/// (eliminate_sequences, Bloom 7-gram gating, bounded Myers, the SIMD
/// bucket scan) measures behavioral similarity without a single new
/// comparison routine.
///
/// Block-size labeling: the digest's block_size is `w * kBlockScale`
/// (kBlockScale = 64). Two properties follow from fuzzy::compare's
/// block-size rules (equal or factor-2 only, small-block score caps):
///
///   - w and 2w traces stay comparable (64w vs 128w is exactly factor 2),
///     and block_size >= 64 always clears the small-block score cap.
///   - Behavior digests can never score against content digests: content
///     block sizes are 3 * 2^k, behavior block sizes are 64 * 2^j, and
///     3 * 2^a = 64 * 2^b (or twice it) has no solution. The two channels
///     share one SimilarityIndex implementation yet cannot cross-match.

/// Symbols in the quantization alphabet. 16 is the selectivity knob for
/// the whole compare stack: a nonzero fuzzy::compare score requires a
/// common 7-gram, and with 16 equiprobable symbols two *unrelated* traces
/// almost never share seven consecutive quantile bins — so the Bloom
/// prefilter rejects cross-family candidates cheaply and spurious
/// behavior matches stay rare. Two runs of the *same* workload differ
/// only by noise-driven single-bin flips, which the Myers edit distance
/// absorbs (and digest2's coarser windows average away).
inline constexpr std::size_t kAlphabet = 16;

/// Target symbols per digest part; matches fuzzy::kSpamsumLength so the
/// compare stack's length assumptions hold.
inline constexpr std::size_t kTargetSymbols = fuzzy::kSpamsumLength;

/// block_size = window * kBlockScale; see the header comment.
inline constexpr std::uint64_t kBlockScale = 64;

/// Minimum samples for a meaningful digest: below one 7-gram of windows
/// the compare stack can only ever report 0 or exact-match 100.
inline constexpr std::size_t kMinTraceSamples = 8;

/// True when `digest` carries the behavior-channel block-size labeling
/// (power of two, >= kBlockScale). Content digests (3 * 2^k) never do.
bool is_behavior_digest(const fuzzy::FuzzyDigest& digest);

/// Digest one counter trace. Deterministic: the same samples always yield
/// the same digest. Throws util::Error when `samples` has fewer than
/// kMinTraceSamples entries.
fuzzy::FuzzyDigest shapelet_digest(std::span<const double> samples);

/// shapelet_digest(...).to_string() — the canonical `bs:d1:d2` form that
/// rides the wire as TS_H content.
std::string shapelet_digest_string(std::span<const double> samples);

/// Parse a whitespace-separated list of counter samples ("12.5 13 11.75
/// ...") into a trace — the text form tools accept on stdin and the CI
/// smoke pipes around. Throws util::ParseError on non-numeric tokens.
std::vector<double> parse_trace(std::string_view text);

}  // namespace siren::behavior
