#include "behavior/shapelet.hpp"

#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace siren::behavior {

namespace {

/// Equiprobable N(0,1) breakpoints for a 16-symbol alphabet: each symbol
/// covers 1/16 of the probability mass of a standard normal, so a
/// well-normalized trace spends comparable time in every bin and the
/// digest's symbol distribution stays flat (maximum 7-gram entropy).
constexpr double kBreakpoints[kAlphabet - 1] = {
    -1.5341, -1.1503, -0.8871, -0.6745, -0.4888, -0.3186, -0.1573, 0.0,
    0.1573,  0.3186,  0.4888,  0.6745,  0.8871,  1.1503,  1.5341,
};

char quantize(double z) {
    std::size_t idx = kAlphabet - 1;
    for (std::size_t i = 0; i < kAlphabet - 1; ++i) {
        if (z < kBreakpoints[i]) {
            idx = i;
            break;
        }
    }
    return static_cast<char>('A' + idx);
}

/// Piecewise-aggregate `samples` into means of `window` samples, quantize
/// each against the trace-global (mean, stddev). A partial tail window is
/// dropped: including it would make the last symbol depend on how many
/// samples straggled in, and determinism across slightly-ragged trace
/// lengths matters more than the tail's fraction of a symbol.
std::string sax_word(std::span<const double> samples, double mean, double inv_stddev,
                     std::size_t window) {
    const std::size_t windows = samples.size() / window;
    std::string word;
    word.reserve(windows);
    for (std::size_t i = 0; i < windows; ++i) {
        double sum = 0.0;
        for (std::size_t j = 0; j < window; ++j) sum += samples[i * window + j];
        const double z = (sum / static_cast<double>(window) - mean) * inv_stddev;
        word += quantize(z);
    }
    return word;
}

}  // namespace

bool is_behavior_digest(const fuzzy::FuzzyDigest& digest) {
    const std::uint64_t bs = digest.block_size;
    return bs >= kBlockScale && (bs & (bs - 1)) == 0;
}

fuzzy::FuzzyDigest shapelet_digest(std::span<const double> samples) {
    util::require(samples.size() >= kMinTraceSamples,
                  "shapelet_digest: trace too short (" + std::to_string(samples.size()) +
                      " samples, need " + std::to_string(kMinTraceSamples) + ")");

    double mean = 0.0;
    for (const double s : samples) mean += s;
    mean /= static_cast<double>(samples.size());
    double var = 0.0;
    for (const double s : samples) var += (s - mean) * (s - mean);
    var /= static_cast<double>(samples.size());
    // A flat trace (idle counter) has no shape: every window lands on the
    // median symbol, eliminate_sequences collapses the run, and the digest
    // matches only other flat traces. inv_stddev = 0 encodes exactly that.
    const double stddev = std::sqrt(var);
    const double inv_stddev = stddev > 1e-12 ? 1.0 / stddev : 0.0;

    // Smallest power-of-two window whose coarse-resolution word still fits
    // kTargetSymbols — the spamsum block-size ladder, transposed to time:
    // traces of similar duration land on the same rung, traces of double
    // duration land one rung up, and digest2 (computed at 2w) is what lets
    // adjacent rungs still score against each other.
    std::size_t window = 1;
    while (samples.size() / window > kTargetSymbols) window *= 2;

    fuzzy::FuzzyDigest digest;
    digest.block_size = static_cast<std::uint64_t>(window) * kBlockScale;
    digest.digest1 = sax_word(samples, mean, inv_stddev, window);
    digest.digest2 = sax_word(samples, mean, inv_stddev, window * 2);
    return digest;
}

std::string shapelet_digest_string(std::span<const double> samples) {
    return shapelet_digest(samples).to_string();
}

std::vector<double> parse_trace(std::string_view text) {
    std::vector<double> samples;
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                     text[pos] == '\n' || text[pos] == '\r' ||
                                     text[pos] == ',')) {
            ++pos;
        }
        if (pos >= text.size()) break;
        std::size_t end = pos;
        while (end < text.size() && text[end] != ' ' && text[end] != '\t' &&
               text[end] != '\n' && text[end] != '\r' && text[end] != ',') {
            ++end;
        }
        const std::string token(text.substr(pos, end - pos));
        char* parsed_end = nullptr;
        const double value = std::strtod(token.c_str(), &parsed_end);
        if (parsed_end == token.c_str() || *parsed_end != '\0') {
            throw util::ParseError("trace sample is not a number: " + token);
        }
        samples.push_back(value);
        pos = end;
    }
    return samples;
}

}  // namespace siren::behavior
