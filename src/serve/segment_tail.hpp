#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "storage/segment.hpp"

namespace siren::serve {

/// Accounting for one SegmentTail across its lifetime.
struct TailStats {
    std::uint64_t records = 0;       ///< complete, checksummed records delivered
    std::uint64_t bytes = 0;         ///< payload bytes delivered
    std::uint64_t crc_failures = 0;  ///< complete records dropped on checksum mismatch
    std::uint64_t bad_segments = 0;  ///< files skipped forever: bad magic/version/framing
    std::uint64_t unknown_kinds = 0; ///< valid records of a kind this version cannot parse
    std::uint64_t files_seen = 0;    ///< distinct segment files discovered
    std::uint64_t files_dropped = 0; ///< tracked files that vanished (compaction)
    std::uint64_t stalls = 0;        ///< newer files deferred behind an undrained older one
    std::uint64_t polls = 0;
};

/// Incremental follower of a segment directory — the live counterpart of
/// storage::replay_directory. Where replay reads everything once, the tail
/// keeps a per-file byte offset and each poll() delivers only records
/// appended past it, in the canonical (stream prefix, numeric sequence)
/// replay order. This is how the recognition service drinks from the ingest
/// daemon's WAL without restarts: the daemon appends, the tail follows.
///
/// A record is delivered only when its full frame (8-byte header + payload,
/// see docs/storage_format.md) is on disk; a partial frame at a file's tail
/// is indistinguishable from an append in flight, so the tail simply leaves
/// it for the next poll — if the writer crashed it stays a torn tail and is
/// never delivered, exactly like replay. Complete records failing their
/// CRC are skipped (bit rot; framing is intact). A file whose header or
/// framing is corrupt is marked bad and never consumed again.
///
/// Canonical order is enforced *across* files too: while an older file of a
/// stream still has (or may have) undelivered bytes — a pending header, a
/// torn frame, a transient read failure — newer files of that same stream
/// are deferred to a later poll rather than consumed around it. Without
/// this, a stall on file N would let file N+1's records apply first, an
/// order replay would never produce (and a divergence a checkpoint would
/// freeze). Terminally bad files don't defer their stream: they are
/// skipped, not pending. Streams are independent — a stall in one never
/// delays another sharing the directory.
///
/// The offsets map *is* the durable watermark: checkpoint it together with
/// the state built from the delivered records, and a restarted consumer
/// resumes from exactly the first unapplied record (see
/// RecognitionService's checkpoint format in docs/recognition_service.md).
///
/// Not thread-safe: one tail, one polling thread.
class SegmentTail {
public:
    /// basename -> offset of the first unconsumed byte. std::map keeps
    /// checkpoint serialization deterministic.
    using Offsets = std::map<std::string, std::uint64_t>;

    /// Offset value marking a file as bad (never consumed again); kept in
    /// the map so the verdict survives a checkpoint/restart cycle.
    static constexpr std::uint64_t kBadFile = ~0ull;

    explicit SegmentTail(std::string directory, Offsets start = {});

    /// Scan the directory and deliver up to `max_records` (0 = unlimited)
    /// newly completed records to `fn`; returns how many were delivered.
    /// A missing directory is an empty poll, not an error.
    std::size_t poll(const storage::RecordFn& fn, std::size_t max_records = 0);

    const Offsets& offsets() const { return offsets_; }
    const TailStats& stats() const { return stats_; }
    const std::string& directory() const { return directory_; }

    /// Basename of the segment file whose record is currently being
    /// delivered — valid only inside a poll() callback. Lets a consumer
    /// distinguish streams sharing one directory (the recognition service
    /// uses it to tell its own observe-WAL records from ingest records).
    const std::string& current_file() const { return current_file_; }

private:
    /// Consume completed records from one file starting at its stored
    /// offset; returns records delivered. Clears `drained` when the file
    /// was left with bytes that may still become deliverable records — the
    /// signal poll() uses to defer newer files of the same stream.
    std::size_t consume_file(const std::string& path, const std::string& name,
                             const storage::RecordFn& fn, std::size_t budget, bool& drained);

    std::string directory_;
    Offsets offsets_;
    TailStats stats_;
    std::string payload_;       ///< reused record buffer
    std::string current_file_;  ///< basename being consumed (delivery context)
};

}  // namespace siren::serve
