#include "serve/chaos.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <functional>
#include <iterator>
#include <memory>
#include <set>
#include <thread>
#include <utility>

#include "fuzzy/fuzzy.hpp"
#include "serve/serve.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fs = std::filesystem;

namespace siren::serve::chaos {

namespace {

using Clock = std::chrono::steady_clock;

ServeOptions fleet_service_options() {
    ServeOptions options;
    options.feed_poll = std::chrono::milliseconds(2);
    options.writer_idle = std::chrono::milliseconds(2);
    options.checkpoint_interval = std::chrono::milliseconds(0);
    return options;
}

/// Leader process: recognition service in WAL mode + its TCP face. The
/// replication source is deliberately NOT part of this node — it reads the
/// segment directory independently, so a leader kill-restart (fresh
/// segment sequence, checkpoint reload) happens under a live source
/// exactly as a daemon restart would under live followers.
struct LeaderNode {
    std::unique_ptr<RecognitionService> service;
    std::unique_ptr<QueryServer> server;

    void start(const std::string& segments_dir, const std::string& checkpoint) {
        auto options = fleet_service_options();
        options.segments_dir = segments_dir;
        options.replication.observe_wal = true;
        options.replication.wal_fsync = false;
        options.checkpoint_path = checkpoint;
        service = std::make_unique<RecognitionService>(std::move(options));
        server = std::make_unique<QueryServer>(*service);
    }

    void kill() {
        server.reset();
        service.reset();  // stop() writes the final checkpoint
    }
};

/// Follower process: shipping sink + read-only service + TCP face.
struct FollowerNode {
    std::unique_ptr<ReplicationFollower> ship;
    std::unique_ptr<RecognitionService> service;
    std::unique_ptr<QueryServer> server;

    void start(std::uint16_t source_port, const std::string& replica_dir,
               const std::string& checkpoint) {
        ReplicationFollowerOptions ship_options;
        ship_options.leader_port = source_port;
        ship_options.directory = replica_dir;
        ship_options.reconnect_backoff = std::chrono::milliseconds(10);
        ship_options.reconnect_backoff_cap = std::chrono::milliseconds(200);
        ship = std::make_unique<ReplicationFollower>(ship_options);
        auto options = fleet_service_options();
        options.segments_dir = replica_dir;
        options.replication.read_only = true;
        options.checkpoint_path = checkpoint;
        service = std::make_unique<RecognitionService>(std::move(options));
        server = std::make_unique<QueryServer>(*service);
    }

    void kill() {
        server.reset();
        service.reset();
        ship.reset();
    }
};

/// The fault menu: failpoints whose injected failures the fleet is
/// contractually able to absorb without losing acknowledged state —
/// connection faults retry, corrupt/short chunks re-request from the
/// watermark, feed-read errors retry next poll. (Faults that legally
/// *lose* un-acknowledged state, like WAL append failures falling back to
/// direct apply, are exercised by targeted unit tests instead: the
/// convergence invariant here demands byte-equal replicas.)
struct Fault {
    const char* name;
    const char* spec;
};

constexpr Fault kFaultMenu[] = {
    {"net.tcp.connect", "error(111)%3"},          // ECONNREFUSED every 3rd connect
    {"net.tcp.send", "short-write%5"},            // torn frame mid-stream
    {"net.tcp.send", "error(104)%7"},             // ECONNRESET
    {"replication.source.chunk", "delay(3000)%2"},// shipping stall
    {"replication.source.corrupt", "corrupt-byte%4"},  // follower must reject
    {"replication.sink.write", "error(28)%5"},    // ENOSPC on the replica disk
    {"serve.tail.read", "error(5)%3"},            // EIO reading the feed
    {"serve.publish.copy", "delay(3000)%2"},      // slow O(delta) registry copy
    {"serve.publish.copy", "error(5)%4"},         // publish aborted pre-copy; retried
    {"serve.publish.swap", "delay(1000)%3"},      // stall between copy and swap
    {"serve.publish.swap", "error(5)%5"},         // assembled snapshot dropped; retried
};

bool eventually(const std::function<bool()>& done, std::chrono::milliseconds limit) {
    const auto deadline = Clock::now() + limit;
    while (Clock::now() < deadline) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return done();
}

void set_failure(ChaosReport& report, std::string message) {
    if (report.failure.empty()) report.failure = std::move(message);
}

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options) {
    ChaosReport report;
    util::Rng rng(options.seed);
    const bool inject = options.use_failpoints && util::failpoint::compiled_in();
    if (inject) util::failpoint::clear();  // process-global: start pristine

    fs::create_directories(options.root);
    const auto leader_dir = options.root + "/leader";
    const auto leader_ckpt = options.root + "/leader.ckpt";

    std::set<std::string> armed_names;
    try {
        LeaderNode leader;
        leader.start(leader_dir, leader_ckpt);

        ReplicationSourceOptions source_options;
        source_options.segments_dir = leader_dir;
        source_options.poll = std::chrono::milliseconds(2);
        ReplicationSource source(source_options);

        std::vector<FollowerNode> followers(options.followers);
        std::vector<std::string> replica_dirs;
        std::vector<std::string> replica_ckpts;
        for (std::size_t i = 0; i < followers.size(); ++i) {
            replica_dirs.push_back(options.root + "/replica_" + std::to_string(i));
            replica_ckpts.push_back(options.root + "/replica_" + std::to_string(i) + ".ckpt");
            followers[i].start(source.port(), replica_dirs[i], replica_ckpts[i]);
        }

        // The client sees the whole fleet; rebuilt after every kill-restart
        // because restarted servers bind fresh ephemeral ports.
        auto make_client = [&] {
            std::vector<ReplicaEndpoint> endpoints;
            endpoints.push_back({"127.0.0.1", leader.server->port()});
            for (auto& f : followers) endpoints.push_back({"127.0.0.1", f.server->port()});
            ReplicaClientOptions client_options;
            client_options.timeout = options.client_timeout;
            client_options.retry_sweeps = 1;
            client_options.backoff_floor = std::chrono::milliseconds(10);
            client_options.backoff_cap = std::chrono::milliseconds(100);
            client_options.cooldown_floor = std::chrono::milliseconds(50);
            client_options.cooldown_cap = std::chrono::milliseconds(500);
            client_options.jitter_seed = rng.next() | 1;
            return std::make_unique<ReplicaClient>(std::move(endpoints), client_options);
        };
        auto client = make_client();

        // A fixed digest corpus: observes and identifies draw from it, so
        // reads have a chance to hit and family joins actually happen.
        std::vector<fuzzy::FuzzyDigest> corpus;
        for (int i = 0; i < 24; ++i) corpus.push_back(fuzzy::fuzzy_hash(rng.bytes(4096)));
        std::vector<fuzzy::FuzzyDigest> behavior_corpus;
        for (int i = 0; i < 8; ++i) behavior_corpus.push_back(fuzzy::fuzzy_hash(rng.bytes(4096)));

        // Snapshot versions restart from zero with each leader incarnation,
        // so the monotonicity audit below resets on a leader kill.
        std::uint64_t last_snapshot_version = 0;

        for (std::size_t op = 0; op < options.ops; ++op) {
            // Chaos event roughly every 6th op.
            if (rng.below(6) == 0) {
                const auto event = rng.below(12);
                if (event < 7 && inject) {
                    const auto& fault = kFaultMenu[rng.index(std::size(kFaultMenu))];
                    util::failpoint::activate(fault.name, fault.spec);
                    armed_names.insert(fault.name);
                    ++report.faults_armed;
                } else if (event < 9) {
                    if (inject) {
                        // Heal window: tally what landed before disarming.
                        for (const auto& c : util::failpoint::counters()) {
                            report.failpoint_fires += c.fires;
                        }
                        util::failpoint::clear();
                    }
                } else if (event < 11 && options.kill_restart && !followers.empty()) {
                    const auto victim = rng.index(followers.size());
                    followers[victim].kill();
                    followers[victim].start(source.port(), replica_dirs[victim],
                                            replica_ckpts[victim]);
                    ++report.kills_follower;
                    client = make_client();
                } else if (options.kill_restart) {
                    leader.kill();
                    leader.start(leader_dir, leader_ckpt);
                    ++report.kills_leader;
                    last_snapshot_version = 0;
                    client = make_client();
                }
            }

            const auto started = Clock::now();
            try {
                const auto kind = rng.below(10);
                const auto& digest = corpus[rng.index(corpus.size())];
                if (kind < 3) {
                    const std::string hint =
                        rng.chance(0.5) ? "fam-" + std::to_string(rng.below(8)) : std::string();
                    (void)client->observe(digest.to_string(), hint);
                } else if (kind == 3) {
                    (void)client->observe_behavior(
                        behavior_corpus[rng.index(behavior_corpus.size())].to_string(),
                        "beh-" + std::to_string(rng.below(4)));
                } else if (kind < 7) {
                    (void)client->identify(digest.to_string());
                } else if (kind == 7) {
                    (void)client->top_n(digest.to_string(), 3);
                } else if (kind == 8) {
                    (void)client->identify_fused(digest.to_string(),
                                                 behavior_corpus[0].to_string(), 3);
                } else {
                    (void)client->stats_text();
                }
                ++report.ops_ok;
            } catch (const util::Error&) {
                // Typed failure — legal under chaos, as long as it was
                // prompt (checked below) and the fleet heals afterwards.
                ++report.ops_failed_typed;
            }
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started);
            if (elapsed > options.op_deadline) {
                ++report.deadline_misses;
                set_failure(report, "op " + std::to_string(op) + " took " +
                                        std::to_string(elapsed.count()) + "ms (deadline " +
                                        std::to_string(options.op_deadline.count()) + "ms)");
            }

            // Torn-snapshot audit: whatever the writer is doing — including
            // a publish stalled or aborted by the serve.publish.* faults
            // above — every snapshot a reader can acquire must be internally
            // consistent (the COW copy must not expose a half-mutated
            // registry) and versions must only move forward within one
            // leader incarnation.
            ++report.snapshot_audits;
            const auto snap = leader.service->snapshot();
            std::string why;
            if (!snap->registry.self_check(&why)) {
                ++report.torn_snapshots;
                set_failure(report, "torn snapshot at op " + std::to_string(op) + ": " + why);
            } else if (snap->version < last_snapshot_version) {
                ++report.torn_snapshots;
                set_failure(report, "snapshot version went backwards at op " +
                                        std::to_string(op) + ": " +
                                        std::to_string(snap->version) + " after " +
                                        std::to_string(last_snapshot_version));
            } else {
                last_snapshot_version = snap->version;
            }
        }

        // Heal: disarm everything, tally fires, and let the fleet converge.
        if (inject) {
            for (const auto& c : util::failpoint::counters()) report.failpoint_fires += c.fires;
            util::failpoint::clear();
        }
        leader.service->flush();
        const auto leader_fp = [&] { return leader.service->snapshot()->fingerprint(); };
        report.converged = eventually(
            [&] {
                const auto target = leader_fp();
                return std::all_of(followers.begin(), followers.end(), [&](FollowerNode& f) {
                    return f.service->snapshot()->fingerprint() == target;
                });
            },
            options.converge_deadline);
        report.leader_fingerprint = leader_fp();
        for (auto& f : followers) {
            report.follower_fingerprints.push_back(f.service->snapshot()->fingerprint());
        }
        if (!report.converged) {
            set_failure(report, "fleet did not converge: leader fingerprint " +
                                    std::to_string(report.leader_fingerprint));
        }

        // Checkpoint invariant: a checkpoint taken now must reload into an
        // identical registry (no torn or stale checkpoint after the kills).
        std::string error;
        if (!leader.service->checkpoint_now(&error)) {
            set_failure(report, "leader checkpoint failed: " + error);
        } else {
            auto verify_options = fleet_service_options();
            verify_options.segments_dir = leader_dir;
            verify_options.checkpoint_path = leader_ckpt;
            verify_options.replication.read_only = true;
            RecognitionService reloaded(std::move(verify_options));
            report.checkpoint_reload_ok = eventually(
                [&] { return reloaded.snapshot()->fingerprint() == leader_fp(); },
                std::chrono::milliseconds(5000));
            if (!report.checkpoint_reload_ok) {
                set_failure(report,
                            "checkpoint reload diverged: " +
                                std::to_string(reloaded.snapshot()->fingerprint()) + " vs " +
                                std::to_string(leader_fp()));
            }
            reloaded.stop();
        }

        client.reset();
        for (auto& f : followers) f.kill();
        source.stop();
        leader.kill();
    } catch (const std::exception& e) {
        set_failure(report, std::string("unexpected exception: ") + e.what());
    }
    if (inject) util::failpoint::clear();
    report.distinct_failpoints.assign(armed_names.begin(), armed_names.end());
    return report;
}

std::string format_report(const ChaosReport& report) {
    std::string out;
    const auto line = [&out](std::string_view key, std::uint64_t value) {
        out += key;
        out.push_back(' ');
        util::append_number(out, value);
        out.push_back('\n');
    };
    line("ops_ok", report.ops_ok);
    line("ops_failed_typed", report.ops_failed_typed);
    line("deadline_misses", report.deadline_misses);
    line("faults_armed", report.faults_armed);
    line("failpoint_fires", report.failpoint_fires);
    line("kills_leader", report.kills_leader);
    line("kills_follower", report.kills_follower);
    line("snapshot_audits", report.snapshot_audits);
    line("torn_snapshots", report.torn_snapshots);
    line("converged", report.converged ? 1 : 0);
    line("checkpoint_reload_ok", report.checkpoint_reload_ok ? 1 : 0);
    line("leader_fingerprint", report.leader_fingerprint);
    for (std::size_t i = 0; i < report.follower_fingerprints.size(); ++i) {
        line("follower_" + std::to_string(i) + "_fingerprint",
             report.follower_fingerprints[i]);
    }
    out += "failpoints";
    for (const auto& name : report.distinct_failpoints) {
        out.push_back(' ');
        out += name;
    }
    out.push_back('\n');
    out += report.ok() ? "PASS\n" : "FAIL: " + report.failure + "\n";
    return out;
}

}  // namespace siren::serve::chaos
