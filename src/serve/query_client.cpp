#include "serve/query_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "net/tcp.hpp"
#include "recognize/registry.hpp"  // sanitize_label
#include "serve/query_protocol.hpp"
#include "util/error.hpp"

namespace siren::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Parse an Identified out of "<family> <score> <name...>".
Identified parse_identified(std::istringstream& fields) {
    Identified result;
    std::string name;
    if (!(fields >> result.family >> result.score >> name)) {
        throw util::ParseError("malformed identify reply");
    }
    result.name = std::move(name);
    return result;
}

}  // namespace

QueryClient::QueryClient(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout)
    : timeout_(timeout) {
    // Non-blocking throughout: the documented per-call deadline must bound
    // connect() and send() too, not just the reply wait — a SYN-dropping
    // host or a stalled server otherwise hangs the caller at the kernel's
    // pleasure instead of throwing at timeout_. The connect dance itself
    // is shared with the replication follower (net::connect_nonblocking).
    std::string error;
    fd_ = net::connect_nonblocking(host, port, timeout_, -1, error);
    if (fd_ < 0) throw util::SystemError(error);
}

QueryClient::~QueryClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::string QueryClient::request(std::string_view payload) {
    if (fd_ < 0) throw util::SystemError("query client is disconnected");
    try {
        const auto deadline = Clock::now() + timeout_;
        std::string frame;
        append_frame(frame, payload);
        std::string send_error;
        if (!net::send_all_nonblocking(fd_, frame, deadline, send_error)) {
            throw util::SystemError("query " + send_error);
        }

        char buf[16 << 10];
        for (;;) {
            std::size_t consumed = 0;
            const auto reply = parse_frame(buffer_, consumed);  // ParseError propagates
            if (reply) {
                std::string out(*reply);
                buffer_.erase(0, consumed);
                return out;
            }
            const auto now = Clock::now();
            if (now >= deadline) throw util::SystemError("query reply timed out");
            pollfd pfd{fd_, POLLIN, 0};
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
            const int ready =
                ::poll(&pfd, 1, static_cast<int>(std::min<long>(left.count(), 200)));
            if (ready < 0) {
                if (errno == EINTR) continue;
                throw util::SystemError("poll(): " + std::string(std::strerror(errno)));
            }
            if (ready == 0) continue;
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n == 0) throw util::SystemError("query connection closed by the service");
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
                throw util::SystemError("recv(): " + std::string(std::strerror(errno)));
            }
            buffer_.append(buf, static_cast<std::size_t>(n));
        }
    } catch (...) {
        // An abandoned exchange desynchronizes the request/reply pairing:
        // the reply (or its tail) may still arrive and would be handed to
        // the *next* request. Tear the connection down so later calls fail
        // loudly instead of answering with someone else's reply.
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        buffer_.clear();
        throw;
    }
}

std::optional<Identified> QueryClient::identify(std::string_view digest) {
    const std::string reply = request("IDENTIFY " + std::string(digest));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status == "UNKNOWN") return std::nullopt;
    if (status != "OK") throw util::Error("identify: " + reply);
    return parse_identified(fields);
}

std::vector<std::optional<Identified>> QueryClient::identify_many(
    const std::vector<std::string>& digests) {
    if (digests.empty()) return {};
    // IDENTIFYB answers in counted framing even for one digest, so the
    // truncated-reply check below covers the single-probe case too; the
    // old shortcut through identify() accepted a bare reply and could not
    // tell a complete answer from a cut-off batch.
    std::string payload = "IDENTIFYB";
    for (const auto& digest : digests) {
        payload.push_back(' ');
        payload += digest;
    }
    const std::string reply = request(payload);
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK" || count != digests.size()) {
        throw util::Error("identify_many: " + reply);
    }
    std::vector<std::optional<Identified>> out;
    out.reserve(count);
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        if (line == "unknown") {
            out.emplace_back(std::nullopt);
            continue;
        }
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind != "match") throw util::Error("identify_many: bad line '" + line + "'");
        out.emplace_back(parse_identified(fields));
    }
    if (out.size() != count) throw util::Error("identify_many: truncated reply");
    return out;
}

namespace {

std::string observe_payload(std::string_view verb, std::string_view digest,
                            std::string_view hint) {
    std::string payload = std::string(verb) + ' ' + std::string(digest);
    if (!hint.empty()) {
        payload.push_back(' ');
        // Hints are single protocol tokens. Apply the registry's own name
        // mapping so a label like "Open MPI" arrives as the "Open_MPI" the
        // registry would store, instead of tripping an ERR on the extra
        // token.
        payload += recognize::sanitize_label(hint);
    }
    return payload;
}

}  // namespace

Identified QueryClient::observe(std::string_view digest, std::string_view hint) {
    const std::string reply = request(observe_payload("OBSERVE", digest, hint));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status != "OK") throw util::Error("observe: " + reply);
    Identified result;
    std::string novelty;
    std::string name;
    if (!(fields >> result.family >> result.score >> novelty >> name)) {
        throw util::ParseError("malformed observe reply: " + reply);
    }
    result.new_family = novelty == "new";
    result.name = std::move(name);
    return result;
}

std::optional<Identified> QueryClient::identify_behavior(std::string_view digest) {
    const std::string reply = request("IDENTIFYTS " + std::string(digest));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status == "UNKNOWN") return std::nullopt;
    if (status != "OK") throw util::Error("identify_behavior: " + reply);
    return parse_identified(fields);
}

Identified QueryClient::observe_behavior(std::string_view digest, std::string_view hint) {
    const std::string reply = request(observe_payload("OBSERVETS", digest, hint));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status != "OK") throw util::Error("observe_behavior: " + reply);
    Identified result;
    std::string novelty;
    std::string name;
    if (!(fields >> result.family >> result.score >> novelty >> name)) {
        throw util::ParseError("malformed observe_behavior reply: " + reply);
    }
    result.new_family = novelty == "new";
    result.name = std::move(name);
    return result;
}

std::vector<FusedIdentified> QueryClient::identify_fused(std::string_view content_digest,
                                                         std::string_view behavior_digest,
                                                         std::size_t k) {
    if (content_digest.empty() && behavior_digest.empty()) {
        throw util::Error("identify_fused: at least one digest is required");
    }
    std::string payload = "IDENTIFY2";
    if (!content_digest.empty()) {
        payload += " C ";
        payload += content_digest;
    }
    if (!behavior_digest.empty()) {
        payload += " B ";
        payload += behavior_digest;
    }
    payload.push_back(' ');
    payload += std::to_string(k);
    const std::string reply = request(payload);
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK") throw util::Error("identify_fused: " + reply);
    std::vector<FusedIdentified> out;
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        std::istringstream fields(line);
        std::string kind;
        std::string name;
        FusedIdentified match;
        if (!(fields >> kind >> match.family >> match.score >> match.content_score >>
              match.behavior_score >> name) ||
            kind != "match") {
            throw util::Error("identify_fused: bad line '" + line + "'");
        }
        match.name = std::move(name);
        out.push_back(std::move(match));
    }
    if (out.size() != count) throw util::Error("identify_fused: truncated reply");
    return out;
}

std::vector<Identified> QueryClient::top_n(std::string_view digest, std::size_t k) {
    const std::string reply =
        request("TOPN " + std::string(digest) + ' ' + std::to_string(k));
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK") throw util::Error("top_n: " + reply);
    std::vector<Identified> out;
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind != "match") throw util::Error("top_n: bad line '" + line + "'");
        out.push_back(parse_identified(fields));
    }
    if (out.size() != count) throw util::Error("top_n: truncated reply");
    return out;
}

std::string QueryClient::stats_text() {
    const std::string reply = request("STATS");
    if (!reply.starts_with("OK")) throw util::Error("stats: " + reply);
    const auto newline = reply.find('\n');
    return newline == std::string::npos ? std::string() : reply.substr(newline + 1);
}

std::string QueryClient::checkpoint() {
    const std::string reply = request("CHECKPOINT");
    if (!reply.starts_with("OK ")) throw util::Error("checkpoint: " + reply);
    return reply.substr(3);
}

}  // namespace siren::serve
