#include "serve/query_client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "net/tcp.hpp"
#include "recognize/registry.hpp"  // sanitize_label
#include "serve/query_protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Parse an Identified out of "<family> <score> <name...>".
Identified parse_identified(std::istringstream& fields) {
    Identified result;
    std::string name;
    if (!(fields >> result.family >> result.score >> name)) {
        throw util::ParseError("malformed identify reply");
    }
    result.name = std::move(name);
    return result;
}

}  // namespace

QueryClient::QueryClient(const std::string& host, std::uint16_t port,
                         std::chrono::milliseconds timeout)
    : timeout_(timeout) {
    // Non-blocking throughout: the documented per-call deadline must bound
    // connect() and send() too, not just the reply wait — a SYN-dropping
    // host or a stalled server otherwise hangs the caller at the kernel's
    // pleasure instead of throwing at timeout_. The connect dance itself
    // is shared with the replication follower (net::connect_nonblocking).
    std::string error;
    fd_ = net::connect_nonblocking(host, port, timeout_, -1, error);
    if (fd_ < 0) throw util::SystemError(error);
}

QueryClient::~QueryClient() {
    if (fd_ >= 0) ::close(fd_);
}

std::string QueryClient::request(std::string_view payload) {
    if (fd_ < 0) throw util::SystemError("query client is disconnected");
    try {
        const auto deadline = Clock::now() + timeout_;
        std::string frame;
        append_frame(frame, payload);
        std::string send_error;
        if (!net::send_all_nonblocking(fd_, frame, deadline, send_error)) {
            throw util::SystemError("query " + send_error);
        }

        char buf[16 << 10];
        for (;;) {
            std::size_t consumed = 0;
            const auto reply = parse_frame(buffer_, consumed);  // ParseError propagates
            if (reply) {
                std::string out(*reply);
                buffer_.erase(0, consumed);
                return out;
            }
            const auto now = Clock::now();
            if (now >= deadline) throw util::SystemError("query reply timed out");
            pollfd pfd{fd_, POLLIN, 0};
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
            const int ready =
                ::poll(&pfd, 1, static_cast<int>(std::min<long>(left.count(), 200)));
            if (ready < 0) {
                if (errno == EINTR) continue;
                throw util::SystemError("poll(): " + std::string(std::strerror(errno)));
            }
            if (ready == 0) continue;
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n == 0) throw util::SystemError("query connection closed by the service");
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
                throw util::SystemError("recv(): " + std::string(std::strerror(errno)));
            }
            buffer_.append(buf, static_cast<std::size_t>(n));
        }
    } catch (...) {
        // An abandoned exchange desynchronizes the request/reply pairing:
        // the reply (or its tail) may still arrive and would be handed to
        // the *next* request. Tear the connection down so later calls fail
        // loudly instead of answering with someone else's reply.
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        buffer_.clear();
        throw;
    }
}

std::vector<FusedIdentified> QueryClient::identify(const Probe& probe) {
    if (probe.content.empty() && probe.behavior.empty()) {
        throw util::Error("identify: a probe needs at least one digest");
    }
    if (probe.k == 0) throw util::Error("identify: k must be positive");

    // One-channel k=1 probes ride the historical singleton verbs — byte
    // for byte what the pre-Probe wrappers sent, so old and new callers
    // are indistinguishable on the wire (and in the server's verb stats).
    if (probe.k == 1 && (probe.content.empty() || probe.behavior.empty())) {
        const bool behavioral = probe.content.empty();
        const std::string reply = request((behavioral ? "IDENTIFYTS " : "IDENTIFY ") +
                                          (behavioral ? probe.behavior : probe.content));
        std::istringstream fields(reply);
        std::string status;
        fields >> status;
        if (status == "UNKNOWN") return {};
        if (status != "OK") throw util::Error("identify: " + reply);
        const Identified match = parse_identified(fields);
        FusedIdentified fused;
        fused.family = match.family;
        fused.score = match.score;
        (behavioral ? fused.behavior_score : fused.content_score) = match.score;
        fused.name = match.name;
        return {std::move(fused)};
    }

    std::string payload = "IDENTIFY2";
    if (!probe.content.empty()) {
        payload += " C ";
        payload += probe.content;
    }
    if (!probe.behavior.empty()) {
        payload += " B ";
        payload += probe.behavior;
    }
    payload.push_back(' ');
    payload += std::to_string(probe.k);
    const std::string reply = request(payload);
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK") throw util::Error("identify: " + reply);
    std::vector<FusedIdentified> out;
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        std::istringstream fields(line);
        std::string kind;
        std::string name;
        FusedIdentified match;
        if (!(fields >> kind >> match.family >> match.score >> match.content_score >>
              match.behavior_score >> name) ||
            kind != "match") {
            throw util::Error("identify: bad line '" + line + "'");
        }
        match.name = std::move(name);
        out.push_back(std::move(match));
    }
    if (out.size() != count) throw util::Error("identify: truncated reply");
    return out;
}

std::vector<std::optional<Identified>> QueryClient::identify_many(
    const std::vector<std::string>& digests) {
    if (digests.empty()) return {};
    // IDENTIFYB answers in counted framing even for one digest, so the
    // truncated-reply check below covers the single-probe case too; the
    // old shortcut through identify() accepted a bare reply and could not
    // tell a complete answer from a cut-off batch.
    std::string payload = "IDENTIFYB";
    for (const auto& digest : digests) {
        payload.push_back(' ');
        payload += digest;
    }
    const std::string reply = request(payload);
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK" || count != digests.size()) {
        throw util::Error("identify_many: " + reply);
    }
    std::vector<std::optional<Identified>> out;
    out.reserve(count);
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        if (line == "unknown") {
            out.emplace_back(std::nullopt);
            continue;
        }
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind != "match") throw util::Error("identify_many: bad line '" + line + "'");
        out.emplace_back(parse_identified(fields));
    }
    if (out.size() != count) throw util::Error("identify_many: truncated reply");
    return out;
}

namespace {

std::string observe_payload(std::string_view verb, std::string_view digest,
                            std::string_view hint) {
    std::string payload = std::string(verb) + ' ' + std::string(digest);
    if (!hint.empty()) {
        payload.push_back(' ');
        // Hints are single protocol tokens. Apply the registry's own name
        // mapping so a label like "Open MPI" arrives as the "Open_MPI" the
        // registry would store, instead of tripping an ERR on the extra
        // token.
        payload += recognize::sanitize_label(hint);
    }
    return payload;
}

}  // namespace

Identified QueryClient::observe(std::string_view digest, std::string_view hint) {
    const std::string reply = request(observe_payload("OBSERVE", digest, hint));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status != "OK") throw util::Error("observe: " + reply);
    Identified result;
    std::string novelty;
    std::string name;
    if (!(fields >> result.family >> result.score >> novelty >> name)) {
        throw util::ParseError("malformed observe reply: " + reply);
    }
    result.new_family = novelty == "new";
    result.name = std::move(name);
    return result;
}

Identified QueryClient::observe_behavior(std::string_view digest, std::string_view hint) {
    const std::string reply = request(observe_payload("OBSERVETS", digest, hint));
    std::istringstream fields(reply);
    std::string status;
    fields >> status;
    if (status != "OK") throw util::Error("observe_behavior: " + reply);
    Identified result;
    std::string novelty;
    std::string name;
    if (!(fields >> result.family >> result.score >> novelty >> name)) {
        throw util::ParseError("malformed observe_behavior reply: " + reply);
    }
    result.new_family = novelty == "new";
    result.name = std::move(name);
    return result;
}

std::vector<Identified> QueryClient::top_n(std::string_view digest, std::size_t k) {
    const std::string reply =
        request("TOPN " + std::string(digest) + ' ' + std::to_string(k));
    std::istringstream lines(reply);
    std::string header;
    std::getline(lines, header);
    std::istringstream head(header);
    std::string status;
    std::size_t count = 0;
    head >> status >> count;
    if (status != "OK") throw util::Error("top_n: " + reply);
    std::vector<Identified> out;
    std::string line;
    while (std::getline(lines, line) && out.size() < count) {
        std::istringstream fields(line);
        std::string kind;
        fields >> kind;
        if (kind != "match") throw util::Error("top_n: bad line '" + line + "'");
        out.push_back(parse_identified(fields));
    }
    if (out.size() != count) throw util::Error("top_n: truncated reply");
    return out;
}

std::string QueryClient::stats_text() {
    const std::string reply = request("STATS");
    if (!reply.starts_with("OK")) throw util::Error("stats: " + reply);
    const auto newline = reply.find('\n');
    return newline == std::string::npos ? std::string() : reply.substr(newline + 1);
}

std::string QueryClient::checkpoint() {
    const std::string reply = request("CHECKPOINT");
    if (!reply.starts_with("OK ")) throw util::Error("checkpoint: " + reply);
    return reply.substr(3);
}

std::string QueryClient::partition_map_text() {
    const std::string reply = request("PARTMAP");
    if (!reply.starts_with("OK\n")) throw util::Error("partmap: " + reply);
    return reply.substr(3);
}

std::uint64_t QueryClient::fingerprint_range(std::uint64_t lo, std::uint64_t hi) {
    const std::string reply =
        request("FPRANGE " + std::to_string(lo) + ' ' + std::to_string(hi));
    if (!reply.starts_with("OK ")) throw util::Error("fprange: " + reply);
    unsigned long long value = 0;
    if (!util::parse_decimal(util::trim(reply).substr(3), value)) {
        throw util::ParseError("malformed fprange reply: " + reply);
    }
    return value;
}

}  // namespace siren::serve
