#include "serve/replication.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <optional>
#include <vector>

#include "hashing/crc32c.hpp"
#include "serve/query_protocol.hpp"
#include "storage/segment.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace fs = std::filesystem;

bool valid_segment_name(std::string_view name) {
    if (name.size() <= storage::kSegmentSuffix.size() || name.size() > 255) return false;
    if (!name.ends_with(storage::kSegmentSuffix)) return false;
    if (name.front() == '.') return false;
    for (const char c : name) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '/' || c == '\\' || u <= ' ' || u == 0x7F) return false;
    }
    return true;
}

namespace {

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

ReplicationSource::ReplicationSource(ReplicationSourceOptions options)
    : options_(std::move(options)) {
    if (options_.segments_dir.empty()) {
        throw util::Error("replication source needs a segment directory");
    }
    // A chunk plus its header line must fit one protocol frame.
    options_.chunk_bytes = std::min<std::size_t>(
        std::max<std::size_t>(options_.chunk_bytes, 1), kMaxReplicationFrameBytes - 512);

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        throw util::SystemError("socket(): " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw util::SystemError("inet_pton(" + options_.bind_address + ") failed");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0 || !set_nonblocking(listen_fd_)) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        throw util::SystemError("bind/listen(" + options_.bind_address + "): " + reason);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || event_fd_ < 0) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        if (epoll_fd_ >= 0) ::close(epoll_fd_);
        if (event_fd_ >= 0) ::close(event_fd_);
        throw util::SystemError("epoll/eventfd: " + reason);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = event_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

    loop_ = std::thread([this] { event_loop(); });
}

ReplicationSource::~ReplicationSource() { stop(); }

void ReplicationSource::stop() {
    if (stopped_.exchange(true)) {
        if (loop_.joinable()) loop_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof one);
    if (loop_.joinable()) loop_.join();
    for (auto& [fd, conn] : followers_) ::close(fd);
    followers_.clear();
    ::close(listen_fd_);
    ::close(epoll_fd_);
    ::close(event_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

ReplicationSourceStats ReplicationSource::stats() const {
    ReplicationSourceStats s;
    s.connections = connections_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.subscriptions = subscriptions_.load(std::memory_order_relaxed);
    s.chunks_sent = chunks_sent_.load(std::memory_order_relaxed);
    s.bytes_shipped = bytes_shipped_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    return s;
}

void ReplicationSource::close_connection(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    followers_.erase(fd);
}

bool ReplicationSource::flush_writes(int fd, Follower& conn) {
    while (conn.out_pos < conn.out.size()) {
        const ssize_t n = ::send(fd, conn.out.data() + conn.out_pos,
                                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Socket buffer full: park the rest on EPOLLOUT. The pump also
            // checks buffered size, so a slow follower stalls its own
            // stream instead of growing the leader's memory.
            if (!conn.want_write) {
                epoll_event ev{};
                ev.events = EPOLLIN | EPOLLOUT;
                ev.data.fd = fd;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
                conn.want_write = true;
            }
            return true;
        }
        return false;  // follower went away
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        conn.want_write = false;
    }
    return true;
}

bool ReplicationSource::process_frames(int fd, Follower& conn) {
    std::size_t consumed = 0;
    for (;;) {
        std::size_t frame = 0;
        std::optional<std::string_view> payload;
        try {
            payload = parse_frame(std::string_view(conn.in).substr(consumed), frame);
        } catch (const util::ParseError&) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            close_connection(fd);
            return false;
        }
        if (!payload) break;
        consumed += frame;

        // The only frame a follower sends: SUBSCRIBE with its watermark.
        // A resubscribe on a live connection simply resets the offsets.
        std::vector<std::string_view> lines;
        util::split_view_into(*payload, '\n', lines);
        std::vector<std::string_view> words;
        bool ok = !lines.empty() && util::trim(lines[0]) == "SUBSCRIBE";
        std::map<std::string, std::uint64_t> offsets;
        for (std::size_t i = 1; ok && i < lines.size(); ++i) {
            if (lines[i].empty()) continue;
            words.clear();
            util::split_view_into(lines[i], ' ', words);
            long size = 0;
            if (words.size() != 3 || words[0] != "have" || !valid_segment_name(words[1]) ||
                !util::parse_decimal(words[2], size) || size < 0) {
                ok = false;
                break;
            }
            offsets[std::string(words[1])] = static_cast<std::uint64_t>(size);
        }
        if (!ok) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            close_connection(fd);
            return false;
        }
        conn.offsets = std::move(offsets);
        conn.subscribed = true;
        subscriptions_.fetch_add(1, std::memory_order_relaxed);
    }
    if (consumed > 0) conn.in.erase(0, consumed);
    return true;
}

void ReplicationSource::handle_readable(int fd, Follower& conn) {
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            if (conn.in.size() > kMaxReplicationFrameBytes + 4) {
                // A follower has no business sending this much; drop it.
                protocol_errors_.fetch_add(1, std::memory_order_relaxed);
                close_connection(fd);
                return;
            }
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_connection(fd);  // orderly shutdown or error
        return;
    }
    process_frames(fd, conn);
}

void ReplicationSource::pump(Follower& conn, const std::vector<SegmentState>& segments) {
    for (const auto& segment : segments) {
        if (conn.out.size() - conn.out_pos >= options_.max_buffered_bytes) return;
        std::uint64_t& offset = conn.offsets[segment.name];
        // The cheap common case: this follower already has every byte the
        // wake-up's size snapshot saw — no open(), no read.
        if (offset >= segment.size) continue;

        // Ship until this file is drained or the buffer cap is reached;
        // read_segment_range never reads past what is on disk right now,
        // and segment files are append-only, so every byte below the
        // current size is final.
        for (;;) {
            if (conn.out.size() - conn.out_pos >= options_.max_buffered_bytes) return;
            // Injected chunk stall: a delay(…) spec sleeps inside eval (the
            // shipping cadence hiccups), an error(…) spec skips this
            // wake-up's pump entirely — the follower's watermark protocol
            // must absorb both without losing bytes.
            if (SIREN_FAILPOINT("replication.source.chunk")) return;
            const std::size_t got =
                storage::read_segment_range(segment.path, offset, options_.chunk_bytes, chunk_);
            if (got == 0) break;
            std::string header = "DATA ";
            header += segment.name;
            header.push_back(' ');
            util::append_number(header, offset);
            header.push_back(' ');
            util::append_number(header, hash::crc32c(chunk_));
            header.push_back('\n');
            if (const auto fp = SIREN_FAILPOINT("replication.source.corrupt");
                fp.action == util::failpoint::Action::kCorrupt) {
                // Flip a payload byte *after* the header's CRC was computed:
                // the follower's apply_chunk must reject it (chunk_drops)
                // and resubscribe from its durable watermark.
                chunk_[0] = static_cast<char>(chunk_[0] ^ 0x01);
            }
            util::append_u32le(conn.out, static_cast<std::uint32_t>(header.size() + got));
            conn.out += header;
            conn.out += chunk_;
            offset += got;
            chunks_sent_.fetch_add(1, std::memory_order_relaxed);
            bytes_shipped_.fetch_add(got, std::memory_order_relaxed);
        }
    }
}

void ReplicationSource::event_loop() {
    std::vector<epoll_event> events(32);
    const int wait_ms =
        static_cast<int>(std::max<long>(1, static_cast<long>(options_.poll.count())));
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n =
            ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), wait_ms);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        // Clients first, accepts last (see QueryServer::event_loop): a fd
        // closed in this batch must not be reused by an accept mid-batch.
        bool accept_ready = false;
        for (int i = 0; i < n && !stopping_.load(std::memory_order_acquire); ++i) {
            const int fd = events[i].data.fd;
            if (fd == event_fd_) continue;  // stop signal: loop condition exits
            if (fd == listen_fd_) {
                accept_ready = true;
                continue;
            }
            const auto it = followers_.find(fd);
            if (it == followers_.end()) continue;  // closed earlier this wake-up
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(fd);
                continue;
            }
            if ((events[i].events & EPOLLOUT) != 0 && !flush_writes(fd, it->second)) {
                close_connection(fd);
                continue;
            }
            if ((events[i].events & EPOLLIN) != 0) handle_readable(fd, it->second);
        }

        if (accept_ready && !stopping_.load(std::memory_order_acquire)) {
            for (;;) {
                const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                             SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (client < 0) break;  // EAGAIN or transient error
                if (followers_.size() >= options_.max_followers) {
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    ::close(client);
                    continue;
                }
                const int one = 1;
                ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
                // Keepalive: a caught-up follower is silent for long
                // stretches, so a power-cut/partitioned peer produces no
                // FIN and no write to surface the death — without probes
                // its slot (and offsets map) would be held until every
                // max_followers slot was leaked.
                ::setsockopt(client, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one);
                const int idle = 60;
                const int interval = 15;
                const int probes = 4;
                ::setsockopt(client, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof idle);
                ::setsockopt(client, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof interval);
                ::setsockopt(client, IPPROTO_TCP, TCP_KEEPCNT, &probes, sizeof probes);
                epoll_event ev{};
                ev.events = EPOLLIN;
                ev.data.fd = client;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
                followers_.emplace(client, Follower{});
                connections_.fetch_add(1, std::memory_order_relaxed);
            }
        }

        if (stopping_.load(std::memory_order_acquire)) break;

        // Ship: every subscribed follower with buffer room gets the byte
        // ranges its watermark is missing, then the writes are flushed
        // (and parked on EPOLLOUT when the socket fills). The directory
        // listing and size snapshot are taken once per wake-up and shared
        // — N followers must not mean N directory scans.
        std::vector<SegmentState> segments;
        bool listed = false;
        std::vector<int> dead;
        for (auto& [fd, conn] : followers_) {
            if (!conn.subscribed) continue;
            if (!listed) {
                listed = true;
                for (const auto& path : storage::list_segments(options_.segments_dir)) {
                    SegmentState state;
                    state.name = fs::path(path).filename().string();
                    if (!valid_segment_name(state.name)) continue;  // foreign file
                    std::error_code ec;
                    state.size = fs::file_size(path, ec);
                    if (ec) continue;  // vanished between listing and stat
                    state.path = path;
                    segments.push_back(std::move(state));
                }
            }
            pump(conn, segments);
            if (conn.out_pos < conn.out.size() && !conn.want_write &&
                !flush_writes(fd, conn)) {
                dead.push_back(fd);
            }
        }
        for (const int fd : dead) close_connection(fd);
    }
}

}  // namespace siren::serve
