#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace siren::serve {

class RecognitionService;

/// Length-framed query protocol shared by QueryServer and QueryClient.
///
/// Transport framing (identical to net::TcpSender's): a 4-byte
/// little-endian payload length, then the payload. Payloads are single
/// text requests/responses:
///
///   request  := "IDENTIFY" digest+ | "OBSERVE" digest [hint]
///             | "TOPN" digest k | "STATS" | "CHECKPOINT"
///   response := "OK" ... | "UNKNOWN" | "ERR" reason
///
/// Full grammar and examples in docs/recognition_service.md.
inline constexpr std::uint32_t kMaxQueryFrameBytes = 1u << 20;

/// The marker a read-only follower embeds in its OBSERVE rejection.
/// ReplicaClient matches on it to fail over to the leader, so it is part
/// of the protocol, not just error prose (docs/replication.md).
inline constexpr std::string_view kReadOnlyError = "read-only follower";

/// Append one framed payload to `out`.
void append_frame(std::string& out, std::string_view payload);

/// When `buffer` starts with a complete frame, return its payload view
/// (aliasing `buffer`) and set `consumed` to the frame's total size;
/// otherwise nullopt (`consumed` = 0). Throws util::ParseError when the
/// length field exceeds kMaxQueryFrameBytes — the stream is garbage and
/// the connection should be dropped.
std::optional<std::string_view> parse_frame(std::string_view buffer, std::size_t& consumed);

/// Execute one request payload against the service and return the response
/// payload. Never throws: malformed requests yield "ERR ..." responses.
std::string execute_query(RecognitionService& service, std::string_view request);

}  // namespace siren::serve
