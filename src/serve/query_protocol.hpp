#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "serve/recognition_service.hpp"  // Identified

namespace siren::serve {

/// Length-framed query protocol shared by QueryServer and QueryClient.
///
/// Transport framing (identical to net::TcpSender's): a 4-byte
/// little-endian payload length, then the payload. Payloads are single
/// text requests/responses:
///
///   request  := "IDENTIFY" digest+ | "IDENTIFYB" digest+
///             | "IDENTIFYTS" digest
///             | "IDENTIFY2" ["C" digest] ["B" digest] [k]
///             | "OBSERVE" digest [hint] | "OBSERVETS" digest [hint]
///             | "TOPN" digest k | "STATS" | "CHECKPOINT"
///   response := "OK" ... | "UNKNOWN" | "ERR" reason
///
/// IDENTIFYTS probes the behavior channel (shapelet digests, see
/// docs/behavior_fingerprints.md) with a singleton reply; OBSERVETS records
/// a behavioral sighting. IDENTIFY2 is fused identification: at least one
/// of the C (content) / B (behavior) probes, optional result count k
/// (default 5); the counted reply lines are
/// "match family fused_score content_score behavior_score name".
///
/// IDENTIFYB is batch IDENTIFY with an unconditional counted reply
/// ("OK n" + one line per digest) even for n = 1, so clients can detect
/// truncated batch replies uniformly; plain IDENTIFY keeps the historical
/// shape (bare reply for one digest, counted for several).
///
/// Full grammar and examples in docs/recognition_service.md.
inline constexpr std::uint32_t kMaxQueryFrameBytes = 1u << 20;

/// The marker a read-only follower embeds in its OBSERVE rejection.
/// ReplicaClient matches on it to fail over to the leader, so it is part
/// of the protocol, not just error prose (docs/replication.md).
inline constexpr std::string_view kReadOnlyError = "read-only follower";

/// The marker an overloaded replica embeds in a shed reply ("ERR
/// overloaded"). Like kReadOnlyError it is protocol, not prose:
/// ReplicaClient treats it as retryable (back off, try another replica)
/// rather than a request error every replica would repeat
/// (docs/robustness.md).
inline constexpr std::string_view kOverloadedError = "overloaded";

/// The marker a partitioned shard embeds when an OBSERVE's block size
/// falls outside its owned key ranges: "ERR wrong_shard owner=<id>
/// version=<v>: ...". Protocol, not prose — ShardedClient matches on it to
/// refresh its partition map (PARTMAP) and re-route to the owner
/// (docs/sharding.md).
inline constexpr std::string_view kWrongShardError = "wrong_shard";

/// Version of the STATS key=value schema (the "stats_version" line).
/// Bump rules (docs/recognition_service.md, "STATS schema"): adding keys
/// keeps the version; renaming/removing keys or changing a key's meaning
/// bumps it. Parsers must ignore unknown keys.
inline constexpr std::uint64_t kStatsVersion = 1;

/// One parsed STATS reply: the key -> value map of every numeric line,
/// plus the non-numeric "role" line. Keys with non-numeric values other
/// than role (none today) are skipped.
struct StatsSnapshot {
    std::string role;  ///< "leader" or "follower"
    std::vector<std::pair<std::string, std::uint64_t>> values;  ///< reply order

    /// Value for `key`, or nullopt. Linear — STATS has ~40 keys.
    std::optional<std::uint64_t> get(std::string_view key) const;
};

/// Parse a STATS reply payload ("OK\n" + key=value lines). Tolerates (and
/// skips) unknown or non-numeric lines per the schema's forward-compat
/// rule. Throws util::ParseError when `text` is not a STATS reply at all
/// (no leading OK).
StatsSnapshot parse_stats(std::string_view text);

/// Append one framed payload to `out`.
void append_frame(std::string& out, std::string_view payload);

/// When `buffer` starts with a complete frame, return its payload view
/// (aliasing `buffer`) and set `consumed` to the frame's total size;
/// otherwise nullopt (`consumed` = 0). Throws util::ParseError when the
/// length field exceeds kMaxQueryFrameBytes — the stream is garbage and
/// the connection should be dropped.
std::optional<std::string_view> parse_frame(std::string_view buffer, std::size_t& consumed);

/// Execute one request payload against the service and return the response
/// payload. Never throws: malformed requests yield "ERR ..." responses.
std::string execute_query(RecognitionService& service, std::string_view request);

/// Reply payload for one resolved singleton IDENTIFY:
/// "OK family score name" or "UNKNOWN". Shared by execute_query and the
/// server-side coalescer so batched singletons answer byte-identically.
std::string format_identify_reply(const std::optional<Identified>& match);

/// Reply payload for a counted identify batch (IDENTIFYB / multi-digest
/// IDENTIFY): "OK n\n" + one "match family score name" / "unknown" line
/// per digest, in request order.
std::string format_identify_many_reply(const std::vector<std::optional<Identified>>& matches);

}  // namespace siren::serve
