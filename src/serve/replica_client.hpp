#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/partition_map.hpp"  // ReplicaEndpoint, parse_replica_list
#include "serve/query_client.hpp"
#include "util/rng.hpp"

namespace siren::serve {

/// Retry/backoff tuning for one ReplicaClient.
struct ReplicaClientOptions {
    /// Per-call deadline handed to each QueryClient.
    std::chrono::milliseconds timeout{5000};
    /// Extra sweeps across the whole replica list after the first one
    /// fails everywhere, each preceded by a backoff sleep. 0 restores the
    /// single-sweep PR 5 behavior (fail fast, never sleep).
    std::size_t retry_sweeps = 2;
    /// Between-sweep backoff bounds (decorrelated jitter: each sleep is
    /// uniform in [floor, min(cap, 3 * previous sleep)]), so a dead fleet
    /// is probed at a decaying, desynchronized cadence instead of being
    /// hot-spun.
    std::chrono::milliseconds backoff_floor{50};
    std::chrono::milliseconds backoff_cap{2000};
    /// Per-endpoint cooldown after a failure: the endpoint is skipped
    /// (unless every endpoint is cooling) until the cooldown expires.
    /// Doubles per consecutive failure up to the cap; any success resets.
    std::chrono::milliseconds cooldown_floor{200};
    std::chrono::milliseconds cooldown_cap{5000};
    /// Jitter seed; 0 derives one per instance.
    std::uint64_t jitter_seed = 0;
};

/// ReplicaClient counters.
struct ReplicaClientStats {
    std::uint64_t requests = 0;             ///< typed calls issued
    std::uint64_t failovers = 0;            ///< endpoint skipped on a transport error
    std::uint64_t read_only_redirects = 0;  ///< OBSERVE bounced off a follower
    std::uint64_t overload_redirects = 0;   ///< "ERR overloaded" shed replies retried
    std::uint64_t cooldown_skips = 0;       ///< endpoints skipped while cooling down
    std::uint64_t backoffs = 0;             ///< between-sweep sleeps taken
};

/// Replica-aware face of QueryClient — the client side of the scale-out
/// story. Reads (identify/identify_many/top_n/stats/checkpoint) spread
/// round-robin across the replica list and fail over to the next replica
/// on any transport error (connect refused/timed out, dead connection,
/// reply deadline) until one answers or every replica failed. OBSERVE is
/// leader-seeking: a follower's read-only rejection (kReadOnlyError) makes
/// the client try the next replica, and whichever endpoint accepts is
/// remembered as the leader for subsequent writes.
///
/// Connections are lazy and cached per endpoint; an endpoint that failed
/// reconnects on its next turn, so a restarted replica rejoins the
/// rotation automatically. Application-level "ERR …" responses (bad
/// digest, unknown verb) are NOT failed over — every replica would answer
/// the same — and surface as util::Error exactly like QueryClient's. Two
/// exceptions participate in failover because they mean "wrong replica
/// right now", not "bad request": kReadOnlyError (OBSERVE hit a follower)
/// and kOverloadedError (the replica shed the request under load).
///
/// A sweep that fails on every endpoint no longer rethrows immediately:
/// up to retry_sweeps more passes run, separated by decorrelated-jitter
/// backoff sleeps, and endpoints that failed recently sit out a growing
/// cooldown (they are only probed when every endpoint is cooling). A dead
/// fleet therefore costs bounded, decaying probe traffic instead of a hot
/// spin, and a briefly-overloaded fleet absorbs the retry.
/// Not thread-safe: one client, one thread (as QueryClient).
class ReplicaClient {
public:
    /// Endpoints are used as given; duplicates are legal. Throws
    /// util::Error when the list is empty. No connection is attempted
    /// until the first call.
    explicit ReplicaClient(std::vector<ReplicaEndpoint> replicas,
                           std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
    ReplicaClient(std::vector<ReplicaEndpoint> replicas, ReplicaClientOptions options);

    /// The unified probe shape (see QueryClient::identify(const Probe&)),
    /// round-robin with failover like every read.
    std::vector<FusedIdentified> identify(const Probe& probe);

    std::optional<Identified> identify(std::string_view digest);
    std::vector<std::optional<Identified>> identify_many(const std::vector<std::string>& digests);
    std::vector<Identified> top_n(std::string_view digest, std::size_t k);
    /// Behavior-channel and fused reads, round-robin like identify().
    std::optional<Identified> identify_behavior(std::string_view digest);
    std::vector<FusedIdentified> identify_fused(std::string_view content_digest,
                                                std::string_view behavior_digest,
                                                std::size_t k = 5);
    std::string stats_text();
    std::string checkpoint();
    /// Serialized partition map (PARTMAP), round-robin with failover.
    std::string partition_map_text();
    /// Range fingerprint (FPRANGE), round-robin with failover.
    std::uint64_t fingerprint_range(std::uint64_t lo, std::uint64_t hi);

    /// Leader-seeking write; throws util::Error carrying the last
    /// rejection when every replica is read-only or unreachable.
    Identified observe(std::string_view digest, std::string_view hint = {});
    /// Leader-seeking behavioral write (OBSERVETS), same failover contract.
    Identified observe_behavior(std::string_view digest, std::string_view hint = {});

    std::size_t replica_count() const { return replicas_.size(); }
    const ReplicaClientStats& stats() const { return stats_; }

private:
    /// Per-endpoint failure memory for the cooldown policy.
    struct EndpointHealth {
        std::chrono::steady_clock::time_point down_until{};
        std::chrono::milliseconds cooldown{0};  ///< next failure's cooldown span
    };

    /// Connected client for `index`, creating it on demand (throws
    /// util::SystemError when the endpoint is unreachable).
    QueryClient& client(std::size_t index);
    bool cooling(std::size_t index) const;
    void mark_success(std::size_t index);
    void mark_failure(std::size_t index);
    /// Sleep before the next sweep; returns the span actually slept and
    /// advances the decorrelated-jitter state.
    std::chrono::milliseconds backoff_sleep(std::chrono::milliseconds previous);
    /// Run `fn` against replicas starting at `start`, failing over on
    /// transport errors and overload sheds; rethrows the last error when
    /// every sweep of the retry budget fails.
    template <typename Fn>
    auto with_failover(std::size_t start, Fn&& fn);
    /// Shared leader-seeking walk of observe()/observe_behavior().
    Identified observe_impl(std::string_view digest, std::string_view hint, bool behavioral);

    std::vector<ReplicaEndpoint> replicas_;
    std::vector<std::unique_ptr<QueryClient>> connections_;
    std::vector<EndpointHealth> health_;
    ReplicaClientOptions options_;
    util::Rng rng_;
    std::size_t next_read_ = 0;    ///< round-robin cursor
    std::size_t leader_hint_ = 0;  ///< last endpoint that accepted a write
    ReplicaClientStats stats_;
};

}  // namespace siren::serve
