#pragma once

/// Umbrella header for the serving layer — the third leg of the pipeline
/// (collect -> ingest -> recognize, served live):
///  - segment_tail.hpp         incremental follower of ingest segments
///  - recognition_service.hpp  snapshot-swap concurrent registry service
///  - query_protocol.hpp       length-framed query protocol
///  - query_server.hpp         epoll TCP front end
///  - query_client.hpp         synchronous client library
///  - replica_client.hpp       round-robin/failover client over replicas
///  - replication.hpp          segment-shipping leader/follower replication
///  - partition_map.hpp        versioned shard table of a partitioned fleet
///  - sharded_client.hpp       partition-routed client over M shards
///  - rebalance.hpp            key-range export for shard rebalancing

#include "serve/partition_map.hpp"         // IWYU pragma: export
#include "serve/query_client.hpp"          // IWYU pragma: export
#include "serve/query_protocol.hpp"        // IWYU pragma: export
#include "serve/query_server.hpp"          // IWYU pragma: export
#include "serve/rebalance.hpp"             // IWYU pragma: export
#include "serve/recognition_service.hpp"   // IWYU pragma: export
#include "serve/replica_client.hpp"        // IWYU pragma: export
#include "serve/replication.hpp"           // IWYU pragma: export
#include "serve/segment_tail.hpp"          // IWYU pragma: export
#include "serve/sharded_client.hpp"        // IWYU pragma: export
