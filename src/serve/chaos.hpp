#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace siren::serve::chaos {

/// One chaos campaign: a seeded, randomized schedule of failpoint
/// activations and node kill-restarts driven against a live in-process
/// fleet (leader + replication source + N followers), interleaved with
/// client operations through a ReplicaClient. tools/siren_chaos and
/// tests/test_chaos.cpp both run this harness; docs/robustness.md states
/// the invariants it enforces.
struct ChaosOptions {
    /// Schedule seed — the whole campaign (op mix, fault choices, kill
    /// targets, client jitter) derives from it, so a failing seed replays.
    std::uint64_t seed = 1;
    /// Client operations to issue (observe/identify/top_n/stats mix).
    std::size_t ops = 200;
    /// Follower replicas behind the leader.
    std::size_t followers = 2;
    /// Scratch directory for segment dirs and checkpoints; the harness
    /// creates subdirectories under it and never deletes the root.
    std::string root;
    /// Per-operation wall-clock bound: every client op must succeed or
    /// fail with a typed error within it.
    std::chrono::milliseconds op_deadline{5000};
    /// How long the healed fleet gets to converge to one fingerprint.
    std::chrono::milliseconds converge_deadline{20000};
    /// Per-endpoint QueryClient timeout inside the ReplicaClient.
    std::chrono::milliseconds client_timeout{250};
    /// Include kill-restart events (leader and follower) in the schedule.
    bool kill_restart = true;
    /// Arm failpoints (requires a SIREN_FAILPOINTS=ON build; ignored —
    /// with a note in the report — when the hooks are compiled out).
    bool use_failpoints = true;
};

/// Campaign outcome. `failure` holds the first violated invariant
/// (empty = every invariant held).
struct ChaosReport {
    std::uint64_t ops_ok = 0;            ///< client ops that returned a result
    std::uint64_t ops_failed_typed = 0;  ///< ops that failed with a typed util::Error
    std::uint64_t deadline_misses = 0;   ///< ops that exceeded op_deadline (violation)
    std::uint64_t faults_armed = 0;      ///< failpoint activations scheduled
    std::uint64_t failpoint_fires = 0;   ///< injections that actually landed
    std::uint64_t kills_leader = 0;
    std::uint64_t kills_follower = 0;
    std::uint64_t snapshot_audits = 0;   ///< leader snapshots inspected mid-chaos
    std::uint64_t torn_snapshots = 0;    ///< snapshots failing self_check or version order (violation)
    bool converged = false;              ///< fleet reached one fingerprint after heal
    bool checkpoint_reload_ok = false;   ///< leader checkpoint reloads to the same state
    std::uint64_t leader_fingerprint = 0;
    std::vector<std::uint64_t> follower_fingerprints;
    /// Distinct failpoint names armed at least once during the campaign.
    std::vector<std::string> distinct_failpoints;
    std::string failure;

    bool ok() const { return failure.empty(); }
};

/// Run one campaign. Does not throw for chaos-induced trouble — every
/// invariant violation (including an unexpected exception out of the
/// fleet) lands in ChaosReport::failure.
ChaosReport run_chaos(const ChaosOptions& options);

/// Human-readable multi-line summary of a report (tool output; the last
/// line is "PASS" or "FAIL: <failure>").
std::string format_report(const ChaosReport& report);

}  // namespace siren::serve::chaos
