#include "serve/recognition_service.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/codec.hpp"
#include "net/message.hpp"
#include "util/error.hpp"

namespace siren::serve {

namespace fs = std::filesystem;

namespace {

/// Write `body` to `path` atomically: tmp file, fsync, rename, fsync the
/// directory — a crash leaves either the old checkpoint or the new one,
/// never a torn mix.
bool write_file_atomic(const std::string& path, std::string_view body, std::string& error) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        error = "open(" + tmp + "): " + std::strerror(errno);
        return false;
    }
    const char* p = body.data();
    std::size_t remaining = body.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, p, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            error = "write(" + tmp + "): " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        error = "fsync(" + tmp + "): " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "rename(" + tmp + "): " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    const std::string dir = fs::path(path).parent_path().string();
    const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
    return true;
}

}  // namespace

RecognitionService::RecognitionService(ServeOptions options)
    : options_(std::move(options)), master_(options_.registry) {
    load_checkpoint();  // fills master_ and tail_ (with the watermark) when present

    if (!options_.segments_dir.empty() && !tail_) {
        tail_ = std::make_unique<SegmentTail>(options_.segments_dir);
    }

    // Catch-up replay: everything past the watermark, before serving. The
    // canonical segment order makes this deterministic, so a restart
    // converges to the same family assignments the uninterrupted run had.
    if (tail_) {
        while (tail_->poll([this](std::string_view record) { apply_feed_record(record); },
                           options_.feed_batch_max) > 0) {
        }
    }
    if (options_.batch_pool_threads > 0) {
        batch_pool_ = std::make_unique<util::ThreadPool>(options_.batch_pool_threads);
    }
    publish(0);
    writer_ = std::thread([this] { writer_loop(); });
}

RecognitionService::~RecognitionService() { stop(); }

void RecognitionService::load_checkpoint() {
    if (options_.checkpoint_path.empty()) return;
    std::ifstream in(options_.checkpoint_path);
    if (!in) return;  // first boot: no checkpoint yet

    std::string magic;
    std::uint32_t version = 0;
    in >> magic >> version;
    if (magic != kCheckpointMagic || version != kCheckpointVersion) {
        throw util::ParseError("checkpoint " + options_.checkpoint_path +
                               ": bad magic/version ('" + magic + "')");
    }

    SegmentTail::Offsets offsets;
    std::uint64_t applied = 0;
    std::string word;
    bool saw_registry = false;
    while (in >> word) {
        if (word == "applied") {
            if (!(in >> applied)) {
                throw util::ParseError("checkpoint: bad applied line");
            }
        } else if (word == "offset") {
            std::string name;
            std::uint64_t off = 0;
            if (!(in >> name >> off)) {
                throw util::ParseError("checkpoint: bad offset line");
            }
            offsets[name] = off;
        } else if (word == "registry") {
            // The registry section is the remainder of the stream; consume
            // the end of the marker line first.
            std::string rest;
            std::getline(in, rest);
            master_ = recognize::Registry::load(in, options_.registry);
            saw_registry = true;
            break;
        } else {
            throw util::ParseError("checkpoint: unknown record '" + word + "'");
        }
    }
    if (!saw_registry) {
        throw util::ParseError("checkpoint " + options_.checkpoint_path +
                               ": missing registry section");
    }
    applied_total_ = applied;
    if (!options_.segments_dir.empty()) {
        tail_ = std::make_unique<SegmentTail>(options_.segments_dir, std::move(offsets));
    }
}

void RecognitionService::apply_feed_record(std::string_view record) {
    feed_records_.fetch_add(1, std::memory_order_relaxed);
    try {
        net::MessageView view;
        net::decode_view(record, view);
        if (view.type != net::MsgType::kFileHash) return;
        const auto digest = fuzzy::FuzzyDigest::parse(view.content_str());
        master_.observe(digest);
        ++applied_total_;
        feed_file_hashes_.fetch_add(1, std::memory_order_relaxed);
    } catch (const util::Error&) {
        // Not a SIREN datagram / unparseable digest: the WAL is shared
        // with whatever else the ingest daemon journals — count and move on.
        feed_malformed_.fetch_add(1, std::memory_order_relaxed);
    }
}

void RecognitionService::publish(std::uint64_t applied_through) {
    auto snap = std::make_shared<RegistrySnapshot>();
    snap->registry = master_;
    snap->version = publishes_.fetch_add(1, std::memory_order_relaxed) + 1;
    snap->applied = applied_total_;
    snapshot_.store(std::move(snap), std::memory_order_release);
    if (applied_through > 0) {
        applied_seq_.store(applied_through, std::memory_order_release);
    }
}

bool RecognitionService::write_checkpoint(std::string& error) {
    if (options_.checkpoint_path.empty()) {
        error = "no checkpoint path configured";
        return false;
    }
    std::ostringstream body;
    body << kCheckpointMagic << ' ' << kCheckpointVersion << '\n';
    body << "applied " << applied_total_ << '\n';
    if (tail_) {
        for (const auto& [name, offset] : tail_->offsets()) {
            body << "offset " << name << ' ' << offset << '\n';
        }
    }
    body << "registry\n";
    master_.save(body);
    return write_file_atomic(options_.checkpoint_path, body.view(), error);
}

void RecognitionService::writer_loop() {
    auto last_checkpoint = std::chrono::steady_clock::now();
    auto last_feed = std::chrono::steady_clock::time_point{};     // poll immediately
    auto last_publish = std::chrono::steady_clock::time_point{};  // publish immediately
    bool dirty = false;                   ///< applied but not yet published
    std::uint64_t unpublished_seq = 0;    ///< highest applied client seq

    std::vector<PendingObserve> batch;
    std::vector<std::pair<std::shared_ptr<std::promise<Identified>>, Identified>> replies;

    const auto drain_feed = [this](std::size_t budget) {
        return tail_ ? tail_->poll(
                           [this](std::string_view record) { apply_feed_record(record); },
                           budget)
                     : 0;
    };

    for (;;) {
        bool checkpoint_wanted = false;
        bool stopping = false;
        batch.clear();
        replies.clear();
        {
            std::unique_lock lock(queue_mutex_);
            queue_cv_.wait_for(lock, options_.writer_idle, [this] {
                return stop_.load(std::memory_order_relaxed) || !queue_.empty() ||
                       checkpoint_requested_;
            });
            batch.swap(queue_);
            checkpoint_wanted = checkpoint_requested_;
            checkpoint_requested_ = false;
            stopping = stop_.load(std::memory_order_relaxed);
        }
        if (!batch.empty()) applied_cv_.notify_all();  // queue room for blocked writers

        // Feed first, client observes second: segment records are older
        // (they were ingested before this loop iteration) and recovery
        // replays them in exactly this order.
        std::size_t fed = 0;
        bool polled_feed = false;
        const auto now = std::chrono::steady_clock::now();
        if (tail_ && (stopping || now - last_feed >= options_.feed_poll)) {
            polled_feed = true;
            // One bounded poll per publish cycle; at shutdown, drain
            // everything the daemon managed to journal.
            std::size_t n = 0;
            do {
                n = drain_feed(options_.feed_batch_max);
                fed += n;
            } while (stopping && n > 0);
            last_feed = now;
        }

        for (auto& pending : batch) {
            const auto obs = master_.observe(pending.digest, pending.name_hint);
            ++applied_total_;
            unpublished_seq = pending.seq;
            if (pending.reply) {
                Identified result;
                result.family = obs.family;
                result.score = obs.best_score;
                result.new_family = obs.new_family;
                result.name = master_.family(obs.family).name;
                replies.emplace_back(std::move(pending.reply), std::move(result));
            }
        }
        observes_applied_.fetch_add(batch.size(), std::memory_order_relaxed);

        // Publish policy: every modifying cycle by default; under a
        // publish_interval the copy is amortized across batches. A sync
        // observe or shutdown always publishes — their contract is
        // read-your-writes on return.
        dirty = dirty || !batch.empty() || fed > 0;
        if (dirty && (!replies.empty() || stopping ||
                      std::chrono::steady_clock::now() - last_publish >=
                          options_.publish_interval)) {
            publish(unpublished_seq);
            last_publish = std::chrono::steady_clock::now();
            dirty = false;
        }

        {
            std::lock_guard lock(queue_mutex_);
            // flush() counts *completed feed polls*, not writer iterations
            // — an idle cycle that skipped the feed (poll cadence not due)
            // must not satisfy a caller waiting for journaled records.
            if (polled_feed || !tail_) ++feed_polls_done_;
            snapshot_dirty_ = dirty;
        }
        applied_cv_.notify_all();
        // Resolve observe_sync waiters only after the publish: the caller
        // must be able to identify() what it just observed.
        for (auto& [promise, result] : replies) {
            promise->set_value(std::move(result));
        }

        const bool interval_due =
            options_.checkpoint_interval.count() > 0 &&
            std::chrono::steady_clock::now() - last_checkpoint >= options_.checkpoint_interval &&
            !options_.checkpoint_path.empty();
        if (checkpoint_wanted || (interval_due && !stopping)) {
            std::string error;
            const bool ok = write_checkpoint(error);
            last_checkpoint = std::chrono::steady_clock::now();
            if (ok) {
                checkpoints_.fetch_add(1, std::memory_order_relaxed);
            } else {
                checkpoint_errors_.fetch_add(1, std::memory_order_relaxed);
            }
            {
                std::lock_guard lock(queue_mutex_);
                ++checkpoints_done_;
                checkpoint_ok_ = ok;
                checkpoint_error_ = error;
            }
            applied_cv_.notify_all();
        }

        if (stopping) break;
    }

    // Final checkpoint: the clean-shutdown state, watermark included.
    if (!options_.checkpoint_path.empty()) {
        std::string error;
        if (write_checkpoint(error)) {
            checkpoints_.fetch_add(1, std::memory_order_relaxed);
        } else {
            checkpoint_errors_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    {
        std::lock_guard lock(queue_mutex_);
        writer_done_ = true;
    }
    applied_cv_.notify_all();
}

std::optional<Identified> RecognitionService::identify(const fuzzy::FuzzyDigest& digest) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    const auto match = snap->registry.best_match(digest);
    if (!match) return std::nullopt;
    Identified result;
    result.family = match->family;
    result.score = match->best_score;
    result.name = snap->registry.family(match->family).name;
    return result;
}

std::vector<Identified> RecognitionService::top_n(const fuzzy::FuzzyDigest& digest,
                                                  std::size_t k) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<Identified> out;
    for (const auto& obs : snap->registry.top_families(digest, k)) {
        Identified result;
        result.family = obs.family;
        result.score = obs.best_score;
        result.name = snap->registry.family(obs.family).name;
        out.push_back(std::move(result));
    }
    return out;
}

std::vector<std::optional<Identified>> RecognitionService::identify_many(
    const std::vector<fuzzy::FuzzyDigest>& digests, util::ThreadPool* pool) const {
    identifies_.fetch_add(digests.size(), std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<std::optional<Identified>> out(digests.size());
    const auto resolve = [&](std::size_t i) {
        const auto match = snap->registry.best_match(digests[i]);
        if (!match) return;
        Identified result;
        result.family = match->family;
        result.score = match->best_score;
        result.name = snap->registry.family(match->family).name;
        out[i] = std::move(result);
    };
    if (pool != nullptr && digests.size() > 1) {
        pool->parallel_for(digests.size(), resolve);
    } else {
        for (std::size_t i = 0; i < digests.size(); ++i) resolve(i);
    }
    return out;
}

std::optional<std::uint64_t> RecognitionService::observe(fuzzy::FuzzyDigest digest,
                                                         std::string name_hint) {
    std::uint64_t seq = 0;
    {
        std::lock_guard lock(queue_mutex_);
        if (writer_done_ || stop_.load(std::memory_order_relaxed) ||
            queue_.size() >= options_.queue_capacity) {
            observes_dropped_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        seq = next_seq_++;
        queue_.push_back({std::move(digest), std::move(name_hint), seq, nullptr});
    }
    observes_enqueued_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
    return seq;
}

Identified RecognitionService::observe_sync(fuzzy::FuzzyDigest digest, std::string name_hint) {
    auto reply = std::make_shared<std::promise<Identified>>();
    auto future = reply->get_future();
    {
        std::unique_lock lock(queue_mutex_);
        applied_cv_.wait(lock, [this] {
            return writer_done_ || stop_.load(std::memory_order_relaxed) ||
                   queue_.size() < options_.queue_capacity;
        });
        if (writer_done_ || stop_.load(std::memory_order_relaxed)) {
            throw util::Error("recognition service is stopped");
        }
        queue_.push_back({std::move(digest), std::move(name_hint), next_seq_++, reply});
    }
    observes_enqueued_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
    return future.get();
}

void RecognitionService::flush() {
    std::uint64_t seq_target = 0;
    std::uint64_t polls_target = 0;
    {
        std::lock_guard lock(queue_mutex_);
        seq_target = next_seq_ - 1;
        // Two completed poll cycles: one may already have been in flight
        // (and missed records written just before this call), the second
        // must have started after it — and therefore seen them.
        polls_target = feed_polls_done_ + (tail_ ? 2 : 1);
    }
    std::unique_lock lock(queue_mutex_);
    applied_cv_.wait(lock, [&] {
        return writer_done_ ||
               (applied_seq_.load(std::memory_order_acquire) >= seq_target &&
                feed_polls_done_ >= polls_target && !snapshot_dirty_);
    });
}

bool RecognitionService::checkpoint_now(std::string* error) {
    std::uint64_t generation = 0;
    {
        std::lock_guard lock(queue_mutex_);
        if (writer_done_) {
            if (error) *error = "recognition service is stopped";
            return false;
        }
        generation = checkpoints_done_;
        checkpoint_requested_ = true;
    }
    queue_cv_.notify_one();
    std::unique_lock lock(queue_mutex_);
    applied_cv_.wait(lock,
                     [&] { return writer_done_ || checkpoints_done_ > generation; });
    if (checkpoints_done_ <= generation) {
        if (error) *error = "recognition service stopped before the checkpoint";
        return false;
    }
    if (error) *error = checkpoint_error_;
    return checkpoint_ok_;
}

ServeCounters RecognitionService::counters() const {
    ServeCounters c;
    c.identifies = identifies_.load(std::memory_order_relaxed);
    c.observes_enqueued = observes_enqueued_.load(std::memory_order_relaxed);
    c.observes_dropped = observes_dropped_.load(std::memory_order_relaxed);
    c.observes_applied = observes_applied_.load(std::memory_order_relaxed);
    c.feed_records = feed_records_.load(std::memory_order_relaxed);
    c.feed_file_hashes = feed_file_hashes_.load(std::memory_order_relaxed);
    c.feed_malformed = feed_malformed_.load(std::memory_order_relaxed);
    c.publishes = publishes_.load(std::memory_order_relaxed);
    c.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    c.checkpoint_errors = checkpoint_errors_.load(std::memory_order_relaxed);
    return c;
}

void RecognitionService::stop() {
    if (stopped_.exchange(true)) {
        if (writer_.joinable()) writer_.join();
        return;
    }
    {
        std::lock_guard lock(queue_mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();
    applied_cv_.notify_all();
    if (writer_.joinable()) writer_.join();
}

}  // namespace siren::serve
