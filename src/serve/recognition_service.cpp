#include "serve/recognition_service.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "net/codec.hpp"
#include "net/message.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace siren::serve {

namespace fs = std::filesystem;

namespace {

/// Write `body` to `path` atomically: tmp file, fsync, rename, fsync the
/// directory — a crash leaves either the old checkpoint or the new one,
/// never a torn mix.
bool write_file_atomic(const std::string& path, std::string_view body, std::string& error) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
        error = "open(" + tmp + "): " + std::strerror(errno);
        return false;
    }
    const char* p = body.data();
    std::size_t remaining = body.size();
    while (remaining > 0) {
        const ssize_t n = ::write(fd, p, remaining);
        if (n < 0) {
            if (errno == EINTR) continue;
            error = "write(" + tmp + "): " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        error = "fsync(" + tmp + "): " + std::strerror(errno);
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);
    if (const auto fp = SIREN_FAILPOINT("serve.checkpoint.rename");
        fp.action == util::failpoint::Action::kError) {
        // Injected crash-before-rename: the tmp file stays, the previous
        // checkpoint survives untouched — the atomicity claim under test.
        error = "rename(" + tmp + "): " + std::strerror(fp.err != 0 ? fp.err : EIO);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "rename(" + tmp + "): " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    const std::string dir = fs::path(path).parent_path().string();
    const int dir_fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
    return true;
}

}  // namespace

std::string_view query_verb_name(QueryVerb verb) {
    switch (verb) {
        case QueryVerb::kIdentify: return "verb_identify";
        case QueryVerb::kIdentifyB: return "verb_identifyb";
        case QueryVerb::kIdentifyTs: return "verb_identifyts";
        case QueryVerb::kIdentify2: return "verb_identify2";
        case QueryVerb::kObserve: return "verb_observe";
        case QueryVerb::kObserveTs: return "verb_observets";
        case QueryVerb::kTopN: return "verb_topn";
        case QueryVerb::kStats: return "verb_stats";
        case QueryVerb::kCheckpoint: return "verb_checkpoint";
        case QueryVerb::kPartMap: return "verb_partmap";
        case QueryVerb::kFpRange: return "verb_fprange";
        case QueryVerb::kUnknown: return "verb_unknown";
        case QueryVerb::kCount: break;
    }
    return "verb_unknown";
}

void ServeOptions::validate() const {
    if (queue_capacity == 0) throw util::Error("queue_capacity must be positive");
    if (feed_batch_max == 0) throw util::Error("feed_batch_max must be positive");
    if (coalesce.batch_window_us > 0 && coalesce.batch_max == 0) {
        throw util::Error("coalescing window needs batch_max > 0");
    }
    if (replication.observe_wal && segments_dir.empty()) {
        throw util::Error("observe_wal needs segments_dir (the WAL lives there)");
    }
    if (replication.observe_wal && replication.read_only) {
        throw util::Error("a read-only follower cannot journal an observe WAL");
    }
    if (shed.shed_queue_depth > queue_capacity) {
        throw util::Error("shed_queue_depth beyond queue_capacity never sheds "
                          "(observe_sync blocks at capacity first)");
    }
    if (partition.map) {
        if (replication.read_only) {
            throw util::Error("a read-only follower cannot own shard key ranges "
                              "(partition enforcement is a leader concern)");
        }
        if (partition.map->shard(partition.shard_id) == nullptr) {
            throw util::Error("partition map has no shard " + std::to_string(partition.shard_id));
        }
    }
}

RecognitionService::RecognitionService(ServeOptions options)
    : options_(std::move(options)), master_(options_.registry) {
    options_.validate();
    partition_map_.store(options_.partition.map, std::memory_order_release);
    load_checkpoint();  // fills master_ and tail_ (with the watermark) when present

    if (!options_.segments_dir.empty() && !tail_) {
        tail_ = std::make_unique<SegmentTail>(options_.segments_dir);
    }
    if (options_.replication.observe_wal) {
        // The WAL shares the followed directory: journaled observes come
        // back through the tail (one apply path, replicated for free). Its
        // sequence resumes after whatever an earlier run left, so catch-up
        // replay below recovers observes older checkpoints never saw.
        storage::SegmentOptions wal_options;
        wal_options.fsync_enabled = options_.replication.wal_fsync;
        wal_ = std::make_unique<storage::SegmentWriter>(
            options_.segments_dir, std::string(kObserveWalPrefix), wal_options);
        // Observe seqs ride the WAL as job ids, and the fallback skip-set
        // keys on them — so they must never repeat across restarts. A
        // counter restarting at 1 would collide with seqs still pending in
        // old segments (a persisted fallback seq and a fresh one sharing a
        // set entry double-applies whichever record drains second). The
        // writer's resume sequence is a durable, strictly-increasing
        // incarnation number: fold it in as an epoch. Low 32 bits leave
        // room for ~4B observes per incarnation. applied_seq_ starts at
        // the same base: flush() waits for applied_seq_ >= next_seq_ - 1,
        // and a zero start would leave an idle restarted service waiting
        // for observes that never existed.
        next_seq_ = (wal_->next_segment_seq() << 32) | 1;
        applied_seq_.store(next_seq_ - 1, std::memory_order_release);
    }

    // Catch-up replay: everything past the watermark, before serving. The
    // canonical segment order makes this deterministic, so a restart
    // converges to the same family assignments the uninterrupted run had.
    if (tail_) {
        while (tail_->poll([this](std::string_view record) { apply_feed_record(record); },
                           options_.feed_batch_max) > 0) {
        }
    }
    if (options_.batch_pool_threads > 0) {
        batch_pool_ = std::make_unique<util::ThreadPool>(options_.batch_pool_threads);
    }
    publish(0);
    writer_ = std::thread([this] { writer_loop(); });
}

RecognitionService::~RecognitionService() { stop(); }

void RecognitionService::load_checkpoint() {
    if (options_.checkpoint_path.empty()) return;
    std::ifstream in(options_.checkpoint_path);
    if (!in) return;  // first boot: no checkpoint yet

    std::string magic;
    std::uint32_t version = 0;
    in >> magic >> version;
    if (magic != kCheckpointMagic || version != kCheckpointVersion) {
        throw util::ParseError("checkpoint " + options_.checkpoint_path +
                               ": bad magic/version ('" + magic + "')");
    }

    SegmentTail::Offsets offsets;
    std::uint64_t applied = 0;
    std::string word;
    bool saw_registry = false;
    while (in >> word) {
        if (word == "applied") {
            if (!(in >> applied)) {
                throw util::ParseError("checkpoint: bad applied line");
            }
        } else if (word == "offset") {
            std::string name;
            std::uint64_t off = 0;
            if (!(in >> name >> off)) {
                throw util::ParseError("checkpoint: bad offset line");
            }
            offsets[name] = off;
        } else if (word == "fallback") {
            // A WAL observe the liveness backstop applied directly whose
            // feed delivery was still outstanding at checkpoint time: the
            // checkpointed registry already contains it, so catch-up
            // replay must skip it or this leader double-applies after a
            // restart and silently diverges from its followers.
            std::uint64_t seq = 0;
            if (!(in >> seq)) {
                throw util::ParseError("checkpoint: bad fallback line");
            }
            wal_fallback_seqs_.insert(seq);
        } else if (word == "registry") {
            // The registry section is the remainder of the stream; consume
            // the end of the marker line first.
            std::string rest;
            std::getline(in, rest);
            master_ = recognize::Registry::load(in, options_.registry);
            saw_registry = true;
            break;
        } else {
            throw util::ParseError("checkpoint: unknown record '" + word + "'");
        }
    }
    if (!saw_registry) {
        throw util::ParseError("checkpoint " + options_.checkpoint_path +
                               ": missing registry section");
    }
    applied_total_ = applied;
    if (!options_.segments_dir.empty()) {
        tail_ = std::make_unique<SegmentTail>(options_.segments_dir, std::move(offsets));
    }
}

void RecognitionService::apply_feed_record(std::string_view record) {
    feed_records_.fetch_add(1, std::memory_order_relaxed);
    try {
        net::MessageView view;
        net::decode_view(record, view);
        const bool behavioral = view.type == net::MsgType::kTimeSeriesHash;
        if (view.type != net::MsgType::kFileHash && !behavioral) return;
        // FILE_H/TS_H content is "digest" from collectors and
        // "digest hint" from the observe WAL (hints are sanitized single
        // tokens). The hint is honored only for obs- stream records:
        // ingest datagrams arrive over (spoofable) UDP, and a forged
        // "digest EvilName" there must stay a parse failure, not name a
        // family.
        const bool from_wal =
            tail_ && tail_->current_file().starts_with(kObserveWalPrefix);
        // A record the liveness backstop already applied directly (the feed
        // failed to deliver it in its own journal cycle, e.g. a transient
        // read error) must not apply again on re-delivery — the double
        // count would diverge this leader from followers replaying the
        // same WAL exactly once.
        if (from_wal && !wal_fallback_seqs_.empty() &&
            wal_fallback_seqs_.erase(view.job_id) > 0) {
            return;
        }
        const std::string content = view.content_str();
        const auto space = from_wal ? content.find(' ') : std::string::npos;
        const auto digest = fuzzy::FuzzyDigest::parse(
            std::string_view(content).substr(0, space));
        std::string_view hint;
        if (space != std::string::npos) {
            hint = std::string_view(content).substr(space + 1);
        }
        const auto obs =
            behavioral ? master_.observe_behavior(digest, hint) : master_.observe(digest, hint);
        ++applied_total_;
        (behavioral ? feed_ts_hashes_ : feed_file_hashes_)
            .fetch_add(1, std::memory_order_relaxed);

        // A record of our own observe WAL may be one this cycle journaled:
        // resolve its waiter. Same obs- scoping as the hint: an ingest
        // datagram can never satisfy someone's promise.
        if (wal_replies_out_ != nullptr && from_wal) {
            const auto it = wal_pending_.find(view.job_id);
            if (it != wal_pending_.end()) {
                if (it->second.seq > wal_seq_high_) wal_seq_high_ = it->second.seq;
                if (it->second.reply) {
                    wal_replies_out_->emplace_back(std::move(it->second.reply),
                                                   resolve_applied(obs));
                }
                wal_pending_.erase(it);
            }
        }
    } catch (const util::Error&) {
        // Not a SIREN datagram / unparseable digest: the WAL is shared
        // with whatever else the ingest daemon journals — count and move on.
        feed_malformed_.fetch_add(1, std::memory_order_relaxed);
    }
}

Identified RecognitionService::resolve_applied(const recognize::Observation& obs) const {
    Identified result;
    result.family = obs.family;
    result.score = obs.best_score;
    result.new_family = obs.new_family;
    result.name = master_.family(obs.family).name;
    return result;
}

void RecognitionService::apply_direct(
    PendingObserve& pending,
    std::vector<std::pair<std::shared_ptr<std::promise<Identified>>, Identified>>& replies) {
    const auto obs = pending.behavioral
                         ? master_.observe_behavior(pending.digest, pending.name_hint)
                         : master_.observe(pending.digest, pending.name_hint);
    ++applied_total_;
    if (pending.reply) {
        replies.emplace_back(std::move(pending.reply), resolve_applied(obs));
    }
}

void RecognitionService::journal_and_apply(
    std::vector<PendingObserve>& batch,
    std::vector<std::pair<std::shared_ptr<std::promise<Identified>>, Identified>>& replies,
    std::uint64_t& unpublished_seq, bool stopping) {
    // Journal: one FILE_H (or TS_H for behavioral sightings) datagram per
    // observe, the seq riding as the job id so the feed delivery below can
    // be matched back to its waiter.
    std::string content;
    std::size_t journaled = 0;
    for (auto& pending : batch) {
        net::Message m;
        m.job_id = pending.seq;
        m.type = pending.behavioral ? net::MsgType::kTimeSeriesHash
                                    : net::MsgType::kFileHash;
        content = pending.digest.to_string();
        if (!pending.name_hint.empty()) {
            content.push_back(' ');
            content += recognize::sanitize_label(pending.name_hint);
        }
        m.content = content;
        // Injected journal failure: exercises the WAL fallback (direct
        // apply, wal_fallbacks counted) without needing real disk trouble.
        const bool journal_failed =
            SIREN_FAILPOINT("serve.wal.append").action == util::failpoint::Action::kError;
        if (!journal_failed && wal_->append(net::encode(m))) {
            wal_pending_.emplace(pending.seq, std::move(pending));
            ++journaled;
        } else {
            // Journal failure (disk trouble): the observe still has to
            // apply — degrade to the direct path. Followers will miss it,
            // which wal_fallbacks makes visible.
            wal_fallbacks_.fetch_add(1, std::memory_order_relaxed);
            if (pending.seq > unpublished_seq) unpublished_seq = pending.seq;
            apply_direct(pending, replies);
        }
    }
    observes_journaled_.fetch_add(journaled, std::memory_order_relaxed);
    wal_->sync();  // flush (+ fsync unless disabled): visible to the tail now

    // Forced drain: deliver the journaled records (and whatever the ingest
    // side appended) until every waiter resolved or the feed stops making
    // progress.
    wal_replies_out_ = &replies;
    wal_seq_high_ = unpublished_seq;
    const auto drain = [this](std::size_t budget) {
        return tail_->poll([this](std::string_view record) { apply_feed_record(record); },
                           budget);
    };
    while (!wal_pending_.empty() && drain(options_.feed_batch_max) > 0) {
    }
    if (stopping) {
        while (drain(options_.feed_batch_max) > 0) {
        }
    }
    wal_replies_out_ = nullptr;
    unpublished_seq = wal_seq_high_;

    // Liveness backstop: anything the feed failed to hand back (a transient
    // tail read error — the WAL was flushed before the drain) applies
    // directly so no observe_sync caller can hang on a lost promise. The
    // record is still durably journaled and will arrive through the feed
    // once the tail recovers; wal_fallback_seqs_ marks it so that delivery
    // is skipped instead of double-applied (which would silently diverge
    // this leader from its followers). Entries are erased on re-delivery,
    // so the set stays as small as the fallback burst itself.
    for (auto& [seq, pending] : wal_pending_) {
        wal_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        if (seq > unpublished_seq) unpublished_seq = seq;
        apply_direct(pending, replies);
        wal_fallback_seqs_.insert(seq);
    }
    wal_pending_.clear();
}

bool RecognitionService::publish(std::uint64_t applied_through) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto prev = snapshot_.load(std::memory_order_acquire);

    // Injected slow/failed copy — a publish abort keeps the previous
    // snapshot serving and leaves the writer's dirty state set, so a later
    // cycle retries. The boot publish is exempt: snapshot() must never
    // return null.
    if (const auto fp = SIREN_FAILPOINT("serve.publish.copy");
        fp.action == util::failpoint::Action::kError && prev != nullptr) {
        publish_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    auto snap = std::make_shared<RegistrySnapshot>();
    // O(delta) copy: chunk-pointer vectors copy; every chunk the writer
    // didn't touch since the previous publish is shared with it.
    snap->registry = master_;
    snap->version = publishes_.load(std::memory_order_relaxed) + 1;
    snap->applied = applied_total_;

    // Injected slow/failed swap: a delay stretches the window where
    // readers still serve the previous snapshot (staleness, never a torn
    // state — the swap itself stays one atomic store); an error drops the
    // assembled snapshot before it becomes visible.
    if (const auto fp = SIREN_FAILPOINT("serve.publish.swap");
        fp.action == util::failpoint::Action::kError && prev != nullptr) {
        publish_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    const std::shared_ptr<const RegistrySnapshot> published = std::move(snap);
    snapshot_.store(published, std::memory_order_release);
    publishes_.fetch_add(1, std::memory_order_relaxed);
    if (applied_through > 0) {
        applied_seq_.store(applied_through, std::memory_order_release);
    }
    // publish_ns covers the reader-facing critical path only (copy +
    // swap); the sharing tally below is telemetry, and at O(total chunks)
    // it would otherwise dominate the timing it is meant to explain.
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count());
    publish_ns_last_.store(ns, std::memory_order_relaxed);
    publish_ns_.fetch_add(ns, std::memory_order_relaxed);

    if (prev != nullptr) {
        const auto sharing = published->registry.sharing_with(prev->registry);
        shared_buckets_.store(sharing.shared_buckets, std::memory_order_relaxed);
        total_buckets_.store(sharing.total_buckets, std::memory_order_relaxed);
        shared_chunks_.store(sharing.shared_chunks, std::memory_order_relaxed);
        total_chunks_.store(sharing.total_chunks, std::memory_order_relaxed);
    }
    return true;
}

bool RecognitionService::write_checkpoint(std::string& error) {
    if (options_.checkpoint_path.empty()) {
        error = "no checkpoint path configured";
        return false;
    }
    std::ostringstream body;
    body << kCheckpointMagic << ' ' << kCheckpointVersion << '\n';
    body << "applied " << applied_total_ << '\n';
    if (tail_) {
        for (const auto& [name, offset] : tail_->offsets()) {
            body << "offset " << name << ' ' << offset << '\n';
        }
    }
    // Backstop-applied observes still ahead of the watermark (see
    // load_checkpoint): persisted so a restart skips their replay.
    for (const auto seq : wal_fallback_seqs_) {
        body << "fallback " << seq << '\n';
    }
    body << "registry\n";
    master_.save(body);
    return write_file_atomic(options_.checkpoint_path, body.view(), error);
}

void RecognitionService::writer_loop() {
    auto last_checkpoint = std::chrono::steady_clock::now();
    auto last_feed = std::chrono::steady_clock::time_point{};     // poll immediately
    auto last_publish = std::chrono::steady_clock::time_point{};  // publish immediately
    bool dirty = false;                   ///< applied but not yet published
    std::uint64_t unpublished_seq = 0;    ///< highest applied client seq

    std::vector<PendingObserve> batch;
    std::vector<std::pair<std::shared_ptr<std::promise<Identified>>, Identified>> replies;

    const auto drain_feed = [this](std::size_t budget) {
        return tail_ ? tail_->poll(
                           [this](std::string_view record) { apply_feed_record(record); },
                           budget)
                     : 0;
    };

    for (;;) {
        bool checkpoint_wanted = false;
        bool stopping = false;
        batch.clear();
        replies.clear();
        {
            std::unique_lock lock(queue_mutex_);
            queue_cv_.wait_for(lock, options_.writer_idle, [this] {
                return stop_.load(std::memory_order_relaxed) || !queue_.empty() ||
                       checkpoint_requested_;
            });
            batch.swap(queue_);
            checkpoint_wanted = checkpoint_requested_;
            checkpoint_requested_ = false;
            stopping = stop_.load(std::memory_order_relaxed);
        }
        if (!batch.empty()) applied_cv_.notify_all();  // queue room for blocked writers

        // Feed first, client observes second: segment records are older
        // (they were ingested before this loop iteration) and recovery
        // replays them in exactly this order.
        std::size_t fed = 0;
        bool polled_feed = false;
        const auto now = std::chrono::steady_clock::now();
        if (wal_ && !batch.empty()) {
            // Leader WAL mode: journal the batch and pull it back through
            // the feed — that drain doubles as this cycle's feed poll.
            const auto before = feed_records_.load(std::memory_order_relaxed);
            journal_and_apply(batch, replies, unpublished_seq, stopping);
            fed += feed_records_.load(std::memory_order_relaxed) - before;
            polled_feed = true;
            last_feed = now;
        } else if (tail_ && (stopping || now - last_feed >= options_.feed_poll)) {
            polled_feed = true;
            // One bounded poll per publish cycle; at shutdown, drain
            // everything the daemon managed to journal.
            std::size_t n = 0;
            do {
                n = drain_feed(options_.feed_batch_max);
                fed += n;
            } while (stopping && n > 0);
            last_feed = now;
        }

        if (!wal_) {
            for (auto& pending : batch) {
                unpublished_seq = pending.seq;
                apply_direct(pending, replies);
            }
        }
        observes_applied_.fetch_add(batch.size(), std::memory_order_relaxed);

        // Publish policy: every modifying cycle by default; under a
        // publish_interval the copy is amortized across batches. A sync
        // observe or shutdown always publishes — their contract is
        // read-your-writes on return.
        dirty = dirty || !batch.empty() || fed > 0;
        if (dirty && (!replies.empty() || stopping ||
                      std::chrono::steady_clock::now() - last_publish >=
                          options_.publish_interval)) {
            // A failed publish (injected fault) keeps dirty set: the
            // applied state is already in master_, only its visibility is
            // delayed until a later cycle's retry succeeds.
            if (publish(unpublished_seq)) {
                last_publish = std::chrono::steady_clock::now();
                dirty = false;
            }
        }

        {
            std::lock_guard lock(queue_mutex_);
            // flush() counts *completed feed polls*, not writer iterations
            // — an idle cycle that skipped the feed (poll cadence not due)
            // must not satisfy a caller waiting for journaled records.
            if (polled_feed || !tail_) ++feed_polls_done_;
            snapshot_dirty_ = dirty;
        }
        applied_cv_.notify_all();
        // Resolve observe_sync waiters only after the publish: the caller
        // must be able to identify() what it just observed.
        for (auto& [promise, result] : replies) {
            promise->set_value(std::move(result));
        }

        const bool interval_due =
            options_.checkpoint_interval.count() > 0 &&
            std::chrono::steady_clock::now() - last_checkpoint >= options_.checkpoint_interval &&
            !options_.checkpoint_path.empty();
        if (checkpoint_wanted || (interval_due && !stopping)) {
            std::string error;
            const bool ok = write_checkpoint(error);
            last_checkpoint = std::chrono::steady_clock::now();
            if (ok) {
                checkpoints_.fetch_add(1, std::memory_order_relaxed);
            } else {
                checkpoint_errors_.fetch_add(1, std::memory_order_relaxed);
            }
            {
                std::lock_guard lock(queue_mutex_);
                ++checkpoints_done_;
                checkpoint_ok_ = ok;
                checkpoint_error_ = error;
            }
            applied_cv_.notify_all();
        }

        if (stopping) break;
    }

    // Final checkpoint: the clean-shutdown state, watermark included.
    if (!options_.checkpoint_path.empty()) {
        std::string error;
        if (write_checkpoint(error)) {
            checkpoints_.fetch_add(1, std::memory_order_relaxed);
        } else {
            checkpoint_errors_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    {
        std::lock_guard lock(queue_mutex_);
        writer_done_ = true;
    }
    applied_cv_.notify_all();
}

std::optional<Identified> RecognitionService::identify(const fuzzy::FuzzyDigest& digest) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    const auto match = snap->registry.best_match(digest);
    if (!match) return std::nullopt;
    Identified result;
    result.family = match->family;
    result.score = match->best_score;
    result.name = snap->registry.family(match->family).name;
    return result;
}

std::optional<Identified> RecognitionService::identify_behavior(
    const fuzzy::FuzzyDigest& digest) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    const auto match = snap->registry.best_match_behavior(digest);
    if (!match) return std::nullopt;
    Identified result;
    result.family = match->family;
    result.score = match->best_score;
    result.name = snap->registry.family(match->family).name;
    return result;
}

std::vector<FusedIdentified> RecognitionService::identify_fused(
    const std::optional<fuzzy::FuzzyDigest>& content,
    const std::optional<fuzzy::FuzzyDigest>& behavior, std::size_t k) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<FusedIdentified> out;
    for (const auto& match : snap->registry.top_families_fused(
             content ? &*content : nullptr, behavior ? &*behavior : nullptr, k)) {
        FusedIdentified result;
        result.family = match.family;
        result.score = match.score;
        result.content_score = match.content_score;
        result.behavior_score = match.behavior_score;
        result.name = snap->registry.family(match.family).name;
        out.push_back(std::move(result));
    }
    return out;
}

std::vector<Identified> RecognitionService::top_n(const fuzzy::FuzzyDigest& digest,
                                                  std::size_t k) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<Identified> out;
    for (const auto& obs : snap->registry.top_families(digest, k)) {
        Identified result;
        result.family = obs.family;
        result.score = obs.best_score;
        result.name = snap->registry.family(obs.family).name;
        out.push_back(std::move(result));
    }
    return out;
}

std::vector<Identified> RecognitionService::top_n_behavior(const fuzzy::FuzzyDigest& digest,
                                                           std::size_t k) const {
    identifies_.fetch_add(1, std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<Identified> out;
    for (const auto& obs : snap->registry.top_families_behavior(digest, k)) {
        Identified result;
        result.family = obs.family;
        result.score = obs.best_score;
        result.name = snap->registry.family(obs.family).name;
        out.push_back(std::move(result));
    }
    return out;
}

std::vector<std::optional<Identified>> RecognitionService::identify_many(
    const std::vector<fuzzy::FuzzyDigest>& digests, util::ThreadPool* pool) const {
    identifies_.fetch_add(digests.size(), std::memory_order_relaxed);
    const auto snap = snapshot();
    std::vector<std::optional<Identified>> out(digests.size());
    const auto resolve = [&](std::size_t i) {
        const auto match = snap->registry.best_match(digests[i]);
        if (!match) return;
        Identified result;
        result.family = match->family;
        result.score = match->best_score;
        result.name = snap->registry.family(match->family).name;
        out[i] = std::move(result);
    };
    if (pool != nullptr && digests.size() > 1) {
        pool->parallel_for(digests.size(), resolve);
    } else {
        for (std::size_t i = 0; i < digests.size(); ++i) resolve(i);
    }
    return out;
}

std::optional<std::uint64_t> RecognitionService::enqueue_observe(fuzzy::FuzzyDigest digest,
                                                                 std::string name_hint,
                                                                 bool behavioral) {
    std::uint64_t seq = 0;
    {
        std::lock_guard lock(queue_mutex_);
        if (writer_done_ || stop_.load(std::memory_order_relaxed) ||
            queue_.size() >= options_.queue_capacity) {
            observes_dropped_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        seq = next_seq_++;
        queue_.push_back({std::move(digest), std::move(name_hint), seq, nullptr, behavioral});
    }
    observes_enqueued_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
    return seq;
}

Identified RecognitionService::enqueue_observe_sync(fuzzy::FuzzyDigest digest,
                                                    std::string name_hint, bool behavioral) {
    auto reply = std::make_shared<std::promise<Identified>>();
    auto future = reply->get_future();
    {
        std::unique_lock lock(queue_mutex_);
        applied_cv_.wait(lock, [this] {
            return writer_done_ || stop_.load(std::memory_order_relaxed) ||
                   queue_.size() < options_.queue_capacity;
        });
        if (writer_done_ || stop_.load(std::memory_order_relaxed)) {
            throw util::Error("recognition service is stopped");
        }
        queue_.push_back({std::move(digest), std::move(name_hint), next_seq_++, reply, behavioral});
    }
    observes_enqueued_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
    return future.get();
}

std::optional<std::uint64_t> RecognitionService::observe(fuzzy::FuzzyDigest digest,
                                                         std::string name_hint) {
    return enqueue_observe(std::move(digest), std::move(name_hint), false);
}

Identified RecognitionService::observe_sync(fuzzy::FuzzyDigest digest, std::string name_hint) {
    return enqueue_observe_sync(std::move(digest), std::move(name_hint), false);
}

std::optional<std::uint64_t> RecognitionService::observe_behavior(fuzzy::FuzzyDigest digest,
                                                                  std::string name_hint) {
    return enqueue_observe(std::move(digest), std::move(name_hint), true);
}

Identified RecognitionService::observe_behavior_sync(fuzzy::FuzzyDigest digest,
                                                     std::string name_hint) {
    return enqueue_observe_sync(std::move(digest), std::move(name_hint), true);
}

void RecognitionService::flush() {
    std::uint64_t seq_target = 0;
    std::uint64_t polls_target = 0;
    {
        std::lock_guard lock(queue_mutex_);
        seq_target = next_seq_ - 1;
        // Two completed poll cycles: one may already have been in flight
        // (and missed records written just before this call), the second
        // must have started after it — and therefore seen them.
        polls_target = feed_polls_done_ + (tail_ ? 2 : 1);
    }
    std::unique_lock lock(queue_mutex_);
    applied_cv_.wait(lock, [&] {
        return writer_done_ ||
               (applied_seq_.load(std::memory_order_acquire) >= seq_target &&
                feed_polls_done_ >= polls_target && !snapshot_dirty_);
    });
}

bool RecognitionService::checkpoint_now(std::string* error) {
    std::uint64_t generation = 0;
    {
        std::lock_guard lock(queue_mutex_);
        if (writer_done_) {
            if (error) *error = "recognition service is stopped";
            return false;
        }
        generation = checkpoints_done_;
        checkpoint_requested_ = true;
    }
    queue_cv_.notify_one();
    std::unique_lock lock(queue_mutex_);
    applied_cv_.wait(lock,
                     [&] { return writer_done_ || checkpoints_done_ > generation; });
    if (checkpoints_done_ <= generation) {
        if (error) *error = "recognition service stopped before the checkpoint";
        return false;
    }
    if (error) *error = checkpoint_error_;
    return checkpoint_ok_;
}

ServeCounters RecognitionService::counters() const {
    ServeCounters c;
    c.identifies = identifies_.load(std::memory_order_relaxed);
    c.observes_enqueued = observes_enqueued_.load(std::memory_order_relaxed);
    c.observes_dropped = observes_dropped_.load(std::memory_order_relaxed);
    c.observes_applied = observes_applied_.load(std::memory_order_relaxed);
    c.feed_records = feed_records_.load(std::memory_order_relaxed);
    c.feed_file_hashes = feed_file_hashes_.load(std::memory_order_relaxed);
    c.feed_ts_hashes = feed_ts_hashes_.load(std::memory_order_relaxed);
    c.feed_malformed = feed_malformed_.load(std::memory_order_relaxed);
    c.publishes = publishes_.load(std::memory_order_relaxed);
    c.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    c.checkpoint_errors = checkpoint_errors_.load(std::memory_order_relaxed);
    c.observes_journaled = observes_journaled_.load(std::memory_order_relaxed);
    c.wal_fallbacks = wal_fallbacks_.load(std::memory_order_relaxed);
    c.observes_shed = observes_shed_.load(std::memory_order_relaxed);
    c.publish_ns = publish_ns_.load(std::memory_order_relaxed);
    c.publish_ns_last = publish_ns_last_.load(std::memory_order_relaxed);
    c.publish_errors = publish_errors_.load(std::memory_order_relaxed);
    c.shared_buckets = shared_buckets_.load(std::memory_order_relaxed);
    c.total_buckets = total_buckets_.load(std::memory_order_relaxed);
    c.shared_chunks = shared_chunks_.load(std::memory_order_relaxed);
    c.total_chunks = total_chunks_.load(std::memory_order_relaxed);
    return c;
}

void RecognitionService::stop() {
    if (stopped_.exchange(true)) {
        if (writer_.joinable()) writer_.join();
        return;
    }
    {
        std::lock_guard lock(queue_mutex_);
        stop_.store(true, std::memory_order_relaxed);
    }
    queue_cv_.notify_all();
    applied_cv_.notify_all();
    if (writer_.joinable()) writer_.join();
}

}  // namespace siren::serve
