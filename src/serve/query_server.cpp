#include "serve/query_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <iterator>
#include <vector>

#include "serve/query_protocol.hpp"
#include "serve/recognition_service.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace {

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

QueryServer::QueryServer(RecognitionService& service, QueryServerOptions options)
    : service_(service), options_(std::move(options)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        throw util::SystemError("socket(): " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw util::SystemError("inet_pton(" + options_.bind_address + ") failed");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        throw util::SystemError("bind/listen(" + options_.bind_address + "): " + reason);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || event_fd_ < 0) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        if (epoll_fd_ >= 0) ::close(epoll_fd_);
        if (event_fd_ >= 0) ::close(event_fd_);
        throw util::SystemError("epoll/eventfd: " + reason);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = event_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

    batch_window_us_ = service_.options().coalesce.batch_window_us;
    batch_max_ = service_.options().coalesce.batch_max;
    coalesce_on_ = batch_window_us_ > 0 && batch_max_ > 0;
    shed_coalesce_depth_ = service_.options().coalesce.shed_coalesce_depth != 0
                               ? service_.options().coalesce.shed_coalesce_depth
                               : 8 * batch_max_;
    if (coalesce_on_) {
        // The coalescing window needs sub-millisecond expiry, which the
        // 200ms epoll_wait timeout cannot provide: a CLOCK_MONOTONIC
        // timerfd in the same epoll set wakes the loop exactly when the
        // oldest parked probe's window closes.
        timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
        if (timer_fd_ < 0) {
            const std::string reason = std::strerror(errno);
            ::close(listen_fd_);
            ::close(epoll_fd_);
            ::close(event_fd_);
            throw util::SystemError("timerfd_create: " + reason);
        }
        ev.data.fd = timer_fd_;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev);
    }

    loop_ = std::thread([this] { event_loop(); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() {
    if (stopped_.exchange(true)) {
        if (loop_.joinable()) loop_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof one);
    if (loop_.joinable()) loop_.join();
    for (auto& [fd, conn] : connections_) ::close(fd);
    connections_.clear();
    ::close(listen_fd_);
    ::close(epoll_fd_);
    ::close(event_fd_);
    if (timer_fd_ >= 0) ::close(timer_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = timer_fd_ = -1;
}

QueryServerStats QueryServer::stats() const {
    QueryServerStats s;
    s.connections = connections_total_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
    s.coalesced_probes = coalesced_probes_.load(std::memory_order_relaxed);
    s.shed_coalesce = shed_coalesce_.load(std::memory_order_relaxed);
    s.accept_stalls = accept_stalls_.load(std::memory_order_relaxed);
    return s;
}

void QueryServer::close_connection(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_.erase(fd);
}

bool QueryServer::flush_writes(int fd, Connection& conn) {
    while (conn.out_pos < conn.out.size()) {
        const ssize_t n = ::send(fd, conn.out.data() + conn.out_pos,
                                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Socket buffer full: park the remainder on EPOLLOUT and stop
            // watching EPOLLIN — backpressure. A client that pipelines
            // requests without reading replies must stall in its own send
            // path, not grow this connection's reply buffer without bound.
            if (!conn.want_write) {
                epoll_event ev{};
                ev.events = EPOLLOUT;
                ev.data.fd = fd;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
                conn.want_write = true;
            }
            return true;
        }
        return false;  // peer went away
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        conn.want_write = false;
    }
    return true;
}

bool QueryServer::process_frames(int fd, Connection& conn) {
    std::size_t consumed = 0;
    // Stop at the first parked write: requests already read stay buffered
    // in conn.in until the peer drains its replies.
    while (!conn.want_write) {
        std::size_t frame = 0;
        std::optional<std::string_view> payload;
        try {
            payload = parse_frame(std::string_view(conn.in).substr(consumed), frame);
        } catch (const util::ParseError&) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            close_connection(fd);
            return false;
        }
        if (!payload) break;
        if (coalesce_on_ && coalesce_frame(fd, conn, *payload)) {
            consumed += frame;
            requests_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        // A non-coalescible frame must not answer before the connection's
        // parked probes do: leave it buffered until the batch replies.
        if (conn.pending_replies > 0) break;
        consumed += frame;
        requests_.fetch_add(1, std::memory_order_relaxed);
        append_frame(conn.out, execute_with_stats(*payload));
        if (!flush_writes(fd, conn)) {
            close_connection(fd);
            return false;
        }
    }
    if (consumed > 0) conn.in.erase(0, consumed);
    return true;
}

std::string QueryServer::execute_with_stats(std::string_view payload) {
    std::string response = execute_query(service_, payload);
    // The service's STATS body is extended with the server-level view:
    // which SIMD tier the similarity scan dispatched to, and how much the
    // coalescer is actually batching.
    if (util::trim(payload) == "STATS" && response.starts_with("OK\n")) {
        response += "simd_level ";
        response += util::simd::level_name(util::simd::active_level());
        response.push_back('\n');
        const auto line = [&response](std::string_view key, std::uint64_t value) {
            response += key;
            response.push_back(' ');
            util::append_number(response, value);
            response.push_back('\n');
        };
        const std::uint64_t batches = coalesced_batches_.load(std::memory_order_relaxed);
        const std::uint64_t probes = coalesced_probes_.load(std::memory_order_relaxed);
        line("coalesced_batches", batches);
        line("coalesced_probes", probes);
        // Mean batch fill as a percentage of batch_max: 100 means every
        // flush went out full, low values mean the window is expiring
        // before traffic fills it.
        line("coalesce_occupancy",
             batches > 0 && batch_max_ > 0 ? probes * 100 / (batches * batch_max_) : 0);
        line("shed_coalesce", shed_coalesce_.load(std::memory_order_relaxed));
        line("accept_stalls", accept_stalls_.load(std::memory_order_relaxed));
    }
    return response;
}

bool QueryServer::coalesce_frame(int fd, Connection& conn, std::string_view payload) {
    // Only singleton IDENTIFY/IDENTIFYB frames coalesce — they are the
    // high-QPS hot path and their replies are context-free. Everything
    // else (OBSERVE, STATS, batch identifies, malformed requests) takes
    // the inline path so its error/result semantics stay untouched.
    const std::string_view request = util::trim(payload);
    const std::size_t space = request.find(' ');
    if (space == std::string_view::npos) return false;
    const std::string_view verb = request.substr(0, space);
    if (verb != "IDENTIFY" && verb != "IDENTIFYB") return false;
    const std::string_view rest = util::trim(request.substr(space + 1));
    if (rest.empty() || rest.find(' ') != std::string_view::npos) return false;

    // Admission control: past the in-flight bound, shed instead of parking
    // more identify work. The shed reply is itself parked (error
    // pre-rendered, immediate deadline) so per-connection reply order
    // holds even when earlier probes of this connection are still waiting.
    if (pending_batch_.size() >= shed_coalesce_depth_) {
        shed_coalesce_.fetch_add(1, std::memory_order_relaxed);
        PendingProbe shed;
        shed.fd = fd;
        shed.gen = conn.gen;
        shed.error_reply = std::string("ERR ") + std::string(kOverloadedError) +
                           ": identify coalescer is full, retry later";
        shed.deadline = std::chrono::steady_clock::now();
        pending_batch_.push_back(std::move(shed));
        ++conn.pending_replies;
        return true;
    }

    PendingProbe probe;
    probe.fd = fd;
    probe.gen = conn.gen;
    probe.batch_format = verb == "IDENTIFYB";
    try {
        probe.digest = fuzzy::FuzzyDigest::parse(rest);
    } catch (const util::Error& e) {
        // Parked with the error pre-rendered: the reply still goes out in
        // arrival order with the rest of the batch.
        probe.error_reply = std::string("ERR ") + e.what();
    }
    probe.deadline =
        std::chrono::steady_clock::now() + std::chrono::microseconds(batch_window_us_);
    pending_batch_.push_back(std::move(probe));
    ++conn.pending_replies;
    return true;
}

void QueryServer::flush_batch() {
    const std::size_t take = std::min(batch_max_, pending_batch_.size());
    if (take == 0) return;
    std::vector<PendingProbe> batch;
    batch.reserve(take);
    std::move(pending_batch_.begin(),
              pending_batch_.begin() + static_cast<std::ptrdiff_t>(take),
              std::back_inserter(batch));
    pending_batch_.erase(pending_batch_.begin(),
                         pending_batch_.begin() + static_cast<std::ptrdiff_t>(take));

    std::vector<fuzzy::FuzzyDigest> digests;
    digests.reserve(batch.size());
    for (auto& probe : batch) {
        // Skip probes whose connection died while parked; the (fd, gen)
        // pair guards against the fd number having been reused.
        const auto it = connections_.find(probe.fd);
        if (it == connections_.end() || it->second.gen != probe.gen) {
            probe.fd = -1;
            continue;
        }
        if (probe.digest) {
            probe.result_index = static_cast<int>(digests.size());
            digests.push_back(*probe.digest);
        }
    }

    std::vector<std::optional<Identified>> matches;
    if (!digests.empty()) {
        matches = service_.identify_many(digests, service_.batch_pool());
        coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
        coalesced_probes_.fetch_add(digests.size(), std::memory_order_relaxed);
    }

    for (const auto& probe : batch) {
        if (probe.fd < 0) continue;
        // Re-find per probe: an earlier reply's failed flush may have
        // closed this connection within the same loop.
        const auto it = connections_.find(probe.fd);
        if (it == connections_.end() || it->second.gen != probe.gen) continue;
        Connection& conn = it->second;
        if (conn.pending_replies > 0) --conn.pending_replies;
        std::string reply;
        if (!probe.error_reply.empty()) {
            reply = probe.error_reply;
        } else {
            const auto& match = matches[static_cast<std::size_t>(probe.result_index)];
            reply = probe.batch_format
                        ? format_identify_many_reply({match})
                        : format_identify_reply(match);
        }
        append_frame(conn.out, reply);
        if (!flush_writes(probe.fd, conn)) close_connection(probe.fd);
    }

    // Batch replies may have unblocked frames that arrived behind a parked
    // probe on the same connection.
    for (auto it = connections_.begin(); it != connections_.end();) {
        const int fd = it->first;
        Connection& conn = it->second;
        ++it;  // process_frames may erase this entry
        if (conn.pending_replies == 0 && !conn.want_write && !conn.in.empty()) {
            process_frames(fd, conn);
        }
    }
}

void QueryServer::run_coalescer() {
    if (!coalesce_on_) return;
    while (pending_batch_.size() >= batch_max_) flush_batch();
    const auto now = std::chrono::steady_clock::now();
    while (!pending_batch_.empty() && pending_batch_.front().deadline <= now) flush_batch();

    // Arm (or disarm) the one-shot window timer for the oldest survivor.
    itimerspec spec{};
    if (!pending_batch_.empty()) {
        auto wait = pending_batch_.front().deadline - std::chrono::steady_clock::now();
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count();
        if (ns < 1) ns = 1;  // zero disarms; the deadline is due now
        spec.it_value.tv_sec = static_cast<time_t>(ns / 1000000000);
        spec.it_value.tv_nsec = static_cast<long>(ns % 1000000000);
    }
    ::timerfd_settime(timer_fd_, 0, &spec, nullptr);
}

void QueryServer::handle_readable(int fd, Connection& conn) {
    char buf[16 << 10];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_connection(fd);  // orderly shutdown or error
        return;
    }
    process_frames(fd, conn);
}

void QueryServer::event_loop() {
    std::vector<epoll_event> events(64);
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                                   200);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        // Clients first, accepts last: a connection closed in this batch
        // frees its fd number, and accepting mid-batch could hand that
        // number to a new client that the batch's remaining (stale) events
        // would then hit.
        bool accept_ready = false;
        for (int i = 0; i < n && !stopping_.load(std::memory_order_acquire); ++i) {
            const int fd = events[i].data.fd;
            if (fd == event_fd_) continue;  // stop signal: loop condition exits
            if (fd == timer_fd_) {
                // Coalescing window expired; run_coalescer below flushes.
                std::uint64_t expirations = 0;
                [[maybe_unused]] const ssize_t r =
                    ::read(timer_fd_, &expirations, sizeof expirations);
                continue;
            }
            if (fd == listen_fd_) {
                accept_ready = true;
                continue;
            }

            const auto it = connections_.find(fd);
            if (it == connections_.end()) continue;  // closed earlier this wake-up
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(fd);
                continue;
            }
            if ((events[i].events & EPOLLOUT) != 0) {
                if (!flush_writes(fd, it->second)) {
                    close_connection(fd);
                    continue;
                }
                // Writes drained: serve the requests that backpressure
                // left buffered (also re-arms EPOLLIN via flush_writes).
                if (!it->second.want_write && !process_frames(fd, it->second)) continue;
            }
            if ((events[i].events & EPOLLIN) != 0) handle_readable(fd, it->second);
        }

        // All flushing happens here, once per wake-up: frames parked during
        // the event pass above get one shot at riding the same batch, and
        // process_frames never recurses through a flush.
        run_coalescer();

        // Re-arm a listener that fd exhaustion disarmed once the cooldown
        // passed (some fds have likely been released by then; if not, the
        // next accept disarms again).
        if (!listener_armed_ && std::chrono::steady_clock::now() >= accept_rearm_at_ &&
            !stopping_.load(std::memory_order_acquire)) {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.fd = listen_fd_;
            if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
                listener_armed_ = true;
                accept_ready = true;  // drain whatever queued while disarmed
            }
        }

        if (accept_ready && !stopping_.load(std::memory_order_acquire)) {
            for (;;) {
                const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                             SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (client < 0) {
                    if (errno == EMFILE || errno == ENFILE) {
                        // fd exhaustion: accept4 will keep failing without
                        // consuming the backlog, and the level-triggered
                        // listener would wake every epoll_wait into a hot
                        // spin. Take the listener out of the set briefly;
                        // established connections keep being served.
                        accept_stalls_.fetch_add(1, std::memory_order_relaxed);
                        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
                        listener_armed_ = false;
                        accept_rearm_at_ = std::chrono::steady_clock::now() +
                                           std::chrono::milliseconds(50);
                    }
                    break;  // EAGAIN or transient error
                }
                if (connections_.size() >= options_.max_connections) {
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    ::close(client);
                    continue;
                }
                const int one = 1;
                ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
                epoll_event ev{};
                ev.events = EPOLLIN;
                ev.data.fd = client;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
                Connection conn;
                conn.gen = next_gen_++;
                connections_.emplace(client, std::move(conn));
                connections_total_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

}  // namespace siren::serve
