#include "serve/query_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "serve/query_protocol.hpp"
#include "util/error.hpp"

namespace siren::serve {

namespace {

bool set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

QueryServer::QueryServer(RecognitionService& service, QueryServerOptions options)
    : service_(service), options_(std::move(options)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        throw util::SystemError("socket(): " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        throw util::SystemError("inet_pton(" + options_.bind_address + ") failed");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0 || !set_nonblocking(listen_fd_)) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        throw util::SystemError("bind/listen(" + options_.bind_address + "): " + reason);
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epoll_fd_ < 0 || event_fd_ < 0) {
        const std::string reason = std::strerror(errno);
        ::close(listen_fd_);
        if (epoll_fd_ >= 0) ::close(epoll_fd_);
        if (event_fd_ >= 0) ::close(event_fd_);
        throw util::SystemError("epoll/eventfd: " + reason);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = event_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

    loop_ = std::thread([this] { event_loop(); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() {
    if (stopped_.exchange(true)) {
        if (loop_.joinable()) loop_.join();
        return;
    }
    stopping_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof one);
    if (loop_.joinable()) loop_.join();
    for (auto& [fd, conn] : connections_) ::close(fd);
    connections_.clear();
    ::close(listen_fd_);
    ::close(epoll_fd_);
    ::close(event_fd_);
    listen_fd_ = epoll_fd_ = event_fd_ = -1;
}

QueryServerStats QueryServer::stats() const {
    QueryServerStats s;
    s.connections = connections_total_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.requests = requests_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    return s;
}

void QueryServer::close_connection(int fd) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_.erase(fd);
}

bool QueryServer::flush_writes(int fd, Connection& conn) {
    while (conn.out_pos < conn.out.size()) {
        const ssize_t n = ::send(fd, conn.out.data() + conn.out_pos,
                                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
        if (n > 0) {
            conn.out_pos += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Socket buffer full: park the remainder on EPOLLOUT and stop
            // watching EPOLLIN — backpressure. A client that pipelines
            // requests without reading replies must stall in its own send
            // path, not grow this connection's reply buffer without bound.
            if (!conn.want_write) {
                epoll_event ev{};
                ev.events = EPOLLOUT;
                ev.data.fd = fd;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
                conn.want_write = true;
            }
            return true;
        }
        return false;  // peer went away
    }
    conn.out.clear();
    conn.out_pos = 0;
    if (conn.want_write) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
        conn.want_write = false;
    }
    return true;
}

bool QueryServer::process_frames(int fd, Connection& conn) {
    std::size_t consumed = 0;
    // Stop at the first parked write: requests already read stay buffered
    // in conn.in until the peer drains its replies.
    while (!conn.want_write) {
        std::size_t frame = 0;
        std::optional<std::string_view> payload;
        try {
            payload = parse_frame(std::string_view(conn.in).substr(consumed), frame);
        } catch (const util::ParseError&) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            close_connection(fd);
            return false;
        }
        if (!payload) break;
        consumed += frame;
        requests_.fetch_add(1, std::memory_order_relaxed);
        append_frame(conn.out, execute_query(service_, *payload));
        if (!flush_writes(fd, conn)) {
            close_connection(fd);
            return false;
        }
    }
    if (consumed > 0) conn.in.erase(0, consumed);
    return true;
}

void QueryServer::handle_readable(int fd, Connection& conn) {
    char buf[16 << 10];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        close_connection(fd);  // orderly shutdown or error
        return;
    }
    process_frames(fd, conn);
}

void QueryServer::event_loop() {
    std::vector<epoll_event> events(64);
    while (!stopping_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                                   200);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        // Clients first, accepts last: a connection closed in this batch
        // frees its fd number, and accepting mid-batch could hand that
        // number to a new client that the batch's remaining (stale) events
        // would then hit.
        bool accept_ready = false;
        for (int i = 0; i < n && !stopping_.load(std::memory_order_acquire); ++i) {
            const int fd = events[i].data.fd;
            if (fd == event_fd_) continue;  // stop signal: loop condition exits
            if (fd == listen_fd_) {
                accept_ready = true;
                continue;
            }

            const auto it = connections_.find(fd);
            if (it == connections_.end()) continue;  // closed earlier this wake-up
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(fd);
                continue;
            }
            if ((events[i].events & EPOLLOUT) != 0) {
                if (!flush_writes(fd, it->second)) {
                    close_connection(fd);
                    continue;
                }
                // Writes drained: serve the requests that backpressure
                // left buffered (also re-arms EPOLLIN via flush_writes).
                if (!it->second.want_write && !process_frames(fd, it->second)) continue;
            }
            if ((events[i].events & EPOLLIN) != 0) handle_readable(fd, it->second);
        }

        if (accept_ready && !stopping_.load(std::memory_order_acquire)) {
            for (;;) {
                const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                             SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (client < 0) break;  // EAGAIN or transient error
                if (connections_.size() >= options_.max_connections) {
                    rejected_.fetch_add(1, std::memory_order_relaxed);
                    ::close(client);
                    continue;
                }
                const int one = 1;
                ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
                epoll_event ev{};
                ev.events = EPOLLIN;
                ev.data.fd = client;
                ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev);
                connections_.emplace(client, Connection{});
                connections_total_.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }
}

}  // namespace siren::serve
