#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fuzzy/ctph.hpp"

namespace siren::serve {

class RecognitionService;

/// Tuning for one QueryServer.
struct QueryServerOptions {
    /// TCP port; 0 binds an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// IPv4 address to bind; loopback by default (tests, single node), a
    /// deployed daemon sets "0.0.0.0".
    std::string bind_address = "127.0.0.1";
    /// Accepted connections beyond this are closed immediately (counted).
    std::size_t max_connections = 256;
};

/// Aggregated counters.
struct QueryServerStats {
    std::uint64_t connections = 0;       ///< accepted
    std::uint64_t rejected = 0;          ///< closed at accept: connection limit
    std::uint64_t requests = 0;          ///< frames executed
    std::uint64_t protocol_errors = 0;   ///< oversize/garbage frames (connection dropped)
    std::uint64_t coalesced_batches = 0; ///< identify_many flushes of parked probes
    std::uint64_t coalesced_probes = 0;  ///< singleton probes that rode a coalesced batch
    std::uint64_t shed_coalesce = 0;     ///< probes refused "ERR overloaded": coalescer full
    std::uint64_t accept_stalls = 0;     ///< listener disarmed: fd exhaustion (EMFILE/ENFILE)
};

/// The TCP face of a RecognitionService: one epoll event-loop thread
/// multiplexing the listener and every client connection, modeled on the
/// ingest daemon's shard loops. Requests use the length-framed text
/// protocol of query_protocol.hpp; responses are written back on the same
/// connection, with partial writes parked on EPOLLOUT.
///
/// Identify queries execute inline on the event loop — they are lock-free
/// snapshot reads, so one loop thread sustains high QPS; the one blocking
/// verb (OBSERVE, synchronous by design) waits on the writer thread for a
/// publish cycle, which bounds the stall to the writer's batch cadence.
class QueryServer {
public:
    /// Binds and starts the loop thread; throws util::SystemError when the
    /// socket cannot be created/bound.
    QueryServer(RecognitionService& service, QueryServerOptions options = {});
    ~QueryServer();

    QueryServer(const QueryServer&) = delete;
    QueryServer& operator=(const QueryServer&) = delete;

    std::uint16_t port() const { return port_; }

    /// Close the listener and every connection, join the loop; idempotent.
    void stop();

    QueryServerStats stats() const;

private:
    struct Connection {
        std::string in;        ///< bytes read, not yet framed
        std::string out;       ///< frames pending write
        std::size_t out_pos = 0;
        bool want_write = false;
        /// Monotonic accept generation: parked batch entries name their
        /// connection as (fd, gen), so an fd reused by a later accept can
        /// never receive a predecessor's reply.
        std::uint64_t gen = 0;
        /// Probes of this connection parked in the coalescing batch. While
        /// nonzero, non-coalescible frames stay buffered (reply order).
        std::size_t pending_replies = 0;
    };

    /// One singleton IDENTIFY frame parked for the coalesced batch.
    struct PendingProbe {
        int fd = -1;
        std::uint64_t gen = 0;
        bool batch_format = false;  ///< IDENTIFYB: counted reply framing
        std::optional<fuzzy::FuzzyDigest> digest;  ///< nullopt: error_reply answers
        std::string error_reply;
        std::chrono::steady_clock::time_point deadline{};
        int result_index = -1;  ///< slot in the batch's identify_many result
    };

    void event_loop();
    void handle_readable(int fd, Connection& conn);
    /// Execute buffered frames until the first parked write (backpressure);
    /// false when the connection was closed.
    bool process_frames(int fd, Connection& conn);
    bool flush_writes(int fd, Connection& conn);
    void close_connection(int fd);

    /// execute_query + the server-level STATS lines (simd_level and the
    /// coalescer counters).
    std::string execute_with_stats(std::string_view payload);
    /// Park a singleton IDENTIFY/IDENTIFYB frame in the coalescing batch;
    /// false when the frame is not coalescible and must execute inline.
    bool coalesce_frame(int fd, Connection& conn, std::string_view payload);
    /// Resolve up to batch_max parked probes through one identify_many and
    /// reply per connection, FIFO (per-connection order is preserved).
    void flush_batch();
    /// End-of-wake coalescer duty: flush full/expired batches, then arm the
    /// window timer for whatever stays parked.
    void run_coalescer();

    RecognitionService& service_;
    QueryServerOptions options_;
    std::uint16_t port_ = 0;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int event_fd_ = -1;  ///< stop signal
    int timer_fd_ = -1;  ///< coalescing window (only when coalescing is on)
    std::map<int, Connection> connections_;
    std::thread loop_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    bool coalesce_on_ = false;
    std::uint32_t batch_window_us_ = 0;
    std::size_t batch_max_ = 0;
    /// Parked probes at/above this bound shed with "ERR overloaded"
    /// (ServeOptions::shed_coalesce_depth, default 8 * batch_max).
    std::size_t shed_coalesce_depth_ = 0;
    std::vector<PendingProbe> pending_batch_;
    std::uint64_t next_gen_ = 1;

    /// Accepts are disarmed (listener out of the epoll set) after
    /// EMFILE/ENFILE until the re-arm deadline; prevents the level-
    /// triggered listener from spinning the loop while fds are exhausted.
    bool listener_armed_ = true;
    std::chrono::steady_clock::time_point accept_rearm_at_{};

    std::atomic<std::uint64_t> connections_total_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
    std::atomic<std::uint64_t> coalesced_batches_{0};
    std::atomic<std::uint64_t> coalesced_probes_{0};
    std::atomic<std::uint64_t> shed_coalesce_{0};
    std::atomic<std::uint64_t> accept_stalls_{0};
};

}  // namespace siren::serve
