#include "serve/sharded_client.hpp"

#include <algorithm>
#include <utility>

#include "fuzzy/ctph.hpp"
#include "serve/query_protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace {

/// Per-shard ranking depth of a both-channel fan-out (see identify()).
constexpr std::size_t kFusedFanDepth = 4096;

}  // namespace

ShardedClient::ShardedClient(PartitionMap map, ShardedClientOptions options)
    : map_(std::move(map)), options_(options) {
    adopt(std::move(map_));  // builds the initial shard slots
}

void ShardedClient::adopt(PartitionMap map) {
    std::vector<ShardSlot> slots;
    slots.reserve(map.shard_count());
    for (const auto& shard : map.shards()) {
        ShardSlot slot;
        slot.id = shard.id;
        slot.endpoints = shard.replicas();
        // A shard whose replica set is unchanged keeps its connected
        // client — a rebalance that only moved key ranges costs no
        // reconnects.
        for (auto& old : slots_) {
            if (old.id == shard.id && old.endpoints == slot.endpoints) {
                slot.client = std::move(old.client);
                break;
            }
        }
        slots.push_back(std::move(slot));
    }
    slots_ = std::move(slots);
    map_ = std::move(map);
}

ReplicaClient& ShardedClient::shard_client(std::uint32_t shard_id) {
    for (auto& slot : slots_) {
        if (slot.id != shard_id) continue;
        if (!slot.client) {
            slot.client = std::make_unique<ReplicaClient>(slot.endpoints, options_.replica);
        }
        return *slot.client;
    }
    throw util::Error("sharded client: no shard " + std::to_string(shard_id) + " in map v" +
                      std::to_string(map_.version()));
}

std::vector<FusedIdentified> ShardedClient::identify(const Probe& probe) {
    if (probe.content.empty() && probe.behavior.empty()) {
        throw util::Error("identify: a probe needs at least one digest");
    }
    // Owners of every ladder the probe can score on: ≤3 per channel.
    std::vector<std::uint32_t> targets;
    const auto add_ladder = [&](const std::string& digest) {
        const auto bs = fuzzy::FuzzyDigest::parse(digest).block_size;
        for (const auto owner : map_.shards_for_probe(bs)) {
            if (std::find(targets.begin(), targets.end(), owner) == targets.end()) {
                targets.push_back(owner);
            }
        }
    };
    if (!probe.content.empty()) add_ladder(probe.content);
    if (!probe.behavior.empty()) add_ladder(probe.behavior);
    std::sort(targets.begin(), targets.end());

    if (targets.size() == 1) return shard_client(targets.front()).identify(probe);

    // Per-shard request depth. Single-channel rankings merge exactly at
    // depth k: a family's channel score is achieved on the one shard
    // holding its best in-ladder exemplar, and anything beating it there
    // beats it globally too. A both-channel ranking can instead promote a
    // family sitting below k on every individual shard (strong content on
    // one shard, strong behavior on another), so the fused fan-out fetches
    // deep rankings and re-fuses from the merged channel maxima; 4096
    // families per shard keeps the counted reply well under the frame cap.
    const bool both = !probe.content.empty() && !probe.behavior.empty();
    Probe fan = probe;
    if (both && fan.k < kFusedFanDepth) fan.k = kFusedFanDepth;

    std::vector<std::vector<FusedIdentified>> per_shard;
    per_shard.reserve(targets.size());
    for (const auto shard_id : targets) {
        per_shard.push_back(shard_client(shard_id).identify(fan));
    }
    return merge_rankings(per_shard, both, probe.k);
}

std::vector<FusedIdentified> ShardedClient::merge_rankings(
    const std::vector<std::vector<FusedIdentified>>& per_shard, bool both_probed,
    std::size_t k, int content_weight, int behavior_weight) {
    // Group by family NAME: family ids are registry-local and collide
    // across shards. Keep each channel's best score; the reported family
    // id is the best contributor's (display only).
    std::vector<FusedIdentified> merged;
    for (const auto& ranking : per_shard) {
        for (const auto& match : ranking) {
            FusedIdentified* slot = nullptr;
            for (auto& existing : merged) {
                if (existing.name == match.name) {
                    slot = &existing;
                    break;
                }
            }
            if (slot == nullptr) {
                merged.push_back(match);
                continue;
            }
            slot->content_score = std::max(slot->content_score, match.content_score);
            slot->behavior_score = std::max(slot->behavior_score, match.behavior_score);
        }
    }
    // Re-fuse from the merged channel maxima — the same integer combiner
    // recognize::Registry::top_families_fused applies, so the merged
    // ranking matches what one registry holding everything would emit.
    for (auto& match : merged) {
        if (both_probed) {
            match.score = (content_weight * match.content_score +
                           behavior_weight * match.behavior_score) /
                          (content_weight + behavior_weight);
        } else {
            match.score = std::max(match.content_score, match.behavior_score);
        }
    }
    std::sort(merged.begin(), merged.end(), [](const FusedIdentified& a, const FusedIdentified& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.name < b.name;
    });
    if (merged.size() > k) merged.resize(k);
    return merged;
}

Identified ShardedClient::observe(std::string_view digest, std::string_view hint) {
    return observe_routed(digest, hint, false);
}

Identified ShardedClient::observe_behavior(std::string_view digest, std::string_view hint) {
    return observe_routed(digest, hint, true);
}

Identified ShardedClient::observe_routed(std::string_view digest, std::string_view hint,
                                         bool behavioral) {
    const auto bs = fuzzy::FuzzyDigest::parse(digest).block_size;
    for (std::size_t attempt = 0;; ++attempt) {
        auto& client = shard_client(map_.owner_of(bs));
        try {
            return behavioral ? client.observe_behavior(digest, hint)
                              : client.observe(digest, hint);
        } catch (const util::Error& e) {
            if (std::string_view(e.what()).find(kWrongShardError) == std::string_view::npos ||
                attempt >= options_.max_redirects) {
                throw;
            }
            // Stale map: a rebalance moved this range. Refresh and
            // re-route; if the fleet serves the same (or no) map, rethrow
            // rather than hammer the same wrong owner.
            ++redirects_followed_;
            if (!refresh_map()) throw;
        }
    }
}

bool ShardedClient::refresh_map() {
    // Any shard serves PARTMAP; sweep until one answers. Higher version
    // wins — a shard that has not heard of the rebalance yet returns the
    // old map, which is ignored.
    std::optional<PartitionMap> best;
    for (auto& slot : slots_) {
        try {
            auto text = shard_client(slot.id).partition_map_text();
            auto candidate = PartitionMap::parse(text);
            if (!best || candidate.version() > best->version()) {
                best.emplace(std::move(candidate));
            }
        } catch (const util::Error&) {
            continue;  // dead or unpartitioned shard; try the next
        }
    }
    if (!best || best->version() <= map_.version()) return false;
    adopt(std::move(*best));
    return true;
}

}  // namespace siren::serve
