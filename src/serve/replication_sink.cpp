#include "serve/replication.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <vector>

#include "hashing/crc32c.hpp"
#include "net/tcp.hpp"
#include "serve/query_protocol.hpp"
#include "storage/segment.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// ReplicationSink

ReplicationSink::ReplicationSink(std::string directory) : directory_(std::move(directory)) {
    std::error_code ec;
    fs::create_directories(directory_, ec);
    if (ec) {
        throw util::SystemError("replication sink: cannot create " + directory_ + ": " +
                                ec.message());
    }
}

std::string ReplicationSink::subscribe_payload() const {
    // The watermark must fit one protocol frame. Past the cap (hundreds of
    // thousands of files — a directory compaction should have culled long
    // before), remaining files are simply omitted: an omitted file ships
    // again from byte 0 and the duplicate-chunk path below skips what is
    // already on disk, so the failure mode is wasted bandwidth on one
    // reconnect, never a wedged subscription.
    constexpr std::size_t kPayloadCap = kMaxReplicationFrameBytes - 512;
    std::string out = "SUBSCRIBE\n";
    for (const auto& path : storage::list_segments(directory_)) {
        const std::string name = fs::path(path).filename().string();
        if (!valid_segment_name(name)) continue;
        std::error_code ec;
        const std::uint64_t size = fs::file_size(path, ec);
        if (ec) continue;
        if (out.size() + name.size() + 32 > kPayloadCap) break;
        out += "have ";
        out += name;
        out.push_back(' ');
        util::append_number(out, size);
        out.push_back('\n');
    }
    return out;
}

bool ReplicationSink::apply_chunk(std::string_view payload, std::string& error) {
    const auto newline = payload.find('\n');
    if (newline == std::string_view::npos) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        error = "replication frame has no header line";
        return false;
    }
    std::vector<std::string_view> words;
    util::split_view_into(payload.substr(0, newline), ' ', words);
    long offset_value = 0;
    long crc_value = 0;
    if (words.size() != 4 || words[0] != "DATA" || !valid_segment_name(words[1]) ||
        !util::parse_decimal(words[2], offset_value) || offset_value < 0 ||
        !util::parse_decimal(words[3], crc_value) || crc_value < 0 ||
        crc_value > 0xFFFFFFFFL) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        error = "malformed DATA header";
        return false;
    }
    const std::string name(words[1]);
    const auto offset = static_cast<std::uint64_t>(offset_value);
    std::string_view bytes = payload.substr(newline + 1);
    if (bytes.empty()) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        error = "empty DATA chunk";
        return false;
    }
    if (hash::crc32c(bytes) != static_cast<std::uint32_t>(crc_value)) {
        // Torn/corrupted chunk: nothing after it on this stream can be
        // trusted — the caller drops the connection and resubscribes from
        // the local watermark, which this chunk never advanced.
        stats_.crc_failures.fetch_add(1, std::memory_order_relaxed);
        error = "chunk crc mismatch for " + name;
        return false;
    }

    const std::string path = directory_ + "/" + name;
    std::error_code ec;
    std::uint64_t local = fs::file_size(path, ec);
    if (ec) local = 0;  // file does not exist yet

    if (offset > local) {
        // A gap would leave a hole the segment framing can never recover
        // from; only an out-of-sync source produces one.
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        error = "offset gap for " + name + " (local " + std::to_string(local) + ", chunk at " +
                std::to_string(offset) + ")";
        return false;
    }
    if (offset + bytes.size() <= local) {
        // Entirely re-shipped (reconnect race): already on disk.
        stats_.duplicate_bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
        stats_.chunks.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    const std::size_t overlap = static_cast<std::size_t>(local - offset);
    stats_.duplicate_bytes.fetch_add(overlap, std::memory_order_relaxed);
    bytes.remove_prefix(overlap);

    // O_APPEND, not pwrite-at-offset: the file size *is* the watermark, so
    // appending exactly the non-overlapping suffix keeps it consistent
    // even if an earlier run crashed mid-append.
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
        stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
        error = "open(" + path + "): " + std::strerror(errno);
        return false;
    }
    const char* p = bytes.data();
    std::size_t remaining = bytes.size();
    while (remaining > 0) {
        ssize_t n;
        if (const auto fp = SIREN_FAILPOINT("replication.sink.write")) {
            if (fp.action == util::failpoint::Action::kShortWrite && remaining > 1) {
                // A real partial append: the landed prefix extends the
                // watermark, the rest is re-requested on resubscribe.
                const ssize_t wrote = ::write(fd, p, remaining / 2);
                if (wrote > 0) {
                    p += wrote;
                    remaining -= static_cast<std::size_t>(wrote);
                }
            }
            errno = fp.err != 0 ? fp.err : ENOSPC;
            n = -1;
        } else {
            n = ::write(fd, p, remaining);
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            // A partial append is safe: the bytes that did land extend the
            // watermark and the rest is re-requested on reconnect.
            stats_.io_errors.fetch_add(1, std::memory_order_relaxed);
            error = "write(" + path + "): " + std::strerror(errno);
            ::close(fd);
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    ::close(fd);
    stats_.chunks.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes.fetch_add(bytes.size(), std::memory_order_relaxed);
    return true;
}

// ---------------------------------------------------------------------------
// ReplicationFollower

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ReplicationFollower::ReplicationFollower(ReplicationFollowerOptions options)
    : options_(std::move(options)), sink_(options_.directory) {
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        throw util::SystemError("eventfd(): " + std::string(std::strerror(errno)));
    }
    thread_ = std::thread([this] { run(); });
}

ReplicationFollower::~ReplicationFollower() { stop(); }

void ReplicationFollower::stop() {
    if (stopped_.exchange(true)) {
        if (thread_.joinable()) thread_.join();
        return;
    }
    stop_.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
    if (thread_.joinable()) thread_.join();
    ::close(wake_fd_);
    wake_fd_ = -1;
}

ReplicationFollowerStats ReplicationFollower::stats() const {
    ReplicationFollowerStats s;
    s.connects = connects_.load(std::memory_order_relaxed);
    s.disconnects = disconnects_.load(std::memory_order_relaxed);
    s.chunk_drops = chunk_drops_.load(std::memory_order_relaxed);
    s.chunks = sink_.stats().chunks.load(std::memory_order_relaxed);
    s.bytes = sink_.stats().bytes.load(std::memory_order_relaxed);
    s.duplicate_bytes = sink_.stats().duplicate_bytes.load(std::memory_order_relaxed);
    s.backoffs = backoffs_.load(std::memory_order_relaxed);
    s.last_backoff_ms = last_backoff_ms_.load(std::memory_order_relaxed);
    std::lock_guard lock(error_mutex_);
    s.last_error = last_error_;
    return s;
}

void ReplicationFollower::session() {
    std::string error;
    const int fd = net::connect_nonblocking(options_.leader_host, options_.leader_port,
                                            options_.connect_timeout, wake_fd_, error);
    if (fd < 0) {
        std::lock_guard lock(error_mutex_);
        last_error_ = error;
        return;
    }

    std::string frame;
    append_frame(frame, sink_.subscribe_payload());
    const auto deadline = Clock::now() + options_.connect_timeout;
    if (!net::send_all_nonblocking(fd, frame, deadline, error)) {
        ::close(fd);
        std::lock_guard lock(error_mutex_);
        last_error_ = error;
        return;
    }
    connects_.fetch_add(1, std::memory_order_relaxed);

    std::string buffer;
    char buf[64 << 10];
    while (!stop_.load(std::memory_order_acquire)) {
        // Drain complete frames first, then wait for more bytes.
        std::size_t consumed = 0;
        bool drop = false;
        for (;;) {
            std::size_t one = 0;
            std::optional<std::string_view> payload;
            try {
                payload = parse_frame(std::string_view(buffer).substr(consumed), one);
            } catch (const util::ParseError& e) {
                error = e.what();
                drop = true;
                break;
            }
            if (!payload) break;
            consumed += one;
            if (!sink_.apply_chunk(*payload, error)) {
                drop = true;
                break;
            }
        }
        if (consumed > 0) buffer.erase(0, consumed);
        if (drop) {
            chunk_drops_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard lock(error_mutex_);
            last_error_ = error;
            break;
        }

        pollfd pfds[2] = {{fd, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
        const int ready = ::poll(pfds, 2, 100);
        if (ready < 0 && errno != EINTR) {
            std::lock_guard lock(error_mutex_);
            last_error_ = "poll(): " + std::string(std::strerror(errno));
            break;
        }
        if ((pfds[1].revents & POLLIN) != 0) break;  // stop(): loop check exits
        if (ready <= 0 || (pfds[0].revents & POLLIN) == 0) continue;
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n == 0) {
            std::lock_guard lock(error_mutex_);
            last_error_ = "leader closed the connection";
            break;
        }
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
            std::lock_guard lock(error_mutex_);
            last_error_ = "recv(): " + std::string(std::strerror(errno));
            break;
        }
        buffer.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    disconnects_.fetch_add(1, std::memory_order_relaxed);
}

void ReplicationFollower::run() {
    // Jitter source: per-follower seed (not a shared constant) so a fleet
    // restarted together does not re-probe a dead leader in lockstep.
    util::Rng rng(util::mix64(
        static_cast<std::uint64_t>(Clock::now().time_since_epoch().count()) ^
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this))));
    unsigned failures = 0;
    while (!stop_.load(std::memory_order_acquire)) {
        const std::uint64_t connects_before = connects_.load(std::memory_order_relaxed);
        session();
        if (stop_.load(std::memory_order_acquire)) break;
        if (connects_.load(std::memory_order_relaxed) > connects_before) {
            // The leader answered this session; whatever ended it, the next
            // probe starts back at the floor.
            failures = 0;
        } else if (failures < 31) {
            ++failures;
        }
        // Exponential from the floor with full jitter above it, capped:
        // sleep in [floor, min(cap, floor * 2^(failures-1))]. A session
        // that connected but then dropped sleeps exactly the floor.
        const long floor_ms = std::max<long>(1, options_.reconnect_backoff.count());
        const long cap_ms = std::max(floor_ms, options_.reconnect_backoff_cap.count());
        long ceiling_ms = floor_ms;
        for (unsigned i = 1; i < failures && ceiling_ms < cap_ms; ++i) {
            ceiling_ms = std::min(cap_ms, ceiling_ms * 2);
        }
        const long sleep_ms =
            floor_ms +
            static_cast<long>(rng.below(static_cast<std::uint64_t>(ceiling_ms - floor_ms + 1)));
        backoffs_.fetch_add(1, std::memory_order_relaxed);
        last_backoff_ms_.store(static_cast<std::uint64_t>(sleep_ms),
                               std::memory_order_relaxed);
        // Backoff, interruptible by stop()'s eventfd write.
        pollfd pfd{wake_fd_, POLLIN, 0};
        ::poll(&pfd, 1, static_cast<int>(std::min<long>(sleep_ms, 1 << 30)));
    }
}

}  // namespace siren::serve
