#include "serve/replica_client.hpp"

#include <utility>

#include "serve/query_protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::serve {

std::vector<ReplicaEndpoint> parse_replica_list(std::string_view list) {
    std::vector<ReplicaEndpoint> out;
    std::vector<std::string_view> parts;
    util::split_view_into(list, ',', parts);
    for (const auto part : parts) {
        const auto endpoint = util::trim(part);
        if (endpoint.empty()) continue;  // tolerate "a:1,,b:2" and trailing commas
        const auto colon = endpoint.rfind(':');
        if (colon == std::string_view::npos || colon == 0) {
            throw util::ParseError("bad replica endpoint '" + std::string(endpoint) +
                                   "' (want HOST:PORT)");
        }
        long port = 0;
        if (!util::parse_decimal(endpoint.substr(colon + 1), port) || port <= 0 ||
            port > 65535) {
            throw util::ParseError("bad replica port in '" + std::string(endpoint) + "'");
        }
        out.push_back({std::string(endpoint.substr(0, colon)),
                       static_cast<std::uint16_t>(port)});
    }
    if (out.empty()) throw util::ParseError("empty replica list");
    return out;
}

ReplicaClient::ReplicaClient(std::vector<ReplicaEndpoint> replicas,
                             std::chrono::milliseconds timeout)
    : replicas_(std::move(replicas)), timeout_(timeout) {
    if (replicas_.empty()) throw util::Error("replica client needs at least one endpoint");
    connections_.resize(replicas_.size());
}

QueryClient& ReplicaClient::client(std::size_t index) {
    if (!connections_[index]) {
        connections_[index] = std::make_unique<QueryClient>(replicas_[index].host,
                                                            replicas_[index].port, timeout_);
    }
    return *connections_[index];
}

template <typename Fn>
auto ReplicaClient::with_failover(std::size_t start, Fn&& fn) {
    ++stats_.requests;
    for (std::size_t attempt = 0;; ++attempt) {
        const std::size_t index = (start + attempt) % replicas_.size();
        try {
            return fn(client(index), index);
        } catch (const util::SystemError&) {
            // Transport trouble: this endpoint is down or unreachable.
            // Drop its connection (a failed QueryClient is dead anyway)
            // and move on; the endpoint gets a fresh connect next turn.
            connections_[index].reset();
            ++stats_.failovers;
            if (attempt + 1 >= replicas_.size()) throw;
        }
    }
}

std::optional<Identified> ReplicaClient::identify(std::string_view digest) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.identify(digest); });
}

std::vector<std::optional<Identified>> ReplicaClient::identify_many(
    const std::vector<std::string>& digests) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.identify_many(digests); });
}

std::vector<Identified> ReplicaClient::top_n(std::string_view digest, std::size_t k) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.top_n(digest, k); });
}

std::optional<Identified> ReplicaClient::identify_behavior(std::string_view digest) {
    return with_failover(
        next_read_++, [&](QueryClient& c, std::size_t) { return c.identify_behavior(digest); });
}

std::vector<FusedIdentified> ReplicaClient::identify_fused(std::string_view content_digest,
                                                           std::string_view behavior_digest,
                                                           std::size_t k) {
    return with_failover(next_read_++, [&](QueryClient& c, std::size_t) {
        return c.identify_fused(content_digest, behavior_digest, k);
    });
}

std::string ReplicaClient::stats_text() {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.stats_text(); });
}

std::string ReplicaClient::checkpoint() {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.checkpoint(); });
}

Identified ReplicaClient::observe(std::string_view digest, std::string_view hint) {
    return observe_impl(digest, hint, false);
}

Identified ReplicaClient::observe_behavior(std::string_view digest, std::string_view hint) {
    return observe_impl(digest, hint, true);
}

Identified ReplicaClient::observe_impl(std::string_view digest, std::string_view hint,
                                       bool behavioral) {
    // Leader-seeking: start at the endpoint that last accepted a write and
    // walk the list, skipping read-only rejections and dead endpoints.
    // Unlike reads, an application-level read-only ERR participates in the
    // failover — it means "wrong replica", not "bad request".
    ++stats_.requests;
    std::string last_error = "no replica accepted the observe";
    for (std::size_t attempt = 0; attempt < replicas_.size(); ++attempt) {
        const std::size_t index = (leader_hint_ + attempt) % replicas_.size();
        try {
            auto result = behavioral ? client(index).observe_behavior(digest, hint)
                                     : client(index).observe(digest, hint);
            leader_hint_ = index;
            return result;
        } catch (const util::SystemError& e) {
            connections_[index].reset();
            ++stats_.failovers;
            last_error = e.what();
        } catch (const util::Error& e) {
            if (std::string_view(e.what()).find(kReadOnlyError) == std::string_view::npos) {
                throw;  // real application error: every replica would agree
            }
            ++stats_.read_only_redirects;
            last_error = e.what();
        }
    }
    throw util::Error("observe failed on every replica: " + last_error);
}

}  // namespace siren::serve
