#include "serve/replica_client.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "serve/query_protocol.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace {

bool reply_mentions(const util::Error& e, std::string_view marker) {
    return std::string_view(e.what()).find(marker) != std::string_view::npos;
}

}  // namespace

ReplicaClient::ReplicaClient(std::vector<ReplicaEndpoint> replicas,
                             std::chrono::milliseconds timeout)
    : ReplicaClient(std::move(replicas), ReplicaClientOptions{.timeout = timeout}) {}

ReplicaClient::ReplicaClient(std::vector<ReplicaEndpoint> replicas,
                             ReplicaClientOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      rng_(options.jitter_seed != 0
               ? options.jitter_seed
               : util::mix64(static_cast<std::uint64_t>(
                                 std::chrono::steady_clock::now().time_since_epoch().count()) ^
                             static_cast<std::uint64_t>(
                                 reinterpret_cast<std::uintptr_t>(this)))) {
    if (replicas_.empty()) throw util::Error("replica client needs at least one endpoint");
    connections_.resize(replicas_.size());
    health_.resize(replicas_.size());
}

QueryClient& ReplicaClient::client(std::size_t index) {
    if (!connections_[index]) {
        connections_[index] = std::make_unique<QueryClient>(
            replicas_[index].host, replicas_[index].port, options_.timeout);
    }
    return *connections_[index];
}

bool ReplicaClient::cooling(std::size_t index) const {
    return std::chrono::steady_clock::now() < health_[index].down_until;
}

void ReplicaClient::mark_success(std::size_t index) {
    health_[index] = EndpointHealth{};
}

void ReplicaClient::mark_failure(std::size_t index) {
    auto& health = health_[index];
    const auto floor = std::max(options_.cooldown_floor, std::chrono::milliseconds(1));
    const auto cap = std::max(options_.cooldown_cap, floor);
    health.cooldown = health.cooldown.count() == 0
                          ? floor
                          : std::min(cap, health.cooldown * 2);
    health.down_until = std::chrono::steady_clock::now() + health.cooldown;
}

std::chrono::milliseconds ReplicaClient::backoff_sleep(std::chrono::milliseconds previous) {
    // Decorrelated jitter: uniform in [floor, min(cap, 3 * previous)], so
    // repeated sweeps decay without synchronizing across clients.
    const auto floor = std::max(options_.backoff_floor, std::chrono::milliseconds(1));
    const auto cap = std::max(options_.backoff_cap, floor);
    const auto ceiling = std::clamp(previous * 3, floor, cap);
    const auto span = std::chrono::milliseconds(
        static_cast<long>(floor.count()) +
        static_cast<long>(rng_.below(
            static_cast<std::uint64_t>(ceiling.count() - floor.count() + 1))));
    ++stats_.backoffs;
    std::this_thread::sleep_for(span);
    return span;
}

template <typename Fn>
auto ReplicaClient::with_failover(std::size_t start, Fn&& fn) {
    ++stats_.requests;
    std::exception_ptr last_error;
    auto backoff = std::max(options_.backoff_floor, std::chrono::milliseconds(1));
    for (std::size_t sweep = 0;; ++sweep) {
        // Pass 0 respects cooldowns; pass 1 runs only when every endpoint
        // was cooling, so a fully-down fleet is still probed once a sweep.
        for (int pass = 0; pass < 2; ++pass) {
            bool tried = false;
            for (std::size_t attempt = 0; attempt < replicas_.size(); ++attempt) {
                const std::size_t index = (start + attempt) % replicas_.size();
                if (pass == 0 && cooling(index)) {
                    ++stats_.cooldown_skips;
                    continue;
                }
                tried = true;
                try {
                    auto result = fn(client(index), index);
                    mark_success(index);
                    return result;
                } catch (const util::SystemError&) {
                    // Transport trouble: this endpoint is down or
                    // unreachable. Drop its connection (a failed
                    // QueryClient is dead anyway) and move on; the
                    // endpoint gets a fresh connect after its cooldown.
                    connections_[index].reset();
                    mark_failure(index);
                    ++stats_.failovers;
                    last_error = std::current_exception();
                } catch (const util::Error& e) {
                    if (!reply_mentions(e, kOverloadedError)) throw;
                    // The replica shed us under load: cool it down and try
                    // a less-loaded one instead of surfacing the error.
                    mark_failure(index);
                    ++stats_.overload_redirects;
                    last_error = std::current_exception();
                }
            }
            if (tried) break;
        }
        if (sweep >= options_.retry_sweeps) break;
        backoff = backoff_sleep(backoff);
    }
    std::rethrow_exception(last_error);
}

std::vector<FusedIdentified> ReplicaClient::identify(const Probe& probe) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.identify(probe); });
}

std::optional<Identified> ReplicaClient::identify(std::string_view digest) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.identify(digest); });
}

std::vector<std::optional<Identified>> ReplicaClient::identify_many(
    const std::vector<std::string>& digests) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.identify_many(digests); });
}

std::vector<Identified> ReplicaClient::top_n(std::string_view digest, std::size_t k) {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.top_n(digest, k); });
}

std::optional<Identified> ReplicaClient::identify_behavior(std::string_view digest) {
    return with_failover(
        next_read_++, [&](QueryClient& c, std::size_t) { return c.identify_behavior(digest); });
}

std::vector<FusedIdentified> ReplicaClient::identify_fused(std::string_view content_digest,
                                                           std::string_view behavior_digest,
                                                           std::size_t k) {
    return with_failover(next_read_++, [&](QueryClient& c, std::size_t) {
        return c.identify_fused(content_digest, behavior_digest, k);
    });
}

std::string ReplicaClient::stats_text() {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.stats_text(); });
}

std::string ReplicaClient::checkpoint() {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.checkpoint(); });
}

std::string ReplicaClient::partition_map_text() {
    return with_failover(next_read_++,
                         [&](QueryClient& c, std::size_t) { return c.partition_map_text(); });
}

std::uint64_t ReplicaClient::fingerprint_range(std::uint64_t lo, std::uint64_t hi) {
    return with_failover(next_read_++, [&](QueryClient& c, std::size_t) {
        return c.fingerprint_range(lo, hi);
    });
}

Identified ReplicaClient::observe(std::string_view digest, std::string_view hint) {
    return observe_impl(digest, hint, false);
}

Identified ReplicaClient::observe_behavior(std::string_view digest, std::string_view hint) {
    return observe_impl(digest, hint, true);
}

Identified ReplicaClient::observe_impl(std::string_view digest, std::string_view hint,
                                       bool behavioral) {
    // Leader-seeking: start at the endpoint that last accepted a write and
    // walk the list, skipping read-only rejections, overload sheds, and
    // dead endpoints. Unlike reads, those application-level ERRs
    // participate in the failover — they mean "wrong replica right now",
    // not "bad request". Read-only rejections do NOT cool the endpoint
    // down: a healthy follower stays instantly available for reads.
    ++stats_.requests;
    std::string last_error = "no replica accepted the observe";
    auto backoff = std::max(options_.backoff_floor, std::chrono::milliseconds(1));
    for (std::size_t sweep = 0;; ++sweep) {
        for (int pass = 0; pass < 2; ++pass) {
            bool tried = false;
            for (std::size_t attempt = 0; attempt < replicas_.size(); ++attempt) {
                const std::size_t index = (leader_hint_ + attempt) % replicas_.size();
                if (pass == 0 && cooling(index)) {
                    ++stats_.cooldown_skips;
                    continue;
                }
                tried = true;
                try {
                    auto result = behavioral ? client(index).observe_behavior(digest, hint)
                                             : client(index).observe(digest, hint);
                    leader_hint_ = index;
                    mark_success(index);
                    return result;
                } catch (const util::SystemError& e) {
                    connections_[index].reset();
                    mark_failure(index);
                    ++stats_.failovers;
                    last_error = e.what();
                } catch (const util::Error& e) {
                    if (reply_mentions(e, kReadOnlyError)) {
                        ++stats_.read_only_redirects;
                    } else if (reply_mentions(e, kOverloadedError)) {
                        mark_failure(index);
                        ++stats_.overload_redirects;
                    } else {
                        throw;  // real application error: every replica would agree
                    }
                    last_error = e.what();
                }
            }
            if (tried) break;
        }
        if (sweep >= options_.retry_sweeps) break;
        backoff = backoff_sleep(backoff);
    }
    throw util::Error("observe failed on every replica: " + last_error);
}

}  // namespace siren::serve
