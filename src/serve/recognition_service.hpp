#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "recognize/registry.hpp"
#include "serve/partition_map.hpp"
#include "serve/segment_tail.hpp"
#include "storage/segment.hpp"
#include "util/thread_pool.hpp"

namespace siren::serve {

/// Query-server micro-batching of singleton IDENTIFY frames
/// (docs/recognition_service.md, "request coalescing").
struct CoalesceOptions {
    /// Probes arriving within this window (across all connections)
    /// coalesce into one identify_many pass through batch_pool(), each
    /// connection getting its own reply. The window bounds the extra
    /// latency of the first coalesced probe; 0 disables coalescing (every
    /// frame executes inline, the pre-coalescer behavior).
    std::uint32_t batch_window_us = 0;
    /// Probes per coalesced batch; a full batch flushes immediately
    /// without waiting out the window, so under saturating traffic the
    /// window cost disappears and this knob sizes the identify_many calls.
    std::size_t batch_max = 64;
    /// Admission control for coalesced IDENTIFY: when the query server's
    /// coalescer already holds this many probes waiting for a batch slot,
    /// further singleton IDENTIFYs are shed with "ERR overloaded" instead
    /// of growing the in-flight set without bound. 0 = 8 * batch_max.
    std::size_t shed_coalesce_depth = 0;
};

/// Overload shedding on the write path (docs/robustness.md).
struct ShedOptions {
    /// Admission control for network observes: when the writer queue holds
    /// at least this many pending observes, the query protocol sheds
    /// OBSERVE/OBSERVETS with an explicit "ERR overloaded" instead of
    /// blocking the server's event loop behind observe_sync(). 0 = use
    /// queue_capacity (shed exactly where observe_sync would have blocked).
    /// In-process observe()/observe_sync() callers are never shed.
    std::size_t shed_queue_depth = 0;
};

/// Leader/follower roles of the segment-shipping replication layer
/// (docs/replication.md).
struct ReplicationOptions {
    /// Leader mode: journal client observes into segments_dir (stream
    /// prefix "obs-", wire FILE_H datagrams carrying "digest [hint]") and
    /// apply them *through the segment feed* instead of directly — one
    /// apply path for everything, so followers shipping the directory
    /// replay the exact same stream, and TCP observes become durable (a
    /// restarted leader recovers them from its own WAL instead of only
    /// from checkpoints). Requires segments_dir.
    bool observe_wal = false;
    /// fsync the WAL after each journaled batch (off for tests/benches on
    /// tmpfs — visibility to the feed only needs the buffer flushed).
    bool wal_fsync = true;
    /// Follower mode: the registry is built purely from replicated
    /// segments; the query protocol rejects OBSERVE (route it to the
    /// leader) while IDENTIFY/TOPN/STATS/CHECKPOINT serve locally. The
    /// in-process observe()/observe_sync() API stays usable — it is how
    /// tests seed state — but nothing network-facing reaches it.
    bool read_only = false;
};

/// Membership of a partitioned fleet (docs/sharding.md). Default: no map,
/// the service is unpartitioned and accepts every key.
struct PartitionOptions {
    /// This service's shard id in `map` (meaningless without one).
    std::uint32_t shard_id = 0;
    /// The fleet's shard table. When set, OBSERVE/OBSERVETS for a block
    /// size this shard does not own are rejected with the typed
    /// `wrong_shard` marker, and the PARTMAP verb serves the map to
    /// self-refreshing clients. The map is swappable at runtime
    /// (set_partition_map) — that is how a rebalance version-bump lands.
    std::shared_ptr<const PartitionMap> map;
};

/// Tuning for one RecognitionService.
struct ServeOptions {
    recognize::RegistryOptions registry;

    /// Segment directory of an ingest daemon to follow (FILE_H digests
    /// flow into the live registry); empty = client observes only.
    std::string segments_dir;
    /// How often the writer thread polls the segment directory for new
    /// records when otherwise idle.
    std::chrono::milliseconds feed_poll{20};
    /// Records applied per writer iteration before a snapshot is published;
    /// bounds both publish latency during catch-up and snapshot staleness.
    std::size_t feed_batch_max = 4096;

    /// Checkpoint file; empty = no persistence. Written atomically
    /// (tmp + rename) by the writer thread.
    std::string checkpoint_path;
    /// Periodic checkpoint cadence; 0 = only explicit checkpoint_now()
    /// and the final checkpoint at stop().
    std::chrono::milliseconds checkpoint_interval{30000};

    /// Longest the writer sleeps waiting for queued observes before it
    /// polls the feed again.
    std::chrono::milliseconds writer_idle{5};
    /// Minimum spacing between snapshot publishes. A publish copies only
    /// the storage chunks the batch touched (O(delta), structural sharing
    /// with the previous snapshot), so this knob now mainly bounds the
    /// per-batch fixed cost (chunk-pointer copy + swap) and snapshot churn
    /// under extreme write rates. 0 = publish after every modifying cycle.
    /// observe_sync() and shutdown publish immediately regardless.
    std::chrono::milliseconds publish_interval{0};
    /// Bound on queued (not yet applied) client observes; beyond it,
    /// observe() drops (counted) and observe_sync() blocks.
    std::size_t queue_capacity = 1 << 16;

    /// Worker threads for batch identify fan-out (multi-digest IDENTIFY
    /// requests route through ThreadPool::parallel_for). 0 = resolve
    /// batches serially on the calling thread.
    std::size_t batch_pool_threads = 0;

    // Grouped sub-options, one struct per subsystem. The flat field soup
    // this replaces scattered its coherence checks across every daemon;
    // validate() below is now the single gate.
    CoalesceOptions coalesce;
    ShedOptions shed;
    ReplicationOptions replication;
    PartitionOptions partition;

    /// Reject incoherent combinations with util::Error — the one
    /// validation gate for every embedder (daemon, chaos harness, tests).
    /// RecognitionService's constructor calls this; call it earlier (after
    /// CLI parsing) for a cleaner error. Rejects: zero queue_capacity or
    /// feed_batch_max, a coalescing window with batch_max 0, an observe
    /// WAL without segments_dir or on a read-only follower, a shed
    /// threshold beyond queue_capacity (observe_sync would block before it
    /// ever shed), and a read-only follower claiming shard ownership
    /// (partition enforcement is a leader concern; followers are listed in
    /// the map, not configured with it).
    void validate() const;
};

/// The immutable unit readers hold: one registry state, frozen. Queries
/// resolve family names against the *same* snapshot they scored in, so a
/// concurrent rename/merge can never tear a result.
struct RegistrySnapshot {
    recognize::Registry registry;
    std::uint64_t version = 0;  ///< publish count (0 = the empty boot snapshot)
    std::uint64_t applied = 0;  ///< observes applied in total (feed + clients)

    /// Registry::fingerprint() of this frozen state, memoized — a polled
    /// STATS must not pay the O(exemplars) serialization per call. Racing
    /// readers compute the same deterministic value, so the unsynchronized
    /// double-compute is benign (0 doubles as "not yet computed"; a true
    /// zero hash merely recomputes).
    std::uint64_t fingerprint() const {
        std::uint64_t value = fingerprint_.load(std::memory_order_acquire);
        if (value == 0) {
            value = registry.fingerprint();
            fingerprint_.store(value, std::memory_order_release);
        }
        return value;
    }

private:
    mutable std::atomic<std::uint64_t> fingerprint_{0};
};

/// One resolved identification.
struct Identified {
    recognize::FamilyId family = 0;
    int score = 0;
    bool new_family = false;  ///< observe paths only
    std::string name;
};

/// One fused (content + behavior) identification with per-channel
/// provenance — the serving-layer face of recognize::FusedMatch.
struct FusedIdentified {
    recognize::FamilyId family = 0;
    int score = 0;           ///< fused score
    int content_score = 0;   ///< 0 = content channel had no match
    int behavior_score = 0;  ///< 0 = behavior channel had no match
    std::string name;
};

/// Query-protocol verbs, indexing the per-verb request counters STATS
/// reports. kUnknown counts unrecognized verbs and empty requests.
enum class QueryVerb : std::size_t {
    kIdentify = 0,
    kIdentifyB,
    kIdentifyTs,
    kIdentify2,
    kObserve,
    kObserveTs,
    kTopN,
    kStats,
    kCheckpoint,
    kPartMap,
    kFpRange,
    kUnknown,
    kCount,  ///< sentinel, not a verb
};

/// STATS key for one verb counter ("verb_identify", ...).
std::string_view query_verb_name(QueryVerb verb);

/// Counter snapshot (see RecognitionService::stats).
struct ServeCounters {
    std::uint64_t identifies = 0;         ///< identify/top_n/identify_many probes
    std::uint64_t observes_enqueued = 0;
    std::uint64_t observes_dropped = 0;   ///< queue full (async observe only)
    std::uint64_t observes_applied = 0;   ///< client observes applied by the writer
    std::uint64_t feed_records = 0;       ///< segment records delivered by the tail
    std::uint64_t feed_file_hashes = 0;   ///< FILE_H records applied as observes
    std::uint64_t feed_ts_hashes = 0;     ///< TS_H records applied as behavioral observes
    std::uint64_t feed_malformed = 0;     ///< records that failed decode/parse
    std::uint64_t publishes = 0;          ///< snapshots published
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpoint_errors = 0;
    std::uint64_t observes_journaled = 0;  ///< client observes appended to the WAL
    std::uint64_t wal_fallbacks = 0;       ///< journal/feed misses applied directly
    std::uint64_t observes_shed = 0;       ///< network observes refused: overload
    std::uint64_t publish_ns = 0;          ///< cumulative wall time inside publish()
    std::uint64_t publish_ns_last = 0;     ///< wall time of the latest publish
    std::uint64_t publish_errors = 0;      ///< publishes skipped (injected faults)
    /// Structural sharing between the latest snapshot and its predecessor
    /// (Registry::sharing_with): how much of the new snapshot is
    /// pointer-identical with the old one. shared/total == 1 would mean
    /// nothing changed; a small batch against a large registry should keep
    /// the shared fraction near 1 — the O(delta) publication claim.
    std::uint64_t shared_buckets = 0;
    std::uint64_t total_buckets = 0;
    std::uint64_t shared_chunks = 0;
    std::uint64_t total_chunks = 0;
};

/// The online recognition service — the third leg of the collect -> ingest
/// -> recognize pipeline. It turns recognize::Registry (a single-threaded
/// library) into a long-running, concurrently queryable daemon around one
/// concurrency scheme:
///
///   * Readers (any thread) acquire the current RegistrySnapshot through an
///     atomic shared_ptr load and run entirely on that immutable state —
///     no lock is taken on the query path, and query latency does not
///     depend on write volume.
///   * One writer thread owns the only mutable Registry. It drains queued
///     client observes and tails the ingest daemon's segments, applies a
///     batch, then publishes a fresh immutable copy via atomic pointer
///     swap. The copy is O(touched delta), not O(registry): the registry's
///     chunked copy-on-write storage shares every untouched bucket and
///     column chunk with the previous snapshot, so publish cost tracks the
///     batch, not the corpus. Readers holding the previous snapshot keep
///     it (and the chunks only it references) alive until they drop it.
///
/// Persistence: the writer periodically checkpoints the registry together
/// with the segment-tail watermark (atomic tmp+rename). Crash recovery =
/// load the last checkpoint, then resume tailing from the watermark — the
/// un-checkpointed suffix of every segment replays in canonical order, so
/// a restarted service converges to the same family assignments.
/// docs/recognition_service.md covers the scheme, formats and ordering.
class RecognitionService {
public:
    /// Loads the checkpoint when one exists (throws util::ParseError if it
    /// is corrupt — a daemon must not silently start empty over real
    /// state), replays segments past the watermark, publishes the boot
    /// snapshot, then starts the writer thread.
    explicit RecognitionService(ServeOptions options);
    ~RecognitionService();

    RecognitionService(const RecognitionService&) = delete;
    RecognitionService& operator=(const RecognitionService&) = delete;

    // ---- read path (any thread, lock-free) -------------------------------

    /// The current immutable snapshot; never null.
    std::shared_ptr<const RegistrySnapshot> snapshot() const {
        return snapshot_.load(std::memory_order_acquire);
    }

    /// Best family for a probe, or nullopt below the match threshold.
    std::optional<Identified> identify(const fuzzy::FuzzyDigest& digest) const;

    /// Best family for a behavioral (shapelet) probe — the behavior
    /// channel's identify.
    std::optional<Identified> identify_behavior(const fuzzy::FuzzyDigest& digest) const;

    /// Fused identification: rank families by the weighted combination of
    /// both channels (either probe may be absent); per-channel scores
    /// survive for provenance. See recognize::Registry::top_families_fused.
    std::vector<FusedIdentified> identify_fused(
        const std::optional<fuzzy::FuzzyDigest>& content,
        const std::optional<fuzzy::FuzzyDigest>& behavior, std::size_t k) const;

    /// Top `k` families by best-exemplar score (deduplicated by family,
    /// best first).
    std::vector<Identified> top_n(const fuzzy::FuzzyDigest& digest, std::size_t k) const;

    /// top_n over the behavior channel.
    std::vector<Identified> top_n_behavior(const fuzzy::FuzzyDigest& digest,
                                           std::size_t k) const;

    /// Batch identify against one snapshot; with a pool the probes fan out
    /// through ThreadPool::parallel_for. Results are positional.
    std::vector<std::optional<Identified>> identify_many(
        const std::vector<fuzzy::FuzzyDigest>& digests, util::ThreadPool* pool = nullptr) const;

    // ---- write path ------------------------------------------------------

    /// Queue a sighting for the writer thread; returns its sequence number,
    /// or nullopt when the queue is full (the drop is counted). Visibility:
    /// the observation is in some snapshot once applied_seq() passes the
    /// returned sequence.
    std::optional<std::uint64_t> observe(fuzzy::FuzzyDigest digest, std::string name_hint = {});

    /// Queue a sighting and wait for it to be applied and published;
    /// returns the resolved observation (blocks for queue room when full).
    Identified observe_sync(fuzzy::FuzzyDigest digest, std::string name_hint = {});

    /// Behavioral counterparts: the digest is a shapelet digest and the
    /// writer applies it through Registry::observe_behavior. In WAL mode
    /// the journal record is a TS_H datagram, so followers replay the
    /// behavioral stream exactly like the content one.
    std::optional<std::uint64_t> observe_behavior(fuzzy::FuzzyDigest digest,
                                                  std::string name_hint = {});
    Identified observe_behavior_sync(fuzzy::FuzzyDigest digest, std::string name_hint = {});

    /// Highest client-observe sequence applied and published.
    std::uint64_t applied_seq() const { return applied_seq_.load(std::memory_order_acquire); }

    /// Block until every observe enqueued so far is applied and published,
    /// and one feed poll has completed since the call (test barrier).
    void flush();

    /// Force a checkpoint now (blocks until the writer wrote it). False
    /// when no checkpoint path is configured or the write failed;
    /// `error` (optional) receives the reason.
    bool checkpoint_now(std::string* error = nullptr);

    ServeCounters counters() const;
    const ServeOptions& options() const { return options_; }

    /// Client observes queued but not yet applied — the admission-control
    /// signal the query protocol sheds on.
    std::size_t queue_depth() const {
        std::lock_guard lock(queue_mutex_);
        return queue_.size();
    }
    /// Observes the writer queue may still accept before the network shed
    /// threshold (options resolved: 0 means queue_capacity).
    std::size_t shed_threshold() const {
        return options_.shed.shed_queue_depth != 0 ? options_.shed.shed_queue_depth
                                                   : options_.queue_capacity;
    }
    /// Bump the shed counter (query protocol, on an "ERR overloaded" reply).
    void count_observe_shed() const {
        observes_shed_.fetch_add(1, std::memory_order_relaxed);
    }

    // ---- partition membership (docs/sharding.md) -------------------------

    /// The current shard table; null when unpartitioned. Lock-free load —
    /// the query protocol checks ownership per OBSERVE.
    std::shared_ptr<const PartitionMap> partition_map() const {
        return partition_map_.load(std::memory_order_acquire);
    }
    /// Swap in a newer map (rebalance version bump). The swap is atomic;
    /// requests racing it see either map, both of which were valid — a
    /// client holding the older map just earns one wrong_shard redirect.
    void set_partition_map(std::shared_ptr<const PartitionMap> map) {
        partition_map_.store(std::move(map), std::memory_order_release);
    }
    std::uint32_t shard_id() const { return options_.partition.shard_id; }
    /// Bump the wrong-shard counter (query protocol, on an
    /// "ERR wrong_shard" reply).
    void count_wrong_shard() const {
        wrong_shard_rejects_.fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t wrong_shard_rejects() const {
        return wrong_shard_rejects_.load(std::memory_order_relaxed);
    }

    /// Per-verb request accounting (bumped by execute_query, surfaced as
    /// `verb_*` STATS lines).
    void count_verb(QueryVerb verb) const {
        verb_counts_[static_cast<std::size_t>(verb)].fetch_add(1, std::memory_order_relaxed);
    }
    std::uint64_t verb_count(QueryVerb verb) const {
        return verb_counts_[static_cast<std::size_t>(verb)].load(std::memory_order_relaxed);
    }

    /// The service-owned batch fan-out pool (null unless
    /// options.batch_pool_threads > 0).
    util::ThreadPool* batch_pool() const { return batch_pool_.get(); }

    /// Stop the writer (applies the remaining queue, publishes, writes the
    /// final checkpoint); idempotent, called by the destructor. Reads stay
    /// valid after stop() — they serve the last published snapshot.
    void stop();

private:
    struct PendingObserve {
        fuzzy::FuzzyDigest digest;
        std::string name_hint;
        std::uint64_t seq = 0;
        std::shared_ptr<std::promise<Identified>> reply;  ///< observe_sync only
        bool behavioral = false;  ///< apply via observe_behavior / journal as TS_H
    };

    std::optional<std::uint64_t> enqueue_observe(fuzzy::FuzzyDigest digest,
                                                 std::string name_hint, bool behavioral);
    Identified enqueue_observe_sync(fuzzy::FuzzyDigest digest, std::string name_hint,
                                    bool behavioral);

    void writer_loop();
    /// Apply one raw segment record (wire datagram) to the master registry.
    void apply_feed_record(std::string_view record);
    /// WAL mode: journal the batch, force a feed drain so it applies, and
    /// direct-apply any record the feed failed to deliver (liveness).
    void journal_and_apply(std::vector<PendingObserve>& batch,
                           std::vector<std::pair<std::shared_ptr<std::promise<Identified>>,
                                                 Identified>>& replies,
                           std::uint64_t& unpublished_seq, bool stopping);
    /// Direct apply of one client observe (the non-WAL path and the WAL
    /// fallback); fills `replies` when the observe carries a promise.
    void apply_direct(PendingObserve& pending,
                      std::vector<std::pair<std::shared_ptr<std::promise<Identified>>,
                                            Identified>>& replies);
    /// The observe_sync reply for an observation just applied to master_
    /// (shared by the WAL-resolution and direct paths — they must never
    /// diverge).
    Identified resolve_applied(const recognize::Observation& obs) const;
    /// Publish an immutable copy of the master registry. The copy is
    /// O(touched delta): master_'s chunked COW storage shares every chunk
    /// the batch didn't touch with the previous snapshot (see
    /// docs/recognition_service.md). Returns false when an injected
    /// failpoint (serve.publish.copy / serve.publish.swap) aborted the
    /// publish — the caller must keep its dirty state and retry later.
    bool publish(std::uint64_t applied_through);
    /// Write the checkpoint file; returns false and fills `error` on failure.
    bool write_checkpoint(std::string& error);
    void load_checkpoint();

    ServeOptions options_;
    recognize::Registry master_;  ///< writer thread only (after construction)
    /// Total observes applied to master_ (feed + clients); writer thread
    /// only, mirrored into each snapshot and the checkpoint.
    std::uint64_t applied_total_ = 0;
    std::unique_ptr<SegmentTail> tail_;
    /// Leader observe WAL (options_.replication.observe_wal); writer thread only.
    std::unique_ptr<storage::SegmentWriter> wal_;
    /// Journaled observes whose feed delivery is pending, keyed by the
    /// sequence number travelling as the datagram's job id; writer thread
    /// only — entries live for exactly one journal_and_apply cycle.
    std::map<std::uint64_t, PendingObserve> wal_pending_;
    /// Seqs the liveness backstop applied directly after a failed feed
    /// drain: their eventual feed re-delivery is skipped, not re-applied
    /// (writer thread only; erased on that delivery).
    std::set<std::uint64_t> wal_fallback_seqs_;
    std::unique_ptr<util::ThreadPool> batch_pool_;
    std::atomic<std::shared_ptr<const RegistrySnapshot>> snapshot_;
    /// Current shard table (null = unpartitioned); swapped by rebalance.
    std::atomic<std::shared_ptr<const PartitionMap>> partition_map_;
    mutable std::atomic<std::uint64_t> wrong_shard_rejects_{0};

    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;    ///< wakes the writer
    std::condition_variable applied_cv_;  ///< wakes flush()/observe_sync waiters
    std::vector<PendingObserve> queue_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t feed_polls_done_ = 0;
    bool checkpoint_requested_ = false;
    bool checkpoint_ok_ = false;
    std::string checkpoint_error_;
    std::uint64_t checkpoints_done_ = 0;
    bool writer_done_ = false;      ///< writer thread exited (final checkpoint written)
    bool snapshot_dirty_ = false;   ///< applied changes awaiting a publish

    std::atomic<std::uint64_t> applied_seq_{0};
    std::atomic<bool> stop_{false};
    std::atomic<bool> stopped_{false};
    std::thread writer_;

    mutable std::atomic<std::uint64_t> identifies_{0};
    mutable std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(QueryVerb::kCount)>
        verb_counts_{};
    std::atomic<std::uint64_t> observes_enqueued_{0};
    std::atomic<std::uint64_t> observes_dropped_{0};
    std::atomic<std::uint64_t> observes_applied_{0};
    std::atomic<std::uint64_t> feed_records_{0};
    std::atomic<std::uint64_t> feed_file_hashes_{0};
    std::atomic<std::uint64_t> feed_ts_hashes_{0};
    std::atomic<std::uint64_t> feed_malformed_{0};
    std::atomic<std::uint64_t> publishes_{0};
    std::atomic<std::uint64_t> checkpoints_{0};
    std::atomic<std::uint64_t> checkpoint_errors_{0};
    std::atomic<std::uint64_t> observes_journaled_{0};
    std::atomic<std::uint64_t> wal_fallbacks_{0};
    mutable std::atomic<std::uint64_t> observes_shed_{0};
    std::atomic<std::uint64_t> publish_ns_{0};
    std::atomic<std::uint64_t> publish_ns_last_{0};
    std::atomic<std::uint64_t> publish_errors_{0};
    std::atomic<std::uint64_t> shared_buckets_{0};
    std::atomic<std::uint64_t> total_buckets_{0};
    std::atomic<std::uint64_t> shared_chunks_{0};
    std::atomic<std::uint64_t> total_chunks_{0};

    /// WAL-drain scratch, valid only inside journal_and_apply (writer
    /// thread): where apply_feed_record deposits resolved replies and the
    /// highest applied client sequence.
    std::vector<std::pair<std::shared_ptr<std::promise<Identified>>, Identified>>*
        wal_replies_out_ = nullptr;
    std::uint64_t wal_seq_high_ = 0;
};

/// Stream prefix of the leader's observe WAL inside segments_dir.
inline constexpr std::string_view kObserveWalPrefix = "obs-";

/// Checkpoint file magic (first token of the first line).
inline constexpr std::string_view kCheckpointMagic = "SIRENCKPT";
inline constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace siren::serve
