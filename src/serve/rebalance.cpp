#include "serve/rebalance.hpp"

#include "fuzzy/ctph.hpp"
#include "net/codec.hpp"
#include "net/message.hpp"
#include "util/error.hpp"

namespace siren::serve {

bool record_in_range(std::string_view record, std::uint64_t lo, std::uint64_t hi) {
    try {
        net::MessageView view;
        net::decode_view(record, view);
        if (view.type != net::MsgType::kFileHash &&
            view.type != net::MsgType::kTimeSeriesHash) {
            return false;
        }
        // FILE_H/TS_H content is "digest" or "digest hint"; the block size
        // lives in the digest's leading field either way.
        const std::string content = view.content_str();
        const auto space = content.find(' ');
        const auto digest =
            fuzzy::FuzzyDigest::parse(std::string_view(content).substr(0, space));
        return digest.block_size >= lo && digest.block_size <= hi;
    } catch (const util::Error&) {
        return false;  // not an observe; a rebalance never moves it
    }
}

std::string transfer_prefix(std::uint64_t version) {
    return "obs-xfer" + std::to_string(version) + "-";
}

storage::ReplayStats export_range(const std::string& segments_dir,
                                  const std::string& export_dir, std::uint64_t lo,
                                  std::uint64_t hi, std::uint64_t version) {
    storage::SegmentOptions options;
    options.fsync_enabled = false;  // the convergence check is the durability gate
    storage::SegmentWriter writer(export_dir, transfer_prefix(version), options);
    const auto stats = storage::replay_directory(
        segments_dir, [&writer](std::string_view record) { writer.append(record); },
        [lo, hi](std::string_view record) { return record_in_range(record, lo, hi); });
    writer.close();
    return stats;
}

}  // namespace siren::serve
