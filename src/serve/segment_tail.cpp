#include "serve/segment_tail.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string_view>
#include <vector>

#include "hashing/crc32c.hpp"
#include "util/endian.hpp"
#include "util/failpoint.hpp"

namespace siren::serve {

namespace fs = std::filesystem;

using util::get_u32le;

namespace {

/// Stream identity of a segment basename: the name minus its numeric
/// sequence and ".seg" suffix (mirrors storage's `<prefix><seq>.seg`
/// layout). Cross-file ordering is only meaningful within one stream.
std::string_view stream_head(std::string_view name) {
    if (name.ends_with(storage::kSegmentSuffix)) {
        name.remove_suffix(storage::kSegmentSuffix.size());
    }
    std::size_t digits_at = name.size();
    while (digits_at > 0 && name[digits_at - 1] >= '0' && name[digits_at - 1] <= '9') {
        --digits_at;
    }
    return name.substr(0, digits_at);
}

}  // namespace

SegmentTail::SegmentTail(std::string directory, Offsets start)
    : directory_(std::move(directory)), offsets_(std::move(start)) {
    stats_.files_seen = offsets_.size();
}

std::size_t SegmentTail::consume_file(const std::string& path, const std::string& name,
                                      const storage::RecordFn& fn, std::size_t budget,
                                      bool& drained) {
    std::uint64_t& offset = offsets_[name];
    if (offset == kBadFile) return 0;  // terminally skipped: drained, not pending
    drained = false;  // pending until proven consumed to the size snapshot
    // Injected feed stall: delay(…) slows the tail inside eval, error(…)
    // defers this file — and, via the drained flag, the rest of its stream
    // — until the next poll. Records arrive late, never lost or reordered
    // (the offset is untouched).
    if (SIREN_FAILPOINT("serve.tail.read")) return 0;

    std::error_code ec;
    const std::uint64_t size = fs::file_size(path, ec);
    if (ec) return 0;  // vanished between listing and stat; next poll drops it

    // New file: wait for the full 16-byte header, then validate it once.
    if (offset == 0) {
        if (size < storage::kSegmentHeaderBytes) return 0;
        std::ifstream in(path, std::ios::binary);
        char header[storage::kSegmentHeaderBytes];
        if (!in || !in.read(header, storage::kSegmentHeaderBytes) ||
            std::memcmp(header, storage::kSegmentMagic.data(), storage::kSegmentMagic.size()) !=
                0 ||
            get_u32le(header + 8) != storage::kSegmentVersion) {
            offset = kBadFile;
            ++stats_.bad_segments;
            drained = true;
            return 0;
        }
        offset = storage::kSegmentHeaderBytes;
    }
    if (size <= offset) {
        drained = true;
        return 0;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) return 0;
    in.seekg(static_cast<std::streamoff>(offset));

    std::size_t delivered = 0;
    char rec[storage::kRecordHeaderBytes];
    while (budget == 0 || delivered < budget) {
        // Only bytes visible in the size snapshot are consumed: the writer
        // may keep appending while we read, but a frame is final once its
        // last byte exists (segment writers are strictly sequential).
        if (size - offset < storage::kRecordHeaderBytes) break;
        if (!in.read(rec, storage::kRecordHeaderBytes)) break;
        const std::uint32_t word = get_u32le(rec);
        const std::uint8_t kind = static_cast<std::uint8_t>(word >> storage::kRecordKindShift);
        const std::uint32_t length = word & storage::kRecordLengthMask;
        const std::uint32_t crc = get_u32le(rec + 4);
        if (size - offset - storage::kRecordHeaderBytes < length) {
            break;  // frame still in flight (or a torn tail): retry next poll
        }
        payload_.resize(length);
        if (length > 0 && !in.read(payload_.data(), length)) break;
        offset += storage::kRecordHeaderBytes + length;
        if (hash::crc32c(payload_) != crc) {
            ++stats_.crc_failures;
            continue;
        }
        if (kind != storage::kRecordKindRaw) {
            // A checksummed record of a future kind (newer leader, older
            // follower): advance past it and count it — a mixed-version
            // fleet must not wedge or mark the shipped segment bad.
            ++stats_.unknown_kinds;
            continue;
        }
        ++stats_.records;
        stats_.bytes += length;
        ++delivered;
        if (fn) fn(payload_);
    }
    // Anything short of the size snapshot — a torn frame, a failed read, an
    // exhausted budget — leaves bytes that may still become records.
    drained = offset >= size;
    return delivered;
}

std::size_t SegmentTail::poll(const storage::RecordFn& fn, std::size_t max_records) {
    ++stats_.polls;
    std::error_code list_error;
    const std::vector<std::string> paths = storage::list_segments(directory_, &list_error);

    std::set<std::string> present;
    std::set<std::string, std::less<>> stalled;  // stream heads with an undrained older file
    std::size_t delivered = 0;
    for (const auto& path : paths) {
        const std::string name = fs::path(path).filename().string();
        present.insert(name);
        if (offsets_.emplace(name, 0).second) ++stats_.files_seen;
        if (max_records != 0 && delivered >= max_records) continue;
        const std::string_view head = stream_head(name);
        if (stalled.contains(head)) {
            // An older file of this stream wasn't fully drained; consuming
            // this one now would deliver its records out of canonical
            // order. Defer it — the stall clears on a later poll.
            ++stats_.stalls;
            continue;
        }
        current_file_ = name;
        bool drained = true;
        delivered += consume_file(path, name, fn,
                                  max_records == 0 ? 0 : max_records - delivered, drained);
        current_file_.clear();
        if (!drained) stalled.emplace(head);
    }

    // Files that vanished were compacted away (their records were already
    // consolidated downstream); dropping their offsets keeps the
    // checkpoint watermark from growing without bound. Only on a clean
    // listing, though: a transiently unreadable directory must not erase
    // watermarks whose files still exist — re-reading them from byte 0
    // would re-observe every record.
    if (!list_error) {
        for (auto it = offsets_.begin(); it != offsets_.end();) {
            if (!present.contains(it->first)) {
                it = offsets_.erase(it);
                ++stats_.files_dropped;
            } else {
                ++it;
            }
        }
    }
    return delivered;
}

}  // namespace siren::serve
