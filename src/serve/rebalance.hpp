#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/segment.hpp"

namespace siren::serve {

/// True when `record` is a recognition observe (FILE_H/TS_H datagram)
/// whose digest's block size lies in [lo, hi] — the keep-predicate a range
/// transfer filters segments with. Non-observe records, undecodable
/// datagrams and unparseable digests are all out of range: a rebalance
/// moves exactly the records the partition key covers, nothing else.
bool record_in_range(std::string_view record, std::uint64_t lo, std::uint64_t hi);

/// Export stream prefix of a range transfer for partition-map version
/// `version`: "obs-xfer<version>-". It starts with the observe-WAL prefix
/// on purpose — when the exported segments land in the new owner's
/// followed directory, its feed treats them as trusted journal records
/// (name hints honored), exactly as the old owner treated the originals.
/// The version tag keeps successive transfers in distinct streams, and the
/// non-numeric tail keeps the new owner's own "obs-" WAL resume scan from
/// ever matching these files.
std::string transfer_prefix(std::uint64_t version);

/// One range transfer's export pass: replay every segment under
/// `segments_dir`, keep only records in [lo, hi] (record_in_range), and
/// journal them — raw bytes, order preserved — into a
/// `transfer_prefix(version)` stream under `export_dir`. The export is a
/// normal segment directory: ship it to the new owner over the replication
/// machinery (ReplicationSource serving export_dir, the new owner's
/// follower writing into its own followed directory) or copy it wholesale;
/// the new owner's feed replays it like any other stream. Returns the
/// replay accounting (ReplayStats::filtered = records left behind).
/// Throws util::SystemError when export_dir cannot be created.
///
/// The old owner keeps serving the range while this runs (segments are
/// append-only; the pass reads a consistent prefix). Records observed
/// after the pass started are caught by running it again under a new
/// version — a repeated sighting folds into its existing family without
/// adding exemplars, and fingerprint_range deliberately excludes sighting
/// tallies, so re-exports converge instead of diverging
/// (docs/sharding.md walks the full cutover protocol).
storage::ReplayStats export_range(const std::string& segments_dir,
                                  const std::string& export_dir, std::uint64_t lo,
                                  std::uint64_t hi, std::uint64_t version);

}  // namespace siren::serve
