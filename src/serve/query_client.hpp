#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/recognition_service.hpp"  // Identified

namespace siren::serve {

/// Synchronous client for the recognition query protocol — the library
/// behind `siren_query --identify HOST:PORT DIGEST` and the serve tests.
/// One TCP connection, blocking request/response with a per-call deadline.
class QueryClient {
public:
    /// Connects eagerly; throws util::SystemError when the service is
    /// unreachable.
    QueryClient(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
    ~QueryClient();

    QueryClient(const QueryClient&) = delete;
    QueryClient& operator=(const QueryClient&) = delete;

    /// One framed round trip; throws util::SystemError on socket
    /// failure/timeout, util::ParseError on a garbage frame.
    std::string request(std::string_view payload);

    // Typed wrappers over request(). Digests travel as their canonical
    // string form; an "ERR ..." response surfaces as util::Error.
    std::optional<Identified> identify(std::string_view digest);
    std::vector<std::optional<Identified>> identify_many(
        const std::vector<std::string>& digests);
    Identified observe(std::string_view digest, std::string_view hint = {});
    std::vector<Identified> top_n(std::string_view digest, std::size_t k);
    /// Behavior-channel probe (IDENTIFYTS) / sighting (OBSERVETS); the
    /// digest is a shapelet digest (behavior::shapelet_digest_string).
    std::optional<Identified> identify_behavior(std::string_view digest);
    Identified observe_behavior(std::string_view digest, std::string_view hint = {});
    /// Fused identification (IDENTIFY2): pass either digest empty to probe
    /// one channel alone (at least one must be non-empty).
    std::vector<FusedIdentified> identify_fused(std::string_view content_digest,
                                                std::string_view behavior_digest,
                                                std::size_t k = 5);
    /// STATS response as "key value" lines (minus the leading OK).
    std::string stats_text();
    /// Force a checkpoint; returns its path.
    std::string checkpoint();

private:
    int fd_ = -1;
    std::chrono::milliseconds timeout_;
    std::string buffer_;
};

}  // namespace siren::serve
