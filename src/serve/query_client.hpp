#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/recognition_service.hpp"  // Identified

namespace siren::serve {

/// One identification request — the single typed probe shape behind what
/// used to be a zoo of identify variants (identify / identify_behavior /
/// identify_fused each with their own signature). Either channel may be
/// absent (empty string); at least one must be present. `k` bounds the
/// ranked result. The partition router (ShardedClient) fans out Probes
/// only — every legacy identify signature is a thin wrapper that builds
/// one, so sharding never needs per-variant routing.
struct Probe {
    std::string content;   ///< canonical content digest; empty = channel absent
    std::string behavior;  ///< shapelet digest; empty = channel absent
    std::size_t k = 1;     ///< families in the ranked reply, best first
};

/// Front of a fused ranking in the legacy singleton shape; nullopt when
/// the ranking is empty. The bridge under the wrapper methods.
inline std::optional<Identified> first_identified(const std::vector<FusedIdentified>& matches) {
    if (matches.empty()) return std::nullopt;
    return Identified{matches.front().family, matches.front().score, false,
                      matches.front().name};
}

/// Synchronous client for the recognition query protocol — the library
/// behind `siren_query --identify HOST:PORT DIGEST` and the serve tests.
/// One TCP connection, blocking request/response with a per-call deadline.
class QueryClient {
public:
    /// Connects eagerly; throws util::SystemError when the service is
    /// unreachable.
    QueryClient(const std::string& host, std::uint16_t port,
                std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));
    ~QueryClient();

    QueryClient(const QueryClient&) = delete;
    QueryClient& operator=(const QueryClient&) = delete;

    /// One framed round trip; throws util::SystemError on socket
    /// failure/timeout, util::ParseError on a garbage frame.
    std::string request(std::string_view payload);

    /// THE identification entry point: one typed probe, one ranked reply
    /// with per-channel provenance. Picks the cheapest wire verb for the
    /// probe's shape (singleton IDENTIFY / IDENTIFYTS for one-channel k=1,
    /// IDENTIFY2 otherwise) — callers never choose verbs. Throws
    /// util::Error on an empty probe (neither channel) or k = 0.
    std::vector<FusedIdentified> identify(const Probe& probe);

    // Legacy signatures, kept as thin wrappers over identify(Probe) —
    // same wire traffic, same replies, one implementation. Digests travel
    // as their canonical string form; "ERR ..." surfaces as util::Error.
    std::optional<Identified> identify(std::string_view digest) {
        return first_identified(identify(Probe{.content = std::string(digest)}));
    }
    std::optional<Identified> identify_behavior(std::string_view digest) {
        return first_identified(identify(Probe{.behavior = std::string(digest)}));
    }
    std::vector<FusedIdentified> identify_fused(std::string_view content_digest,
                                                std::string_view behavior_digest,
                                                std::size_t k = 5) {
        return identify(Probe{.content = std::string(content_digest),
                              .behavior = std::string(behavior_digest),
                              .k = k});
    }
    /// Batch transport (IDENTIFYB): positional replies for many content
    /// probes in one round trip. A genuinely different wire shape — not a
    /// Probe wrapper — but resolved server-side by the same identify path.
    std::vector<std::optional<Identified>> identify_many(
        const std::vector<std::string>& digests);
    Identified observe(std::string_view digest, std::string_view hint = {});
    std::vector<Identified> top_n(std::string_view digest, std::size_t k);
    /// Behavioral sighting (OBSERVETS); the digest is a shapelet digest
    /// (behavior::shapelet_digest_string).
    Identified observe_behavior(std::string_view digest, std::string_view hint = {});
    /// STATS response as "key value" lines (minus the leading OK).
    std::string stats_text();
    /// Force a checkpoint; returns its path.
    std::string checkpoint();
    /// Fetch the server's partition map (PARTMAP); throws util::Error when
    /// the server is unpartitioned.
    std::string partition_map_text();
    /// Range-scoped registry fingerprint (FPRANGE) — the rebalance
    /// convergence probe.
    std::uint64_t fingerprint_range(std::uint64_t lo, std::uint64_t hi);

private:
    int fd_ = -1;
    std::chrono::milliseconds timeout_;
    std::string buffer_;
};

}  // namespace siren::serve
