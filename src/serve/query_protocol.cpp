#include "serve/query_protocol.hpp"

#include <charconv>
#include <vector>

#include "fuzzy/ctph.hpp"
#include "serve/recognition_service.hpp"
#include "util/endian.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace siren::serve {

namespace {

void append_match(std::string& out, const Identified& match) {
    out += "match ";
    util::append_number(out, match.family);
    out.push_back(' ');
    util::append_number(out, match.score);
    out.push_back(' ');
    out += match.name;
    out.push_back('\n');
}

}  // namespace

void append_frame(std::string& out, std::string_view payload) {
    util::append_u32le(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload);
}

std::optional<std::string_view> parse_frame(std::string_view buffer, std::size_t& consumed) {
    consumed = 0;
    if (buffer.size() < 4) return std::nullopt;
    const std::uint32_t length = util::get_u32le(buffer.data());
    if (length > kMaxQueryFrameBytes) {
        throw util::ParseError("query frame of " + std::to_string(length) +
                               " bytes exceeds the limit");
    }
    if (buffer.size() < 4u + length) return std::nullopt;
    consumed = 4u + length;
    return buffer.substr(4, length);
}

namespace {

/// A response must itself fit the frame limit — the server must never emit
/// a frame its own protocol (and QueryClient::parse_frame) declares
/// invalid. A huge-but-legal batch IDENTIFY or TOPN gets a clear error
/// instead of a torn connection on the client side.
std::string cap_response(std::string response) {
    if (response.size() > kMaxQueryFrameBytes) {
        return "ERR response of " + std::to_string(response.size()) +
               " bytes exceeds the frame limit; lower the batch size or k";
    }
    return response;
}

QueryVerb verb_of(std::string_view verb) {
    if (verb == "IDENTIFY") return QueryVerb::kIdentify;
    if (verb == "IDENTIFYB") return QueryVerb::kIdentifyB;
    if (verb == "IDENTIFYTS") return QueryVerb::kIdentifyTs;
    if (verb == "IDENTIFY2") return QueryVerb::kIdentify2;
    if (verb == "OBSERVE") return QueryVerb::kObserve;
    if (verb == "OBSERVETS") return QueryVerb::kObserveTs;
    if (verb == "TOPN") return QueryVerb::kTopN;
    if (verb == "STATS") return QueryVerb::kStats;
    if (verb == "CHECKPOINT") return QueryVerb::kCheckpoint;
    if (verb == "PARTMAP") return QueryVerb::kPartMap;
    if (verb == "FPRANGE") return QueryVerb::kFpRange;
    return QueryVerb::kUnknown;
}

}  // namespace

std::string execute_query(RecognitionService& service, std::string_view request) {
    std::vector<std::string_view> words;
    util::split_view_into(util::trim(request), ' ', words);
    std::erase(words, std::string_view{});  // tolerate doubled spaces
    if (words.empty()) {
        service.count_verb(QueryVerb::kUnknown);
        return "ERR empty request";
    }
    const std::string_view verb = words[0];
    service.count_verb(verb_of(verb));

    try {
        if (verb == "IDENTIFY" || verb == "IDENTIFYB") {
            if (words.size() < 2) {
                return "ERR " + std::string(verb) + " needs at least one digest";
            }
            // IDENTIFYB always answers in counted batch framing, even for
            // one digest; bare IDENTIFY keeps the historical split.
            if (verb == "IDENTIFY" && words.size() == 2) {
                const auto match = service.identify(fuzzy::FuzzyDigest::parse(words[1]));
                return cap_response(format_identify_reply(match));
            }
            std::vector<fuzzy::FuzzyDigest> digests;
            digests.reserve(words.size() - 1);
            for (std::size_t i = 1; i < words.size(); ++i) {
                digests.push_back(fuzzy::FuzzyDigest::parse(words[i]));
            }
            const auto matches = service.identify_many(digests, service.batch_pool());
            return cap_response(format_identify_many_reply(matches));
        }

        if (verb == "IDENTIFYTS") {
            if (words.size() != 2) return "ERR usage: IDENTIFYTS digest";
            const auto match = service.identify_behavior(fuzzy::FuzzyDigest::parse(words[1]));
            return cap_response(format_identify_reply(match));
        }

        if (verb == "IDENTIFY2") {
            // IDENTIFY2 [C digest] [B digest] [k] — at least one channel.
            std::optional<fuzzy::FuzzyDigest> content;
            std::optional<fuzzy::FuzzyDigest> behavior;
            std::size_t k = 5;
            std::size_t i = 1;
            if (i + 1 < words.size() && words[i] == "C") {
                content = fuzzy::FuzzyDigest::parse(words[i + 1]);
                i += 2;
            }
            if (i + 1 < words.size() && words[i] == "B") {
                behavior = fuzzy::FuzzyDigest::parse(words[i + 1]);
                i += 2;
            }
            if (i < words.size()) {
                const auto [ptr, ec] =
                    std::from_chars(words[i].data(), words[i].data() + words[i].size(), k);
                if (ec != std::errc{} || ptr != words[i].data() + words[i].size() || k == 0) {
                    return "ERR IDENTIFY2 k must be a positive integer";
                }
                ++i;
            }
            if (i != words.size() || (!content && !behavior)) {
                return "ERR usage: IDENTIFY2 [C digest] [B digest] [k]";
            }
            const auto matches = service.identify_fused(content, behavior, k);
            std::string out = "OK ";
            util::append_number(out, matches.size());
            out.push_back('\n');
            for (const auto& match : matches) {
                out += "match ";
                util::append_number(out, match.family);
                out.push_back(' ');
                util::append_number(out, match.score);
                out.push_back(' ');
                util::append_number(out, match.content_score);
                out.push_back(' ');
                util::append_number(out, match.behavior_score);
                out.push_back(' ');
                out += match.name;
                out.push_back('\n');
            }
            return cap_response(std::move(out));
        }

        if (verb == "OBSERVE" || verb == "OBSERVETS") {
            if (service.options().replication.read_only) {
                return std::string("ERR ") + std::string(kReadOnlyError) + ": route " +
                       std::string(verb) + " to the leader";
            }
            if (words.size() < 2 || words.size() > 3) {
                return "ERR usage: " + std::string(verb) + " digest [hint]";
            }
            const auto digest = fuzzy::FuzzyDigest::parse(words[1]);
            // Partition enforcement: a sighting must land on the one shard
            // owning its block size, or cross-shard identify would see the
            // same family seeded independently on two shards. The typed
            // reply names the owner and map version so a stale client can
            // re-route without an extra PARTMAP round trip.
            if (const auto map = service.partition_map();
                map && !map->owns(service.shard_id(), digest.block_size)) {
                service.count_wrong_shard();
                std::string out = "ERR ";
                out += kWrongShardError;
                out += " owner=";
                util::append_number(out, map->owner_of(digest.block_size));
                out += " version=";
                util::append_number(out, map->version());
                out += ": shard ";
                util::append_number(out, service.shard_id());
                out += " does not own block size ";
                util::append_number(out, digest.block_size);
                return out;
            }
            // Admission control: a full writer queue means observe_sync
            // would block this event-loop thread (and every connection it
            // serves) behind the backlog. Shed with the typed marker so
            // clients back off or try another replica instead of hanging.
            if (service.queue_depth() >= service.shed_threshold()) {
                service.count_observe_shed();
                return std::string("ERR ") + std::string(kOverloadedError) +
                       ": observe queue is full, retry later";
            }
            const std::string hint = words.size() == 3 ? std::string(words[2]) : std::string();
            const auto result = verb == "OBSERVETS"
                                    ? service.observe_behavior_sync(digest, hint)
                                    : service.observe_sync(digest, hint);
            std::string out = "OK ";
            util::append_number(out, result.family);
            out.push_back(' ');
            util::append_number(out, result.score);
            out.push_back(' ');
            out += result.new_family ? "new" : "known";
            out.push_back(' ');
            out += result.name;
            return cap_response(std::move(out));
        }

        if (verb == "TOPN") {
            if (words.size() != 3) return "ERR usage: TOPN digest k";
            std::size_t k = 0;
            const auto [ptr, ec] =
                std::from_chars(words[2].data(), words[2].data() + words[2].size(), k);
            if (ec != std::errc{} || ptr != words[2].data() + words[2].size() || k == 0) {
                return "ERR TOPN k must be a positive integer";
            }
            const auto matches = service.top_n(fuzzy::FuzzyDigest::parse(words[1]), k);
            std::string out = "OK ";
            util::append_number(out, matches.size());
            out.push_back('\n');
            for (const auto& match : matches) append_match(out, match);
            return cap_response(std::move(out));
        }

        if (verb == "STATS") {
            if (words.size() != 1) return "ERR STATS takes no arguments";
            const auto snap = service.snapshot();
            const auto counters = service.counters();
            std::string out = "OK\n";
            const auto line = [&out](std::string_view key, std::uint64_t value) {
                out += key;
                out.push_back(' ');
                util::append_number(out, value);
                out.push_back('\n');
            };
            // Schema header first (docs/recognition_service.md, "STATS
            // schema"): parsers key on stats_version, ignore unknown keys.
            line("stats_version", kStatsVersion);
            out += service.options().replication.read_only ? "role follower\n" : "role leader\n";
            line("families", snap->registry.family_count());
            line("sightings", snap->registry.total_sightings());
            // Channel sizes: retained exemplars per recognition channel and
            // how many families carry signatures in both (the fused set).
            line("content_digests", snap->registry.content_digest_count());
            line("behavior_digests", snap->registry.behavior_digest_count());
            line("fused_families", snap->registry.fused_family_count());
            // The convergence audit: identical fingerprints = identical
            // registry state, so "did this follower converge" is a
            // leader-vs-follower STATS compare (docs/replication.md).
            // Memoized per snapshot — polling STATS stays cheap.
            line("fingerprint", snap->fingerprint());
            line("snapshot_version", snap->version);
            line("applied", snap->applied);
            line("identifies", counters.identifies);
            line("observes_enqueued", counters.observes_enqueued);
            line("observes_applied", counters.observes_applied);
            line("observes_dropped", counters.observes_dropped);
            line("feed_records", counters.feed_records);
            line("feed_file_hashes", counters.feed_file_hashes);
            line("feed_ts_hashes", counters.feed_ts_hashes);
            line("feed_malformed", counters.feed_malformed);
            line("publishes", counters.publishes);
            line("checkpoints", counters.checkpoints);
            line("checkpoint_errors", counters.checkpoint_errors);
            line("observes_journaled", counters.observes_journaled);
            line("wal_fallbacks", counters.wal_fallbacks);
            line("observes_shed", counters.observes_shed);
            // Publish-cost telemetry: O(delta) publication means
            // publish_ns tracks batch size, and shared_*/total_* report
            // how much of the latest snapshot is structurally shared with
            // its predecessor (docs/recognition_service.md).
            line("publish_ns", counters.publish_ns);
            line("publish_ns_last", counters.publish_ns_last);
            line("publish_errors", counters.publish_errors);
            line("shared_buckets", counters.shared_buckets);
            line("total_buckets", counters.total_buckets);
            line("shared_chunks", counters.shared_chunks);
            line("total_chunks", counters.total_chunks);
            // Partition membership (partitioned fleets only): which shard
            // this is, which map version it enforces, and how many observes
            // it bounced as wrong_shard (docs/sharding.md).
            if (const auto map = service.partition_map()) {
                line("shard_id", service.shard_id());
                line("partition_version", map->version());
                line("wrong_shard_rejects", service.wrong_shard_rejects());
            }
            // Armed failpoints (fault-injection builds only): one
            // "failpoint.<name> <fires>" line per armed point, so a chaos
            // driver can confirm over the wire that its faults landed.
            if (util::failpoint::compiled_in()) {
                for (const auto& fp : util::failpoint::counters()) {
                    out += "failpoint.";
                    out += fp.name;
                    out.push_back(' ');
                    util::append_number(out, fp.fires);
                    out.push_back('\n');
                }
            }
            // Per-verb request counters (this STATS included).
            for (std::size_t v = 0; v < static_cast<std::size_t>(QueryVerb::kCount); ++v) {
                const auto verb_id = static_cast<QueryVerb>(v);
                line(query_verb_name(verb_id), service.verb_count(verb_id));
            }
            return out;
        }

        if (verb == "CHECKPOINT") {
            if (words.size() != 1) return "ERR CHECKPOINT takes no arguments";
            std::string error;
            if (!service.checkpoint_now(&error)) {
                return "ERR checkpoint failed: " + error;
            }
            return "OK " + service.options().checkpoint_path;
        }

        if (verb == "PARTMAP") {
            if (words.size() != 1) return "ERR PARTMAP takes no arguments";
            const auto map = service.partition_map();
            if (!map) return "ERR not partitioned: this service has no partition map";
            return cap_response("OK\n" + map->serialize());
        }

        if (verb == "FPRANGE") {
            // Range-scoped registry fingerprint: the rebalance convergence
            // check ("has the new owner's copy of [lo, hi] caught up to
            // mine?") without shipping either registry (docs/sharding.md).
            if (words.size() != 3) return "ERR usage: FPRANGE lo hi";
            unsigned long long lo = 0;
            unsigned long long hi = 0;
            if (!util::parse_decimal(words[1], lo) || !util::parse_decimal(words[2], hi) ||
                lo > hi) {
                return "ERR FPRANGE needs a non-inverted decimal block-size range";
            }
            std::string out = "OK ";
            util::append_number(out, service.snapshot()->registry.fingerprint_range(lo, hi));
            return out;
        }

        return "ERR unknown verb '" + std::string(verb) + "'";
    } catch (const util::Error& e) {
        return std::string("ERR ") + e.what();
    }
}

std::optional<std::uint64_t> StatsSnapshot::get(std::string_view key) const {
    for (const auto& [k, v] : values) {
        if (k == key) return v;
    }
    return std::nullopt;
}

StatsSnapshot parse_stats(std::string_view text) {
    if (!util::starts_with(text, "OK")) {
        throw util::ParseError("not a STATS reply: " + std::string(text.substr(0, 40)));
    }
    StatsSnapshot stats;
    for (const auto raw : util::split_view(text, '\n')) {
        const auto line = util::trim(raw);
        if (line.empty() || line == "OK") continue;
        const auto space = line.find(' ');
        if (space == std::string_view::npos) continue;
        const auto key = line.substr(0, space);
        const auto value = util::trim(line.substr(space + 1));
        if (key == "role") {
            stats.role = std::string(value);
            continue;
        }
        // Unknown keys are fine (forward compat); non-numeric values are
        // skipped rather than rejected for the same reason.
        unsigned long long parsed = 0;
        if (!util::parse_decimal(value, parsed)) continue;
        stats.values.emplace_back(std::string(key), parsed);
    }
    return stats;
}

std::string format_identify_reply(const std::optional<Identified>& match) {
    if (!match) return "UNKNOWN";
    std::string out = "OK ";
    util::append_number(out, match->family);
    out.push_back(' ');
    util::append_number(out, match->score);
    out.push_back(' ');
    out += match->name;
    return out;
}

std::string format_identify_many_reply(const std::vector<std::optional<Identified>>& matches) {
    std::string out = "OK ";
    util::append_number(out, matches.size());
    out.push_back('\n');
    for (const auto& match : matches) {
        if (match) {
            append_match(out, *match);
        } else {
            out += "unknown\n";
        }
    }
    return out;
}

}  // namespace siren::serve
