#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace siren::serve {

/// Segment-shipping replication — the scale-out layer of the recognition
/// service. The leader's durable segment directory (the ingest WAL plus
/// the service's own observe WAL) *is* the replicated log: a
/// ReplicationSource streams raw segment bytes over TCP from whatever
/// per-file byte watermark a follower announces, and a ReplicationSink
/// writes those bytes into a local segment directory that the follower's
/// existing SegmentTail -> RecognitionService pipeline consumes unchanged.
/// Nothing is re-framed and nothing is interpreted in flight; the record
/// CRCs written by the leader's SegmentWriter travel with the bytes and
/// are verified by the follower's tail exactly as they would be locally.
///
/// Transport framing is the query protocol's (4-byte little-endian length
/// + payload, serve/query_protocol.hpp). Payloads:
///
///   follower -> leader:  "SUBSCRIBE\n" ("have " name ' ' size "\n")*
///   leader -> follower:  "DATA " name ' ' offset ' ' crc32c "\n" bytes
///
/// The watermark is simply the follower's local file sizes, so it is
/// durable by construction (the files are the watermark) and resubscribing
/// after any disconnect, crash, or restart resumes at exactly the first
/// missing byte. Each DATA chunk carries a crc32c over its bytes; a
/// mismatch (or any malformed frame) drops the connection and the follower
/// reconnects and re-requests from its watermark. Full protocol grammar,
/// convergence argument and failure matrix: docs/replication.md.

/// Tuning for one ReplicationSource (leader side).
struct ReplicationSourceOptions {
    /// TCP port; 0 binds an ephemeral port (see port()).
    std::uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Segment directory to serve (the leader's durable WAL).
    std::string segments_dir;
    /// How often the loop rescans the directory for new bytes when no
    /// socket events arrive.
    std::chrono::milliseconds poll{50};
    /// Bytes per DATA chunk (one frame).
    std::size_t chunk_bytes = 256u << 10;
    /// Per-connection cap on buffered-but-unsent reply bytes; shipping
    /// pauses past it until the follower drains (backpressure), so one
    /// slow follower cannot balloon the leader's memory.
    std::size_t max_buffered_bytes = 4u << 20;
    /// Connections beyond this are closed at accept (counted).
    std::size_t max_followers = 64;
};

/// Aggregated ReplicationSource counters.
struct ReplicationSourceStats {
    std::uint64_t connections = 0;      ///< accepted
    std::uint64_t rejected = 0;         ///< closed at accept: follower limit
    std::uint64_t subscriptions = 0;    ///< SUBSCRIBE frames handled
    std::uint64_t chunks_sent = 0;      ///< DATA frames queued
    std::uint64_t bytes_shipped = 0;    ///< segment payload bytes queued
    std::uint64_t protocol_errors = 0;  ///< garbage frames (connection dropped)
};

/// Leader-side replication server: one epoll event-loop thread multiplexing
/// the listener and every follower connection (the QueryServer scheme).
/// Each wake-up it flushes parked writes, reads SUBSCRIBE frames, and for
/// every subscribed follower with buffer room ships the byte ranges its
/// watermark is missing, in the canonical (stream prefix, numeric
/// sequence) segment order — sealed and live files alike, via
/// storage::read_segment_range.
class ReplicationSource {
public:
    /// Binds and starts the loop thread; throws util::SystemError when the
    /// socket cannot be created/bound.
    explicit ReplicationSource(ReplicationSourceOptions options);
    ~ReplicationSource();

    ReplicationSource(const ReplicationSource&) = delete;
    ReplicationSource& operator=(const ReplicationSource&) = delete;

    std::uint16_t port() const { return port_; }

    /// Close the listener and every connection, join the loop; idempotent.
    void stop();

    ReplicationSourceStats stats() const;

private:
    struct Follower {
        std::string in;   ///< bytes read, not yet framed
        std::string out;  ///< frames pending write
        std::size_t out_pos = 0;
        bool want_write = false;
        bool subscribed = false;
        /// name -> next byte to ship (from the follower's watermark).
        std::map<std::string, std::uint64_t> offsets;
    };

    /// One segment file's current state, snapshotted once per wake-up and
    /// shared across every follower's pump.
    struct SegmentState {
        std::string path;
        std::string name;
        std::uint64_t size = 0;
    };

    void event_loop();
    void handle_readable(int fd, Follower& conn);
    /// Parse buffered SUBSCRIBE frames; false when the connection died.
    bool process_frames(int fd, Follower& conn);
    bool flush_writes(int fd, Follower& conn);
    /// Queue missing byte ranges for one follower, up to the buffer cap.
    void pump(Follower& conn, const std::vector<SegmentState>& segments);
    void close_connection(int fd);

    ReplicationSourceOptions options_;
    std::uint16_t port_ = 0;
    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int event_fd_ = -1;  ///< stop signal
    std::map<int, Follower> followers_;
    std::string chunk_;  ///< reused read buffer
    std::thread loop_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> subscriptions_{0};
    std::atomic<std::uint64_t> chunks_sent_{0};
    std::atomic<std::uint64_t> bytes_shipped_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
};

/// ReplicationSink counters (atomics: the follower thread writes while
/// operators and tests read).
struct ReplicationSinkStats {
    std::atomic<std::uint64_t> chunks{0};           ///< DATA frames applied
    std::atomic<std::uint64_t> bytes{0};            ///< segment bytes appended
    std::atomic<std::uint64_t> duplicate_bytes{0};  ///< re-shipped bytes skipped
    std::atomic<std::uint64_t> crc_failures{0};     ///< chunk crc mismatches (drop)
    std::atomic<std::uint64_t> protocol_errors{0};  ///< malformed/unsafe frames (drop)
    std::atomic<std::uint64_t> io_errors{0};        ///< local append failures (drop)
};

/// Follower-side sink: validates DATA frames and appends their bytes to
/// `<directory>/<name>`. The local files double as the durable replication
/// watermark — subscribe_payload() is just a directory scan. Not
/// thread-safe; owned by the follower thread (stats are atomics so other
/// threads may read them).
class ReplicationSink {
public:
    /// Creates `directory` when missing (throws util::SystemError on
    /// failure — a follower must be loud about an unwritable replica dir).
    explicit ReplicationSink(std::string directory);

    /// The SUBSCRIBE payload for the current local state.
    std::string subscribe_payload() const;

    /// Apply one DATA frame. False = the stream can no longer be trusted
    /// (crc mismatch, malformed header, offset gap, local I/O failure);
    /// the caller must drop the connection and resubscribe from the
    /// watermark. `error` receives the reason.
    bool apply_chunk(std::string_view payload, std::string& error);

    const ReplicationSinkStats& stats() const { return stats_; }
    const std::string& directory() const { return directory_; }

private:
    std::string directory_;
    ReplicationSinkStats stats_;
};

/// Tuning for one ReplicationFollower.
struct ReplicationFollowerOptions {
    std::string leader_host = "127.0.0.1";
    std::uint16_t leader_port = 0;
    /// Local replica segment directory (the sink's target).
    std::string directory;
    std::chrono::milliseconds connect_timeout{5000};
    /// Floor of the reconnect pause. Consecutive failed connects double the
    /// pause from here (with jitter) up to reconnect_backoff_cap; the first
    /// retry after a working session starts back at the floor. Jitter keeps
    /// a fleet of followers from probing a recovering leader in lockstep.
    std::chrono::milliseconds reconnect_backoff{500};
    /// Ceiling of the exponential reconnect backoff.
    std::chrono::milliseconds reconnect_backoff_cap{10000};
};

/// ReplicationFollower counters.
struct ReplicationFollowerStats {
    std::uint64_t connects = 0;     ///< sessions established (SUBSCRIBE sent)
    std::uint64_t disconnects = 0;  ///< sessions ended (error, EOF, or drop)
    std::uint64_t chunks = 0;
    std::uint64_t bytes = 0;             ///< segment bytes appended locally
    std::uint64_t duplicate_bytes = 0;   ///< re-shipped bytes skipped
    std::uint64_t chunk_drops = 0;       ///< connections dropped on a bad chunk
    std::uint64_t backoffs = 0;          ///< reconnect pauses taken
    std::uint64_t last_backoff_ms = 0;   ///< length of the most recent pause
    std::string last_error;
};

/// The follower's replication client: one background thread that connects
/// to the leader, subscribes from the sink's watermark, and streams DATA
/// frames into the sink — reconnecting with backoff after every failure
/// (leader restart, torn chunk, network error). Pair it with a
/// RecognitionService following the same local directory and the follower
/// serves IDENTIFY/TOPN from replicated state.
class ReplicationFollower {
public:
    /// Starts the thread; throws util::SystemError when the sink directory
    /// cannot be created. An unreachable leader is NOT an error — the
    /// thread keeps retrying, so followers may boot before their leader.
    explicit ReplicationFollower(ReplicationFollowerOptions options);
    ~ReplicationFollower();

    ReplicationFollower(const ReplicationFollower&) = delete;
    ReplicationFollower& operator=(const ReplicationFollower&) = delete;

    /// Disconnect and join the thread; idempotent.
    void stop();

    ReplicationFollowerStats stats() const;
    const std::string& directory() const { return sink_.directory(); }

private:
    void run();
    /// One connect -> subscribe -> stream session; returns when it ends.
    void session();

    ReplicationFollowerOptions options_;
    ReplicationSink sink_;
    int wake_fd_ = -1;  ///< eventfd: stop() interrupts connect/poll/backoff
    std::atomic<bool> stop_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<std::uint64_t> connects_{0};
    std::atomic<std::uint64_t> disconnects_{0};
    std::atomic<std::uint64_t> chunk_drops_{0};
    std::atomic<std::uint64_t> backoffs_{0};
    std::atomic<std::uint64_t> last_backoff_ms_{0};
    mutable std::mutex error_mutex_;
    std::string last_error_;
    std::thread thread_;
};

/// Replication frame limit: a chunk plus its header line must fit the
/// shared length framing. Sources cap chunk_bytes against this.
inline constexpr std::uint32_t kMaxReplicationFrameBytes = 1u << 20;

/// Validate a segment basename received over the wire before using it as a
/// path component: must be a plain `*.seg` basename, no separators, no
/// leading dot. Both ends apply it — the sink before writing, the source
/// before keying its offsets.
bool valid_segment_name(std::string_view name);

}  // namespace siren::serve
