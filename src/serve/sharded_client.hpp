#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/partition_map.hpp"
#include "serve/query_client.hpp"  // Probe, FusedIdentified
#include "serve/replica_client.hpp"

namespace siren::serve {

/// Tuning for one ShardedClient.
struct ShardedClientOptions {
    /// Handed to every per-shard ReplicaClient.
    ReplicaClientOptions replica;
    /// How many wrong_shard rejections one observe absorbs (each triggers
    /// a PARTMAP refresh and a re-route) before the error surfaces. Two
    /// covers the common rebalance race: one stale-map redirect, one more
    /// in case the map moved again mid-refresh.
    std::size_t max_redirects = 2;
};

/// The routed face of a partitioned recognition fleet: one client API over
/// M shards, each shard behind its own failover ReplicaClient
/// (docs/sharding.md).
///
/// Routing rules:
///   * identify(Probe) fans out to every shard whose owned ranges touch
///     the probe's block-size ladder(s) — at most 3 per channel, exactly 1
///     when a ladder sits inside one range — and merges the per-shard
///     rankings (merge_rankings below). Against a fleet whose shards
///     jointly hold what one registry would, the merged ranking is
///     bit-identical to that single registry's (names and scores; family
///     ids are shard-local and not comparable).
///   * observe()/observe_behavior() route to exactly the shard owning the
///     digest's block size. A wrong_shard rejection (this client's map is
///     stale, a rebalance moved the range) triggers a PARTMAP refresh from
///     the fleet and a re-route, bounded by max_redirects.
///   * The partition map self-refreshes: any shard serves PARTMAP, higher
///     version wins. A refresh rebuilds only the per-shard clients whose
///     endpoint lists changed.
///
/// Not thread-safe (one client, one thread), like the clients it wraps.
class ShardedClient {
public:
    /// Starts from `map` (load_partition_map / PartitionMap::parse of a
    /// PARTMAP reply). No connection is attempted until the first call.
    ShardedClient(PartitionMap map, ShardedClientOptions options = {});

    /// Ranked fused identification across the owning shards.
    std::vector<FusedIdentified> identify(const Probe& probe);

    /// Legacy singleton shapes, same bridges as QueryClient's.
    std::optional<Identified> identify(std::string_view digest) {
        return first_identified(identify(Probe{.content = std::string(digest)}));
    }
    std::optional<Identified> identify_behavior(std::string_view digest) {
        return first_identified(identify(Probe{.behavior = std::string(digest)}));
    }

    /// Owner-routed sighting; follows wrong_shard redirects (see above).
    Identified observe(std::string_view digest, std::string_view hint = {});
    Identified observe_behavior(std::string_view digest, std::string_view hint = {});

    /// Fetch PARTMAP from the fleet and adopt it when its version is
    /// higher; returns true when the map changed.
    bool refresh_map();

    const PartitionMap& map() const { return map_; }

    /// Total wrong_shard redirects this client followed (observability for
    /// the rebalance tests).
    std::uint64_t redirects_followed() const { return redirects_followed_; }

    /// Merge per-shard fused rankings: group by family name, keep each
    /// channel's best score, re-fuse with the registry's integer weights
    /// (both_probed: (content_weight*c + behavior_weight*b) / (sum);
    /// single-channel: pass-through), order by fused score descending then
    /// name ascending — the same deterministic order a single registry
    /// emits — and truncate to k. Exposed for the parity tests.
    static std::vector<FusedIdentified> merge_rankings(
        const std::vector<std::vector<FusedIdentified>>& per_shard, bool both_probed,
        std::size_t k, int content_weight = 3, int behavior_weight = 2);

private:
    ReplicaClient& shard_client(std::uint32_t shard_id);
    /// Re-point per-shard clients at `map` (keeping connections whose
    /// endpoint lists did not change) and swap it in.
    void adopt(PartitionMap map);
    Identified observe_routed(std::string_view digest, std::string_view hint, bool behavioral);

    PartitionMap map_;
    ShardedClientOptions options_;
    /// One lazy ReplicaClient per shard, keyed by shard id.
    struct ShardSlot {
        std::uint32_t id = 0;
        std::vector<ReplicaEndpoint> endpoints;
        std::unique_ptr<ReplicaClient> client;
    };
    std::vector<ShardSlot> slots_;
    std::uint64_t redirects_followed_ = 0;
};

}  // namespace siren::serve
