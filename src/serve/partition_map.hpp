#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace siren::serve {

/// One HOST:PORT of a recognition replica (leader or follower).
struct ReplicaEndpoint {
    std::string host;
    std::uint16_t port = 0;

    friend bool operator==(const ReplicaEndpoint&, const ReplicaEndpoint&) = default;
};

/// Parse "host:port[,host:port…]"; throws util::ParseError on anything
/// malformed (empty host, non-numeric/zero port).
std::vector<ReplicaEndpoint> parse_replica_list(std::string_view list);

/// Inclusive block-size interval [lo, hi] — the partition key unit.
///
/// Block size is the partition key because it is what the similarity
/// engine buckets by: a probe at block size bs is comparable only with
/// digests at bs/2, bs and 2*bs (fuzzy's digest1/digest2 pairing rule, see
/// SimilarityIndex), so contiguous block-size range ownership keeps the
/// entire bucketed probe of any one digest on at most three shards — and
/// on exactly one when the range spans the whole ladder. Content digests
/// use the 3 * 2^k ladder; behavior (shapelet) digests use w * 64, which
/// rides the same routing rule unchanged.
struct KeyRange {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool contains(std::uint64_t block_size) const { return block_size >= lo && block_size <= hi; }

    friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

/// One leader shard: who serves it and which key ranges it owns.
struct ShardInfo {
    std::uint32_t id = 0;
    ReplicaEndpoint leader;
    std::vector<ReplicaEndpoint> followers;  ///< read replicas of this shard
    std::vector<KeyRange> ranges;            ///< owned block-size ranges

    /// leader + followers, leader first — what a per-shard ReplicaClient
    /// takes (reads round-robin, observes seek the leader).
    std::vector<ReplicaEndpoint> replicas() const;
};

/// Versioned shard table of a partitioned recognition fleet: shard id ->
/// leader endpoint + follower list + owned key ranges. The map is a value
/// (immutable once built); distribution is by exchange of whole maps —
/// servers load one at startup (siren_recognized --partition-map) and
/// clients self-refresh over the wire via the PARTMAP verb, comparing
/// versions. Higher version wins; there is no merge.
///
/// Invariants (validate(), also enforced by the constructor and parse()):
/// ranges are non-empty with lo <= hi, non-overlapping across the whole
/// map, and together cover the full 64-bit key space, so owner_of() is
/// total; shard ids are unique and every shard has a leader endpoint.
/// Full coverage means a new ladder rung appearing in traffic routes
/// somewhere deterministic instead of erroring.
///
/// Serialized form (the PARTMAP payload and the --partition-map file; one
/// directive per line, '#' comments and blank lines ignored):
///
///   partmap 1
///   version <v>
///   shard <id> <leader host:port> <followers host:port,...|->
///   range <shard-id> <lo> <hi>
///
/// docs/sharding.md covers the routing rules and the rebalance protocol.
class PartitionMap {
public:
    /// Builds and validates; throws util::Error on any invariant
    /// violation (see validate()).
    PartitionMap(std::uint64_t version, std::vector<ShardInfo> shards);

    /// The degenerate single-shard map: one shard (id 0) owning the whole
    /// key space — routing through it is bit-identical to talking to the
    /// replica list directly (the compatibility baseline test_partition
    /// pins).
    static PartitionMap single(ReplicaEndpoint leader,
                               std::vector<ReplicaEndpoint> followers = {});

    /// Parse the serialized form; throws util::ParseError on malformed
    /// input and util::Error on invariant violations.
    static PartitionMap parse(std::string_view text);

    std::string serialize() const;

    std::uint64_t version() const { return version_; }
    const std::vector<ShardInfo>& shards() const { return shards_; }
    std::size_t shard_count() const { return shards_.size(); }

    /// The shard with this id, or nullptr.
    const ShardInfo* shard(std::uint32_t id) const;

    /// Id of the shard owning `block_size`. Total: full coverage is an
    /// invariant.
    std::uint32_t owner_of(std::uint64_t block_size) const;

    bool owns(std::uint32_t shard_id, std::uint64_t block_size) const {
        return owner_of(block_size) == shard_id;
    }

    /// Owners of the probe ladder {bs/2, bs, 2*bs} (2*bs saturates at the
    /// key-space ceiling), deduplicated, ascending shard id — every shard
    /// a probe at `block_size` can score on. At most 3; exactly 1 when the
    /// ladder sits in one range's interior.
    std::vector<std::uint32_t> shards_for_probe(std::uint64_t block_size) const;

private:
    PartitionMap() = default;

    /// Throws util::Error naming the first violated invariant.
    void validate() const;

    std::uint64_t version_ = 0;
    std::vector<ShardInfo> shards_;
};

/// Serialized `map` written to `path` atomically (tmp + rename); throws
/// util::SystemError on I/O failure. Convenience for tools and tests that
/// hand map files to daemons.
void save_partition_map(const PartitionMap& map, const std::string& path);

/// PartitionMap::parse over the contents of `path`; throws
/// util::SystemError when unreadable.
PartitionMap load_partition_map(const std::string& path);

}  // namespace siren::serve
