#include "serve/partition_map.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::serve {

std::vector<ReplicaEndpoint> parse_replica_list(std::string_view list) {
    std::vector<ReplicaEndpoint> out;
    std::vector<std::string_view> parts;
    util::split_view_into(list, ',', parts);
    for (const auto part : parts) {
        const auto endpoint = util::trim(part);
        if (endpoint.empty()) continue;  // tolerate "a:1,,b:2" and trailing commas
        const auto colon = endpoint.rfind(':');
        if (colon == std::string_view::npos || colon == 0) {
            throw util::ParseError("bad replica endpoint '" + std::string(endpoint) +
                                   "' (want HOST:PORT)");
        }
        long port = 0;
        if (!util::parse_decimal(endpoint.substr(colon + 1), port) || port <= 0 ||
            port > 65535) {
            throw util::ParseError("bad replica port in '" + std::string(endpoint) + "'");
        }
        out.push_back({std::string(endpoint.substr(0, colon)),
                       static_cast<std::uint16_t>(port)});
    }
    if (out.empty()) throw util::ParseError("empty replica list");
    return out;
}

std::vector<ReplicaEndpoint> ShardInfo::replicas() const {
    std::vector<ReplicaEndpoint> out;
    out.reserve(1 + followers.size());
    out.push_back(leader);
    out.insert(out.end(), followers.begin(), followers.end());
    return out;
}

namespace {

constexpr std::uint32_t kPartitionMapFormat = 1;

void append_endpoint(std::string& out, const ReplicaEndpoint& endpoint) {
    out += endpoint.host;
    out.push_back(':');
    util::append_number(out, endpoint.port);
}

}  // namespace

PartitionMap::PartitionMap(std::uint64_t version, std::vector<ShardInfo> shards)
    : version_(version), shards_(std::move(shards)) {
    validate();
}

PartitionMap PartitionMap::single(ReplicaEndpoint leader,
                                  std::vector<ReplicaEndpoint> followers) {
    ShardInfo shard;
    shard.id = 0;
    shard.leader = std::move(leader);
    shard.followers = std::move(followers);
    shard.ranges.push_back({0, ~0ull});
    return PartitionMap(1, {std::move(shard)});
}

void PartitionMap::validate() const {
    if (shards_.empty()) throw util::Error("partition map: no shards");
    // (lo, hi, owner) of every range, sorted by lo — adjacency then proves
    // both non-overlap and full coverage in one pass.
    std::vector<std::pair<KeyRange, std::uint32_t>> ranges;
    for (const auto& shard : shards_) {
        if (shard.leader.host.empty() || shard.leader.port == 0) {
            throw util::Error("partition map: shard " + std::to_string(shard.id) +
                              " has no leader endpoint");
        }
        for (const auto& other : shards_) {
            if (&other != &shard && other.id == shard.id) {
                throw util::Error("partition map: duplicate shard id " +
                                  std::to_string(shard.id));
            }
        }
        if (shard.ranges.empty()) {
            throw util::Error("partition map: shard " + std::to_string(shard.id) +
                              " owns no key range");
        }
        for (const auto& range : shard.ranges) {
            if (range.lo > range.hi) {
                throw util::Error("partition map: inverted range [" +
                                  std::to_string(range.lo) + ", " + std::to_string(range.hi) +
                                  "] on shard " + std::to_string(shard.id));
            }
            ranges.emplace_back(range, shard.id);
        }
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const auto& a, const auto& b) { return a.first.lo < b.first.lo; });
    if (ranges.front().first.lo != 0) {
        throw util::Error("partition map: key space not covered below " +
                          std::to_string(ranges.front().first.lo));
    }
    for (std::size_t i = 1; i < ranges.size(); ++i) {
        const auto prev_hi = ranges[i - 1].first.hi;
        const auto lo = ranges[i].first.lo;
        if (lo <= prev_hi) {
            throw util::Error("partition map: ranges of shards " +
                              std::to_string(ranges[i - 1].second) + " and " +
                              std::to_string(ranges[i].second) + " overlap at " +
                              std::to_string(lo));
        }
        if (lo != prev_hi + 1) {
            throw util::Error("partition map: key space gap (" + std::to_string(prev_hi) +
                              ", " + std::to_string(lo) + ")");
        }
    }
    if (ranges.back().first.hi != ~0ull) {
        throw util::Error("partition map: key space not covered above " +
                          std::to_string(ranges.back().first.hi));
    }
}

const ShardInfo* PartitionMap::shard(std::uint32_t id) const {
    for (const auto& shard : shards_) {
        if (shard.id == id) return &shard;
    }
    return nullptr;
}

std::uint32_t PartitionMap::owner_of(std::uint64_t block_size) const {
    for (const auto& shard : shards_) {
        for (const auto& range : shard.ranges) {
            if (range.contains(block_size)) return shard.id;
        }
    }
    // Unreachable: full coverage is a constructor invariant.
    throw util::Error("partition map: no owner for block size " + std::to_string(block_size));
}

std::vector<std::uint32_t> PartitionMap::shards_for_probe(std::uint64_t block_size) const {
    // The ladder a probe's digest parts can pair with: its own bucket plus
    // the coarser and finer neighbors (SimilarityIndex's block-size rule).
    const std::uint64_t coarser =
        block_size > (~0ull >> 1) ? ~0ull : block_size * 2;
    const std::uint64_t rungs[3] = {block_size / 2, block_size, coarser};
    std::vector<std::uint32_t> owners;
    for (const auto rung : rungs) {
        const auto owner = owner_of(rung);
        if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
            owners.push_back(owner);
        }
    }
    std::sort(owners.begin(), owners.end());
    return owners;
}

std::string PartitionMap::serialize() const {
    std::string out = "partmap ";
    util::append_number(out, kPartitionMapFormat);
    out += "\nversion ";
    util::append_number(out, version_);
    out.push_back('\n');
    for (const auto& shard : shards_) {
        out += "shard ";
        util::append_number(out, shard.id);
        out.push_back(' ');
        append_endpoint(out, shard.leader);
        out.push_back(' ');
        if (shard.followers.empty()) {
            out.push_back('-');
        } else {
            for (std::size_t i = 0; i < shard.followers.size(); ++i) {
                if (i > 0) out.push_back(',');
                append_endpoint(out, shard.followers[i]);
            }
        }
        out.push_back('\n');
        for (const auto& range : shard.ranges) {
            out += "range ";
            util::append_number(out, shard.id);
            out.push_back(' ');
            util::append_number(out, range.lo);
            out.push_back(' ');
            util::append_number(out, range.hi);
            out.push_back('\n');
        }
    }
    return out;
}

PartitionMap PartitionMap::parse(std::string_view text) {
    std::uint64_t version = 0;
    bool saw_header = false;
    bool saw_version = false;
    std::vector<ShardInfo> shards;
    std::vector<std::string_view> lines;
    util::split_view_into(text, '\n', lines);
    const auto find_shard = [&shards](std::uint32_t id) -> ShardInfo* {
        for (auto& shard : shards) {
            if (shard.id == id) return &shard;
        }
        return nullptr;
    };
    for (const auto raw_line : lines) {
        const auto line = util::trim(raw_line);
        if (line.empty() || line.front() == '#') continue;
        std::vector<std::string_view> words;
        util::split_view_into(line, ' ', words);
        std::erase(words, std::string_view{});
        const auto word = words.front();
        if (word == "partmap") {
            long format = 0;
            if (words.size() != 2 || !util::parse_decimal(words[1], format)) {
                throw util::ParseError("partition map: bad header '" + std::string(line) + "'");
            }
            if (format != kPartitionMapFormat) {
                throw util::ParseError("partition map: unsupported format " +
                                       std::to_string(format));
            }
            saw_header = true;
        } else if (word == "version") {
            unsigned long long v = 0;
            if (words.size() != 2 || !util::parse_decimal(words[1], v)) {
                throw util::ParseError("partition map: bad version line '" +
                                       std::string(line) + "'");
            }
            version = v;
            saw_version = true;
        } else if (word == "shard") {
            if (words.size() != 4) {
                throw util::ParseError("partition map: bad shard line '" + std::string(line) +
                                       "' (want: shard ID LEADER FOLLOWERS|-)");
            }
            long id = 0;
            if (!util::parse_decimal(words[1], id) || id < 0) {
                throw util::ParseError("partition map: bad shard id '" + std::string(words[1]) +
                                       "'");
            }
            ShardInfo shard;
            shard.id = static_cast<std::uint32_t>(id);
            if (find_shard(shard.id) != nullptr) {
                throw util::ParseError("partition map: duplicate shard " +
                                       std::to_string(shard.id));
            }
            shard.leader = parse_replica_list(words[2]).front();
            if (words[3] != "-") shard.followers = parse_replica_list(words[3]);
            shards.push_back(std::move(shard));
        } else if (word == "range") {
            unsigned long long lo = 0;
            unsigned long long hi = 0;
            long id = 0;
            if (words.size() != 4 || !util::parse_decimal(words[1], id) || id < 0 ||
                !util::parse_decimal(words[2], lo) || !util::parse_decimal(words[3], hi)) {
                throw util::ParseError("partition map: bad range line '" + std::string(line) +
                                       "' (want: range SHARD LO HI)");
            }
            ShardInfo* shard = find_shard(static_cast<std::uint32_t>(id));
            if (shard == nullptr) {
                throw util::ParseError("partition map: range names unknown shard " +
                                       std::to_string(id));
            }
            shard->ranges.push_back({lo, hi});
        } else {
            throw util::ParseError("partition map: unknown directive '" + std::string(word) +
                                   "'");
        }
    }
    if (!saw_header) throw util::ParseError("partition map: missing 'partmap' header");
    if (!saw_version) throw util::ParseError("partition map: missing 'version' line");
    return PartitionMap(version, std::move(shards));
}

void save_partition_map(const PartitionMap& map, const std::string& path) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) throw util::SystemError("cannot write partition map to " + tmp);
        out << map.serialize();
        if (!out.flush()) throw util::SystemError("short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        throw util::SystemError("cannot rename " + tmp + " to " + path);
    }
}

PartitionMap load_partition_map(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw util::SystemError("cannot read partition map " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return PartitionMap::parse(text.str());
}

}  // namespace siren::serve
