#include "net/file_spool.hpp"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "net/codec.hpp"
#include "util/error.hpp"

namespace siren::net {

namespace fs = std::filesystem;

FileSpoolSender::FileSpoolSender(std::string spool_dir) : spool_dir_(std::move(spool_dir)) {
    std::error_code ec;
    fs::create_directories(spool_dir_, ec);
    // Failure intentionally ignored here: send() discovers it per datagram.
}

void FileSpoolSender::send(std::string_view datagram) noexcept {
    try {
        const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
        const std::string name = std::to_string(seq) + "-" + std::to_string(::getpid()) + ".msg";
        const fs::path path = fs::path(spool_dir_) / name;

        // Write to a dot-prefixed temp name first, then rename: a
        // concurrently running drain must never read a half-written file.
        const fs::path tmp = fs::path(spool_dir_) / ("." + name);
        {
            std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
            if (!out) {
                errors_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            out.write(datagram.data(), static_cast<std::streamsize>(datagram.size()));
            if (!out) {
                errors_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            fs::remove(tmp, ec);
            return;
        }
        sent_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
        errors_.fetch_add(1, std::memory_order_relaxed);
    }
}

SpoolDrainStats drain_spool(const std::string& spool_dir, MessageQueue& queue) {
    SpoolDrainStats stats;
    std::error_code ec;
    fs::directory_iterator it(spool_dir, ec);
    if (ec) return stats;  // missing/unreadable spool: empty sweep

    std::vector<fs::path> files;
    for (const auto& entry : it) {
        if (!entry.is_regular_file(ec)) continue;
        const auto name = entry.path().filename().string();
        if (name.starts_with('.') || !name.ends_with(".msg")) continue;  // temp or foreign
        files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());

    for (const auto& path : files) {
        ++stats.files_seen;
        std::ifstream in(path, std::ios::binary);
        std::string payload((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
        try {
            Message m = decode(payload);
            if (queue.push(std::move(m))) {
                ++stats.delivered;
            } else {
                ++stats.dropped;
            }
        } catch (const util::ParseError&) {
            ++stats.malformed;
        }
        fs::remove(path, ec);
    }
    return stats;
}

}  // namespace siren::net
