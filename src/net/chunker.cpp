#include "net/chunker.hpp"

#include <algorithm>

#include "net/codec.hpp"

namespace siren::net {

ChunkPlan plan_chunks(const MessageView& header, std::string_view content,
                      std::size_t max_datagram, std::string& scratch) {
    // Overhead of an encoded message with empty content; escaping can at
    // worst double the content bytes, so budget for that.
    MessageView probe = header;
    probe.content = {};
    probe.content_escaped = false;
    probe.seq = 0;
    probe.total = 1;
    encode_into(probe, scratch);
    const std::size_t overhead = scratch.size() + 24;  // slack for wide SEQ/TOTAL digits
    ChunkPlan plan;
    plan.budget = max_datagram > overhead
                      ? std::max<std::size_t>((max_datagram - overhead) / 2, 1)
                      : 64;
    plan.total = content.empty()
                     ? 1
                     : static_cast<std::uint32_t>((content.size() + plan.budget - 1) / plan.budget);
    return plan;
}

std::vector<Message> chunk_content(const Message& header, std::string_view content,
                                   std::size_t max_datagram) {
    std::string scratch;
    const ChunkPlan plan = plan_chunks(as_view(header), content, max_datagram, scratch);

    std::vector<Message> out;
    if (content.empty()) {
        Message m = header;
        m.content.clear();
        m.seq = 0;
        m.total = 1;
        out.push_back(std::move(m));
        return out;
    }

    out.reserve(plan.total);
    for (std::uint32_t seq = 0; seq < plan.total; ++seq) {
        Message m = header;
        m.seq = seq;
        m.total = plan.total;
        const std::size_t begin = static_cast<std::size_t>(seq) * plan.budget;
        const std::size_t len = std::min(plan.budget, content.size() - begin);
        m.content.assign(content.substr(begin, len));
        out.push_back(std::move(m));
    }
    return out;
}

void Reassembler::add(Message m) {
    std::string key = m.process_key();
    key += '/';
    key += to_string(m.layer);
    key += '/';
    key += to_string(m.type);

    auto [it, inserted] = groups_.try_emplace(std::move(key));
    Group& g = it->second;
    if (inserted) {
        g.header = m;
        g.expected = m.total;
    } else {
        // TOTAL should agree across chunks; if a corrupted packet disagrees,
        // keep the larger claim so completeness stays conservative.
        g.expected = std::max(g.expected, m.total);
    }
    g.chunks.emplace(m.seq, std::move(m.content));  // duplicate seq: first wins
}

std::vector<Reassembler::Assembled> Reassembler::assemble() const {
    std::vector<Assembled> out;
    out.reserve(groups_.size());
    for (const auto& [key, group] : groups_) {
        Assembled a;
        a.merged = group.header;
        a.merged.seq = 0;
        a.merged.total = 1;
        a.merged.content.clear();
        for (const auto& [seq, piece] : group.chunks) a.merged.content += piece;
        a.received = static_cast<std::uint32_t>(group.chunks.size());
        a.expected = group.expected;
        out.push_back(std::move(a));
    }
    return out;
}

}  // namespace siren::net
