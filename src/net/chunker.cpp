#include "net/chunker.hpp"

#include <algorithm>

#include "net/codec.hpp"

namespace siren::net {

std::vector<Message> chunk_content(const Message& header, std::string_view content,
                                   std::size_t max_datagram) {
    // Overhead of an encoded message with empty content; escaping can at
    // worst double the content bytes, so budget for that.
    Message probe = header;
    probe.content.clear();
    probe.seq = 0;
    probe.total = 1;
    const std::size_t overhead = encode(probe).size() + 24;  // slack for wide SEQ/TOTAL digits
    const std::size_t budget = max_datagram > overhead ? (max_datagram - overhead) / 2 : 64;

    std::vector<Message> out;
    if (content.empty()) {
        out.push_back(probe);
        return out;
    }

    const std::uint32_t total =
        static_cast<std::uint32_t>((content.size() + budget - 1) / budget);
    out.reserve(total);
    for (std::uint32_t seq = 0; seq < total; ++seq) {
        Message m = header;
        m.seq = seq;
        m.total = total;
        const std::size_t begin = static_cast<std::size_t>(seq) * budget;
        const std::size_t len = std::min(budget, content.size() - begin);
        m.content.assign(content.substr(begin, len));
        out.push_back(std::move(m));
    }
    return out;
}

void Reassembler::add(Message m) {
    std::string key = m.process_key();
    key += '/';
    key += to_string(m.layer);
    key += '/';
    key += to_string(m.type);

    auto [it, inserted] = groups_.try_emplace(std::move(key));
    Group& g = it->second;
    if (inserted) {
        g.header = m;
        g.expected = m.total;
    } else {
        // TOTAL should agree across chunks; if a corrupted packet disagrees,
        // keep the larger claim so completeness stays conservative.
        g.expected = std::max(g.expected, m.total);
    }
    g.chunks.emplace(m.seq, std::move(m.content));  // duplicate seq: first wins
}

std::vector<Reassembler::Assembled> Reassembler::assemble() const {
    std::vector<Assembled> out;
    out.reserve(groups_.size());
    for (const auto& [key, group] : groups_) {
        Assembled a;
        a.merged = group.header;
        a.merged.seq = 0;
        a.merged.total = 1;
        a.merged.content.clear();
        for (const auto& [seq, piece] : group.chunks) a.merged.content += piece;
        a.received = static_cast<std::uint32_t>(group.chunks.size());
        a.expected = group.expected;
        out.push_back(std::move(a));
    }
    return out;
}

}  // namespace siren::net
