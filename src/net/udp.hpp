#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

#include "net/channel.hpp"

namespace siren::net {

/// Real UDP datagram sender (IPv4). The constructor resolves and connects
/// the socket; send() is sendto-and-forget and never throws or blocks on
/// the receiver — errors are counted, not raised, so a hooked user process
/// is never disturbed (paper §3.1 "Data Transmission").
class UdpSender : public Transport {
public:
    UdpSender(const std::string& host, std::uint16_t port);
    ~UdpSender() override;

    UdpSender(const UdpSender&) = delete;
    UdpSender& operator=(const UdpSender&) = delete;

    void send(std::string_view datagram) noexcept override;

    std::uint64_t sent() const { return sent_.load(); }
    std::uint64_t errors() const { return errors_.load(); }

private:
    int fd_ = -1;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> errors_{0};
};

/// Real UDP receiver: binds a socket, runs a receive thread that decodes
/// datagrams into a MessageQueue (the buffered channel of the paper's Go
/// receiver). Port 0 binds an ephemeral port, see port().
class UdpReceiver {
public:
    UdpReceiver(MessageQueue& queue, std::uint16_t port = 0);
    ~UdpReceiver();

    UdpReceiver(const UdpReceiver&) = delete;
    UdpReceiver& operator=(const UdpReceiver&) = delete;

    /// Actual bound port (useful when constructed with port 0).
    std::uint16_t port() const { return port_; }

    /// Stop the receive loop and join the thread; idempotent.
    void stop();

    const ChannelStats& stats() const { return stats_; }

private:
    void run();

    MessageQueue& queue_;
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
    ChannelStats stats_;
};

}  // namespace siren::net
