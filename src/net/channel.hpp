#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace siren::net {

/// Abstract datagram transport: the collector's only dependency on the
/// outside world. Implementations: UdpSender (real sockets) and
/// InMemoryChannel (deterministic, lossy, used for campaign-scale runs).
/// send() must never throw — "fire and forget" (paper §3.1): collection
/// failures must not disturb the hooked user process.
class Transport {
public:
    virtual ~Transport() = default;
    virtual void send(std::string_view datagram) noexcept = 0;
};

/// Bounded MPMC queue — the C++ equivalent of the Go receiver's buffered
/// channel. push() drops when full (counted), mirroring how a saturated UDP
/// socket buffer drops datagrams instead of back-pressuring senders.
class MessageQueue {
public:
    explicit MessageQueue(std::size_t capacity = 65536);

    /// Non-blocking; false when the queue was full and the item dropped.
    bool push(Message m);

    /// Blocks until an item arrives or close() is called; nullopt on closed
    /// and drained.
    std::optional<Message> pop();

    /// Wake all poppers; subsequent pops drain the backlog then return
    /// nullopt.
    void close();

    std::uint64_t dropped() const { return dropped_.load(); }
    std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Message> items_;
    std::size_t capacity_;
    bool closed_ = false;
    std::atomic<std::uint64_t> dropped_{0};
};

/// Counters shared by all transports.
struct ChannelStats {
    std::atomic<std::uint64_t> sent{0};        ///< datagrams handed to send()
    std::atomic<std::uint64_t> lost{0};        ///< dropped by the channel
    std::atomic<std::uint64_t> delivered{0};   ///< decoded and enqueued
    std::atomic<std::uint64_t> malformed{0};   ///< decode failures
};

/// Deterministic in-process transport with Bernoulli packet loss.
///
/// Replaces the kernel UDP path for experiments: the full LUMI-scale
/// campaign pushes millions of datagrams, and the loss experiment
/// (paper: ~0.02% of jobs had missing fields) needs reproducible drops.
class InMemoryChannel : public Transport {
public:
    /// loss_rate in [0,1]; seed drives the drop decisions.
    explicit InMemoryChannel(MessageQueue& queue, double loss_rate = 0.0,
                             std::uint64_t seed = 1);

    void send(std::string_view datagram) noexcept override;

    const ChannelStats& stats() const { return stats_; }

private:
    MessageQueue& queue_;
    double loss_rate_;
    std::mutex rng_mutex_;
    util::Rng rng_;
    ChannelStats stats_;
};

}  // namespace siren::net
