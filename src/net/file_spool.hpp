#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/channel.hpp"

namespace siren::net {

/// File-based collection — the XALT-style design SIREN rejected.
///
/// XALT (paper §5) writes a .json file per hooked process into a spool
/// directory and consolidates them periodically; the paper argues this
/// burdens the shared filesystem ("excessive open file handles ...
/// aggregating excessive amounts of small files"). This transport exists
/// as the third arm of the transport ablation: each datagram becomes one
/// small file, so the bench can measure the metadata cost and the failure
/// mode (spool unwritable) next to UDP, TCP and the fourth durability arm
/// — the storage::SegmentStore behind the ingest daemon, which also
/// persists every datagram but amortizes it into a few append-only,
/// fsync-batched segment files instead of N tiny files (see
/// bench_ablation_transport and docs/storage_format.md).
///
/// Naming: `<seq>-<pid>.msg`, seq monotone per sender — unique within a
/// process and collision-free across processes, like XALT's per-process
/// files. Writes are create+write+close per datagram; like every SIREN
/// transport, send() never throws (graceful failure: an unwritable spool
/// only increments the error counter).
class FileSpoolSender : public Transport {
public:
    /// The directory is created if missing; creation failure is deferred
    /// to send() (counted, not thrown) — a hooked process must survive a
    /// read-only filesystem.
    explicit FileSpoolSender(std::string spool_dir);

    void send(std::string_view datagram) noexcept override;

    std::uint64_t sent() const { return sent_.load(); }
    std::uint64_t errors() const { return errors_.load(); }
    const std::string& spool_dir() const { return spool_dir_; }

private:
    std::string spool_dir_;
    std::atomic<std::uint64_t> seq_{0};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> errors_{0};
};

/// Result of one spool sweep.
struct SpoolDrainStats {
    std::uint64_t files_seen = 0;
    std::uint64_t delivered = 0;   ///< decoded and enqueued
    std::uint64_t malformed = 0;   ///< decode failures (file still removed)
    std::uint64_t dropped = 0;     ///< queue full
};

/// Consume every `*.msg` file in `spool_dir` into the queue (the periodic
/// consolidation sweep of the file-based design), deleting consumed files.
/// Files are processed in name order, so seq ordering is preserved per
/// sender. Missing directory = empty sweep, not an error.
SpoolDrainStats drain_spool(const std::string& spool_dir, MessageQueue& queue);

}  // namespace siren::net
