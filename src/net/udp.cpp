#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/codec.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace siren::net {

UdpSender::UdpSender(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw util::SystemError("socket(): " + std::string(std::strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("inet_pton(" + host + ") failed");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("connect(): " + std::string(std::strerror(errno)));
    }
}

UdpSender::~UdpSender() {
    if (fd_ >= 0) ::close(fd_);
}

void UdpSender::send(std::string_view datagram) noexcept {
    if (fd_ < 0) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const ssize_t n = ::send(fd_, datagram.data(), datagram.size(), 0);
    if (n == static_cast<ssize_t>(datagram.size())) {
        sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
    }
}

UdpReceiver::UdpReceiver(MessageQueue& queue, std::uint16_t port) : queue_(queue) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throw util::SystemError("socket(): " + std::string(std::strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("bind(): " + std::string(std::strerror(errno)));
    }

    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("getsockname(): " + std::string(std::strerror(errno)));
    }
    port_ = ntohs(addr.sin_port);

    thread_ = std::thread([this] { run(); });
}

UdpReceiver::~UdpReceiver() { stop(); }

void UdpReceiver::stop() {
    if (!stopping_.exchange(true)) {
        if (thread_.joinable()) thread_.join();
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    } else if (thread_.joinable()) {
        thread_.join();
    }
}

void UdpReceiver::run() {
    std::string buffer;
    buffer.resize(65536);
    MessageView view;  // reused across datagrams; decode_view fills it in place
    while (!stopping_.load(std::memory_order_relaxed)) {
        // poll() before recv(): SO_RCVTIMEO is not honored on every kernel
        // (sandboxed runtimes ignore it), and a receiver that cannot observe
        // the stop flag wedges the process on shutdown.
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready < 0) {
            if (errno == EINTR) continue;
            util::log_warn("udp receiver: poll failed: " + std::string(std::strerror(errno)));
            break;
        }
        if (ready == 0) continue;  // timeout: re-check the stop flag
        const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
            util::log_warn("udp receiver: recv failed: " + std::string(std::strerror(errno)));
            break;
        }
        try {
            // Zero-copy validation: parse into the reused view (no heap
            // allocation, nothing copied), and only materialize an owned
            // Message for datagrams that actually pass — a malformed flood
            // costs parsing, never string construction.
            decode_view(std::string_view(buffer.data(), static_cast<std::size_t>(n)), view);
            if (queue_.push(view.to_message())) {
                stats_.delivered.fetch_add(1, std::memory_order_relaxed);
            } else {
                stats_.lost.fetch_add(1, std::memory_order_relaxed);
            }
        } catch (const util::ParseError&) {
            stats_.malformed.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

}  // namespace siren::net
