#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/codec.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"

namespace siren::net {

int connect_nonblocking(const std::string& host, std::uint16_t port,
                        std::chrono::milliseconds timeout, int wake_fd, std::string& error) {
    if (const auto fp = SIREN_FAILPOINT("net.tcp.connect");
        fp.action == util::failpoint::Action::kError) {
        error = "connect(" + host + "): " + std::strerror(fp.err != 0 ? fp.err : ECONNREFUSED);
        return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
    if (fd < 0) {
        error = "socket(): " + std::string(std::strerror(errno));
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        error = "inet_pton(" + host + ") failed";
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno != EINPROGRESS) {
            error = "connect(" + host + "): " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        pollfd pfds[2] = {{fd, POLLOUT, 0}, {wake_fd, POLLIN, 0}};
        const nfds_t nfds = wake_fd >= 0 ? 2 : 1;
        const int ready = ::poll(
            pfds, nfds, static_cast<int>(std::min<long>(timeout.count(), 1 << 30)));
        int so_error = 0;
        socklen_t len = sizeof so_error;
        if (ready <= 0 || (pfds[1].revents & POLLIN) != 0 ||
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0) {
            error = "connect(" + host + "): " +
                    (ready <= 0 ? "timed out"
                                : (pfds[1].revents & POLLIN) != 0 ? "stopped"
                                                                  : std::strerror(so_error));
            ::close(fd);
            return -1;
        }
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

bool send_all_nonblocking(int fd, std::string_view data,
                          std::chrono::steady_clock::time_point deadline, std::string& error) {
    const char* p = data.data();
    std::size_t remaining = data.size();
    while (remaining > 0) {
        if (std::chrono::steady_clock::now() >= deadline) {
            error = "send timed out";
            return false;
        }
        if (const auto fp = SIREN_FAILPOINT("net.tcp.send")) {
            if (fp.action == util::failpoint::Action::kShortWrite && remaining > 1) {
                // Push a real prefix so the peer sees a half frame, then
                // fail the connection — a mid-send RST, not a clean close.
                (void)::send(fd, p, remaining / 2, MSG_NOSIGNAL);
            }
            error = "send failed: " +
                    std::string(std::strerror(fp.err != 0 ? fp.err : ECONNRESET));
            return false;
        }
        const ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
                pollfd pfd{fd, POLLOUT, 0};
                ::poll(&pfd, 1, 50);
                continue;
            }
            error = "send failed: " + std::string(std::strerror(errno));
            return false;
        }
        p += n;
        remaining -= static_cast<std::size_t>(n);
    }
    return true;
}

namespace {

bool write_all(int fd, const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

// Reads exactly `size` bytes, polling in 50 ms slices so `stopping` can
// interrupt a peer that stalls mid-frame. SO_RCVTIMEO is not relied upon:
// sandboxed kernels silently ignore it and recv() then blocks forever.
bool read_all(int fd, void* data, std::size_t size, const std::atomic<bool>& stopping) {
    auto* p = static_cast<std::uint8_t*>(data);
    while (size > 0) {
        if (stopping.load(std::memory_order_relaxed)) return false;
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (ready == 0) continue;  // timeout: re-check the stop flag
        const ssize_t n = ::recv(fd, p, size, 0);
        if (n <= 0) {
            if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
            return false;
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

TcpSender::TcpSender(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw util::SystemError("socket(): " + std::string(std::strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("inet_pton(" + host + ") failed");
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw util::SystemError("connect(): " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

TcpSender::~TcpSender() {
    if (fd_ >= 0) ::close(fd_);
}

void TcpSender::send(std::string_view datagram) noexcept {
    if (fd_ < 0) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const auto len = static_cast<std::uint32_t>(datagram.size());
    if (write_all(fd_, &len, sizeof len) && write_all(fd_, datagram.data(), datagram.size())) {
        sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
        errors_.fetch_add(1, std::memory_order_relaxed);
        ::close(fd_);
        fd_ = -1;  // stay broken: a hooked process must not retry-loop
    }
}

TcpReceiver::TcpReceiver(MessageQueue& queue, std::uint16_t port) : queue_(queue) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw util::SystemError("socket(): " + std::string(std::strerror(errno)));

    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw util::SystemError("bind/listen(): " + std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    acceptor_ = std::thread([this] { accept_loop(); });
}

TcpReceiver::~TcpReceiver() { stop(); }

void TcpReceiver::stop() {
    if (!stopping_.exchange(true)) {
        if (acceptor_.joinable()) acceptor_.join();
        std::lock_guard lock(readers_mutex_);
        for (auto& r : readers_) {
            if (r.joinable()) r.join();
        }
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
    } else if (acceptor_.joinable()) {
        acceptor_.join();
    }
}

void TcpReceiver::accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (ready == 0) continue;  // timeout: re-check the stop flag
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
            break;
        }
        std::lock_guard lock(readers_mutex_);
        readers_.emplace_back([this, client] { read_loop(client); });
    }
}

void TcpReceiver::read_loop(int client_fd) {
    std::string payload;
    while (!stopping_.load(std::memory_order_relaxed)) {
        // Wait for the header with poll() so stop() can interrupt idle
        // connections, then peek to distinguish orderly shutdown.
        pollfd pfd{client_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (ready == 0) continue;  // timeout: re-check the stop flag
        std::uint32_t len = 0;
        const ssize_t peeked = ::recv(client_fd, &len, sizeof len, MSG_PEEK);
        if (peeked == 0) break;  // orderly shutdown
        if (peeked < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
            break;
        }
        if (!read_all(client_fd, &len, sizeof len, stopping_)) break;
        if (len > (1u << 20)) break;  // corrupt frame
        payload.resize(len);
        if (!read_all(client_fd, payload.data(), len, stopping_)) break;
        try {
            Message m = decode(payload);
            if (queue_.push(std::move(m))) {
                stats_.delivered.fetch_add(1, std::memory_order_relaxed);
            } else {
                stats_.lost.fetch_add(1, std::memory_order_relaxed);
            }
        } catch (const util::ParseError&) {
            stats_.malformed.fetch_add(1, std::memory_order_relaxed);
        }
    }
    ::close(client_fd);
}

}  // namespace siren::net
