#include "net/channel.hpp"

#include "net/codec.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace siren::net {

MessageQueue::MessageQueue(std::size_t capacity) : capacity_(capacity) {}

bool MessageQueue::push(Message m) {
    {
        std::lock_guard lock(mutex_);
        if (closed_ || items_.size() >= capacity_) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        items_.push_back(std::move(m));
    }
    cv_.notify_one();
    return true;
}

std::optional<Message> MessageQueue::pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    Message m = std::move(items_.front());
    items_.pop_front();
    return m;
}

void MessageQueue::close() {
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

std::size_t MessageQueue::size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
}

InMemoryChannel::InMemoryChannel(MessageQueue& queue, double loss_rate, std::uint64_t seed)
    : queue_(queue), loss_rate_(loss_rate), rng_(seed) {}

void InMemoryChannel::send(std::string_view datagram) noexcept {
    stats_.sent.fetch_add(1, std::memory_order_relaxed);
    if (loss_rate_ > 0.0) {
        std::lock_guard lock(rng_mutex_);
        if (rng_.chance(loss_rate_)) {
            stats_.lost.fetch_add(1, std::memory_order_relaxed);
            return;
        }
    }
    try {
        Message m = decode(datagram);
        if (queue_.push(std::move(m))) {
            stats_.delivered.fetch_add(1, std::memory_order_relaxed);
        } else {
            stats_.lost.fetch_add(1, std::memory_order_relaxed);
        }
    } catch (const util::ParseError& e) {
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);
        util::log_debug(std::string("channel: dropping malformed datagram: ") + e.what());
    } catch (...) {
        stats_.malformed.fetch_add(1, std::memory_order_relaxed);
    }
}

}  // namespace siren::net
