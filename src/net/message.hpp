#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace siren::net {

/// LAYER header field: distinguishes data about the process itself from
/// data about a Python input script run by that process (paper §3.1).
enum class Layer : std::uint8_t { kSelf = 0, kScript = 1 };

/// TYPE header field: which information category a message carries. One
/// process emits several messages, one (or more, when chunked) per type.
enum class MsgType : std::uint8_t {
    kFileMeta = 0,   ///< executable file metadata (inode, size, perms, times)
    kIds = 1,        ///< process identifiers (PID/PPID/UID/GID, exe path)
    kModules = 2,    ///< LOADEDMODULES environment content
    kObjects = 3,    ///< loaded shared objects (dl_iterate_phdr equivalent)
    kCompilers = 4,  ///< .comment compiler identification strings
    kMemMap = 5,     ///< /proc/self/maps content
    kFileHash = 6,   ///< FILE_H: fuzzy hash of the raw executable
    kStringsHash = 7,   ///< STRINGS_H: fuzzy hash of printable strings
    kSymbolsHash = 8,   ///< SYMBOLS_H: fuzzy hash of global ELF symbols
    kScriptHash = 9,    ///< SCRIPT_H: fuzzy hash of the Python input script
    kModulesHash = 10,  ///< MO_H: fuzzy hash of the modules list
    kObjectsHash = 11,  ///< OB_H: fuzzy hash of the shared-objects list
    kCompilersHash = 12,  ///< CO_H: fuzzy hash of the compilers list
    kMemMapHash = 13,     ///< MA_H: fuzzy hash of the memory map list
    kTimeSeriesHash = 14,  ///< TS_H: shapelet digest of a runtime counter trace
};

std::string_view to_string(Layer layer);
std::string_view to_string(MsgType type);

/// Parse helpers; throw siren::util::ParseError on unknown names.
Layer layer_from_string(std::string_view s);
MsgType msg_type_from_string(std::string_view s);

/// One SIREN UDP message. Header fields mirror the paper exactly:
/// JOBID, STEPID, PID, HASH (xxh128 of the executable path — disambiguates
/// exec() chains reusing a PID within one timestamp), HOST, TIME, LAYER,
/// TYPE, CONTENT; SEQ/TOTAL are the chunking extension for content that
/// exceeds one datagram.
struct Message {
    std::uint64_t job_id = 0;
    std::uint32_t step_id = 0;
    std::int64_t pid = 0;
    std::string exe_hash;  ///< hex xxh128 of the executable path
    std::string host;
    std::int64_t time = 0;  ///< unix timestamp, one-second granularity
    Layer layer = Layer::kSelf;
    MsgType type = MsgType::kFileMeta;
    std::uint32_t seq = 0;    ///< chunk index, 0-based
    std::uint32_t total = 1;  ///< chunk count for this (process, type)
    std::string content;

    friend bool operator==(const Message&, const Message&) = default;

    /// Key identifying the process this message belongs to; all chunks and
    /// types of one process share it.
    std::string process_key() const;
};

/// Non-owning view of one SIREN message: the zero-copy counterpart of
/// Message for the hot collection path. String fields alias either a decoded
/// datagram (decode_view) or caller-owned storage (the collector's send
/// path); the view must not outlive those bytes.
///
/// `host`/`content` may still carry wire escaping: decode_view leaves the
/// raw bytes in place and only records whether an escape sequence is
/// present, so the common case (no '\\') round-trips without touching a
/// single byte. Use host_str()/content_str()/append_content() to
/// materialize the unescaped value, or encode_into() to re-emit the exact
/// wire bytes.
struct MessageView {
    std::uint64_t job_id = 0;
    std::uint32_t step_id = 0;
    std::int64_t pid = 0;
    std::string_view exe_hash;
    std::string_view host;
    std::int64_t time = 0;
    Layer layer = Layer::kSelf;
    MsgType type = MsgType::kFileMeta;
    std::uint32_t seq = 0;
    std::uint32_t total = 1;
    std::string_view content;
    /// True when the corresponding view still contains wire escapes.
    bool host_escaped = false;
    bool content_escaped = false;

    std::string host_str() const;
    std::string content_str() const;
    /// Append the unescaped content to `out` (no allocation when `out` has
    /// capacity) — the chunk-reassembly hot path.
    void append_content(std::string& out) const;

    /// Deep-copy into an owned Message (unescaping as needed).
    Message to_message() const;

    /// Append the same key Message::process_key() builds; reusing `out`
    /// avoids the per-message allocation.
    void process_key_into(std::string& out) const;
};

/// View a Message's fields (raw, i.e. unescaped). The view aliases `m`.
MessageView as_view(const Message& m);

}  // namespace siren::net
