#include "net/codec.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::net {

using util::ParseError;

std::string encode(const Message& m) {
    std::string out;
    out.reserve(m.content.size() + 160);
    out += kWireMagic;
    out += "|JOBID=";
    out += std::to_string(m.job_id);
    out += "|STEPID=";
    out += std::to_string(m.step_id);
    out += "|PID=";
    out += std::to_string(m.pid);
    out += "|HASH=";
    out += m.exe_hash;
    out += "|HOST=";
    out += util::escape_field(m.host);
    out += "|TIME=";
    out += std::to_string(m.time);
    out += "|LAYER=";
    out += to_string(m.layer);
    out += "|TYPE=";
    out += to_string(m.type);
    out += "|SEQ=";
    out += std::to_string(m.seq);
    out += "|TOTAL=";
    out += std::to_string(m.total);
    out += "|CONTENT=";
    out += util::escape_field(m.content);
    return out;
}

namespace {

template <typename T>
T parse_number(std::string_view field, std::string_view value) {
    T parsed{};
    const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
        throw ParseError("bad numeric field " + std::string(field) + "='" + std::string(value) + "'");
    }
    return parsed;
}

}  // namespace

Message decode(std::string_view datagram) {
    const auto fields = util::split(datagram, '|');
    if (fields.empty() || fields[0] != kWireMagic) {
        throw ParseError("datagram missing SIREN1 magic");
    }

    Message m;
    // Bit set tracking mandatory fields.
    unsigned seen = 0;
    auto mark = [&seen](int bit) { seen |= 1u << bit; };

    for (std::size_t i = 1; i < fields.size(); ++i) {
        const std::string& field = fields[i];
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) throw ParseError("field without '=': " + field);
        const std::string_view key(field.data(), eq);
        const std::string_view value(field.data() + eq + 1, field.size() - eq - 1);

        if (key == "JOBID") {
            m.job_id = parse_number<std::uint64_t>(key, value);
            mark(0);
        } else if (key == "STEPID") {
            m.step_id = parse_number<std::uint32_t>(key, value);
            mark(1);
        } else if (key == "PID") {
            m.pid = parse_number<std::int64_t>(key, value);
            mark(2);
        } else if (key == "HASH") {
            m.exe_hash = std::string(value);
            mark(3);
        } else if (key == "HOST") {
            m.host = util::unescape_field(value);
            mark(4);
        } else if (key == "TIME") {
            m.time = parse_number<std::int64_t>(key, value);
            mark(5);
        } else if (key == "LAYER") {
            m.layer = layer_from_string(value);
            mark(6);
        } else if (key == "TYPE") {
            m.type = msg_type_from_string(value);
            mark(7);
        } else if (key == "SEQ") {
            m.seq = parse_number<std::uint32_t>(key, value);
        } else if (key == "TOTAL") {
            m.total = parse_number<std::uint32_t>(key, value);
        } else if (key == "CONTENT") {
            m.content = util::unescape_field(value);
            mark(8);
        } else {
            // Unknown keys are ignored for forward compatibility.
        }
    }

    if (seen != 0x1FFu) throw ParseError("datagram missing mandatory header fields");
    if (m.total == 0 || m.seq >= m.total) throw ParseError("datagram chunk indices inconsistent");
    return m;
}

}  // namespace siren::net
