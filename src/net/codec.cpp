#include "net/codec.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::net {

using util::ParseError;

using util::append_number;

void encode_into(const MessageView& m, std::string& out) {
    out.clear();
    out += kWireMagic;
    out += "|JOBID=";
    append_number(out, m.job_id);
    out += "|STEPID=";
    append_number(out, m.step_id);
    out += "|PID=";
    append_number(out, m.pid);
    out += "|HASH=";
    out += m.exe_hash;
    out += "|HOST=";
    if (m.host_escaped) {
        out += m.host;  // already exact wire bytes
    } else {
        util::escape_field_into(m.host, out);
    }
    out += "|TIME=";
    append_number(out, m.time);
    out += "|LAYER=";
    out += to_string(m.layer);
    out += "|TYPE=";
    out += to_string(m.type);
    out += "|SEQ=";
    append_number(out, m.seq);
    out += "|TOTAL=";
    append_number(out, m.total);
    out += "|CONTENT=";
    if (m.content_escaped) {
        out += m.content;
    } else {
        util::escape_field_into(m.content, out);
    }
}

void encode_into(const Message& m, std::string& out) {
    encode_into(as_view(m), out);
}

std::string encode(const Message& m) {
    std::string out;
    out.reserve(m.content.size() + 160);
    encode_into(m, out);
    return out;
}

namespace {

template <typename T>
T parse_number(std::string_view field, std::string_view value) {
    T parsed{};
    const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
        throw ParseError("bad numeric field " + std::string(field) + "='" + std::string(value) + "'");
    }
    return parsed;
}

}  // namespace

void decode_view(std::string_view datagram, MessageView& out) {
    std::size_t pos = datagram.find('|');
    if (datagram.substr(0, pos) != kWireMagic) {
        throw ParseError("datagram missing SIREN1 magic");
    }

    out = MessageView{};
    // Bit set tracking which fields arrived; doubles as the duplicate
    // detector — a datagram naming any field twice is corrupt (the two
    // values could disagree and the wire never legitimately repeats one).
    unsigned seen = 0;
    auto mark = [&seen](int bit, std::string_view key) {
        const unsigned mask = 1u << bit;
        if (seen & mask) throw ParseError("duplicate wire field " + std::string(key));
        seen |= mask;
    };

    // Per-field hot loop: dispatch on the first character, then match the
    // whole "KEY=" prefix in one compare — no separate scan for '='. Only
    // unknown keys (forward compatibility) pay for a '=' sanity check.
    const auto after = [](std::string_view field, std::string_view prefix) {
        return field.substr(prefix.size());
    };
    while (pos != std::string_view::npos) {
        const std::size_t begin = pos + 1;
        pos = datagram.find('|', begin);
        const std::string_view field = pos == std::string_view::npos
                                           ? datagram.substr(begin)
                                           : datagram.substr(begin, pos - begin);
        bool handled = true;
        switch (field.empty() ? '\0' : field[0]) {
            case 'J':
                if (field.starts_with("JOBID=")) {
                    mark(0, "JOBID");
                    out.job_id = parse_number<std::uint64_t>("JOBID", after(field, "JOBID="));
                } else {
                    handled = false;
                }
                break;
            case 'S':
                if (field.starts_with("STEPID=")) {
                    mark(1, "STEPID");
                    out.step_id = parse_number<std::uint32_t>("STEPID", after(field, "STEPID="));
                } else if (field.starts_with("SEQ=")) {
                    mark(9, "SEQ");
                    out.seq = parse_number<std::uint32_t>("SEQ", after(field, "SEQ="));
                } else {
                    handled = false;
                }
                break;
            case 'P':
                if (field.starts_with("PID=")) {
                    mark(2, "PID");
                    out.pid = parse_number<std::int64_t>("PID", after(field, "PID="));
                } else {
                    handled = false;
                }
                break;
            case 'H':
                if (field.starts_with("HASH=")) {
                    mark(3, "HASH");
                    out.exe_hash = after(field, "HASH=");
                } else if (field.starts_with("HOST=")) {
                    mark(4, "HOST");
                    out.host = after(field, "HOST=");
                    out.host_escaped = out.host.find('\\') != std::string_view::npos;
                } else {
                    handled = false;
                }
                break;
            case 'T':
                if (field.starts_with("TIME=")) {
                    mark(5, "TIME");
                    out.time = parse_number<std::int64_t>("TIME", after(field, "TIME="));
                } else if (field.starts_with("TYPE=")) {
                    mark(7, "TYPE");
                    out.type = msg_type_from_string(after(field, "TYPE="));
                } else if (field.starts_with("TOTAL=")) {
                    mark(10, "TOTAL");
                    out.total = parse_number<std::uint32_t>("TOTAL", after(field, "TOTAL="));
                } else {
                    handled = false;
                }
                break;
            case 'L':
                if (field.starts_with("LAYER=")) {
                    mark(6, "LAYER");
                    out.layer = layer_from_string(after(field, "LAYER="));
                } else {
                    handled = false;
                }
                break;
            case 'C':
                if (field.starts_with("CONTENT=")) {
                    mark(8, "CONTENT");
                    out.content = after(field, "CONTENT=");
                    out.content_escaped = out.content.find('\\') != std::string_view::npos;
                } else {
                    handled = false;
                }
                break;
            default:
                handled = false;
                break;
        }
        if (!handled && field.find('=') == std::string_view::npos) {
            throw ParseError("field without '=': " + std::string(field));
        }
    }

    if ((seen & 0x1FFu) != 0x1FFu) throw ParseError("datagram missing mandatory header fields");
    if (out.total == 0 || out.seq >= out.total) {
        throw ParseError("datagram chunk indices inconsistent");
    }
}

Message decode(std::string_view datagram) {
    MessageView view;
    decode_view(datagram, view);
    return view.to_message();
}

}  // namespace siren::net
