#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/channel.hpp"

namespace siren::net {

/// Non-blocking IPv4 connect bounded by `timeout`: returns a connected
/// SOCK_NONBLOCK|SOCK_CLOEXEC fd with TCP_NODELAY set, or -1 with `error`
/// filled. When `wake_fd` >= 0, that fd becoming readable aborts the wait
/// (error "stopped") — how a retry loop's stop() interrupts a SYN that
/// nobody answers. Shared by serve::QueryClient and the replication
/// follower; one connect dance, not one per client.
int connect_nonblocking(const std::string& host, std::uint16_t port,
                        std::chrono::milliseconds timeout, int wake_fd, std::string& error);

/// Send all of `data` on a non-blocking socket, polling for writability,
/// until done or `deadline` passes; false with `error` filled on timeout
/// or socket failure.
bool send_all_nonblocking(int fd, std::string_view data,
                          std::chrono::steady_clock::time_point deadline, std::string& error);

/// TCP message sender with length-prefixed framing — the design SIREN
/// deliberately rejected (paper §3.1 chose UDP "fire and forget" over TCP
/// to avoid connection management and failure coupling). It exists here as
/// the comparison baseline: the transport ablation measures what a
/// connection-oriented collector would cost and how it behaves when the
/// receiver disappears.
///
/// Framing: 4-byte little-endian payload length, then the payload.
class TcpSender : public Transport {
public:
    /// Connects eagerly; throws siren::util::SystemError when the receiver
    /// is unreachable (connection setup is exactly the failure coupling
    /// UDP avoids).
    TcpSender(const std::string& host, std::uint16_t port);
    ~TcpSender() override;

    TcpSender(const TcpSender&) = delete;
    TcpSender& operator=(const TcpSender&) = delete;

    /// Blocking framed write; on failure counts the error and drops the
    /// message (no reconnect storms from hooked processes).
    void send(std::string_view datagram) noexcept override;

    std::uint64_t sent() const { return sent_.load(); }
    std::uint64_t errors() const { return errors_.load(); }

private:
    int fd_ = -1;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> errors_{0};
};

/// Accepting TCP receiver: one acceptor thread, one reader thread per
/// connection, decoded messages land in the shared MessageQueue.
class TcpReceiver {
public:
    explicit TcpReceiver(MessageQueue& queue, std::uint16_t port = 0);
    ~TcpReceiver();

    TcpReceiver(const TcpReceiver&) = delete;
    TcpReceiver& operator=(const TcpReceiver&) = delete;

    std::uint16_t port() const { return port_; }

    void stop();

    const ChannelStats& stats() const { return stats_; }

private:
    void accept_loop();
    void read_loop(int client_fd);

    MessageQueue& queue_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;
    std::vector<std::thread> readers_;
    std::mutex readers_mutex_;
    ChannelStats stats_;
};

}  // namespace siren::net
