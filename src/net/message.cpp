#include "net/message.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::net {

std::string_view to_string(Layer layer) {
    switch (layer) {
        case Layer::kSelf: return "SELF";
        case Layer::kScript: return "SCRIPT";
    }
    return "SELF";
}

std::string_view to_string(MsgType type) {
    switch (type) {
        case MsgType::kFileMeta: return "FILEMETA";
        case MsgType::kIds: return "IDS";
        case MsgType::kModules: return "MODULES";
        case MsgType::kObjects: return "OBJECTS";
        case MsgType::kCompilers: return "COMPILERS";
        case MsgType::kMemMap: return "MEMMAP";
        case MsgType::kFileHash: return "FILE_H";
        case MsgType::kStringsHash: return "STRINGS_H";
        case MsgType::kSymbolsHash: return "SYMBOLS_H";
        case MsgType::kScriptHash: return "SCRIPT_H";
        case MsgType::kModulesHash: return "MODULES_H";
        case MsgType::kObjectsHash: return "OBJECTS_H";
        case MsgType::kCompilersHash: return "COMPILERS_H";
        case MsgType::kMemMapHash: return "MEMMAP_H";
        case MsgType::kTimeSeriesHash: return "TS_H";
    }
    return "FILEMETA";
}

Layer layer_from_string(std::string_view s) {
    if (s == "SELF") return Layer::kSelf;
    if (s == "SCRIPT") return Layer::kScript;
    throw util::ParseError("unknown LAYER: " + std::string(s));
}

MsgType msg_type_from_string(std::string_view s) {
    // First-character dispatch instead of a linear scan over all names:
    // this runs once per datagram on the decode hot path.
    switch (s.empty() ? '\0' : s[0]) {
        case 'F':
            if (s == "FILEMETA") return MsgType::kFileMeta;
            if (s == "FILE_H") return MsgType::kFileHash;
            break;
        case 'I':
            if (s == "IDS") return MsgType::kIds;
            break;
        case 'M':
            if (s == "MODULES") return MsgType::kModules;
            if (s == "MEMMAP") return MsgType::kMemMap;
            if (s == "MODULES_H") return MsgType::kModulesHash;
            if (s == "MEMMAP_H") return MsgType::kMemMapHash;
            break;
        case 'O':
            if (s == "OBJECTS") return MsgType::kObjects;
            if (s == "OBJECTS_H") return MsgType::kObjectsHash;
            break;
        case 'C':
            if (s == "COMPILERS") return MsgType::kCompilers;
            if (s == "COMPILERS_H") return MsgType::kCompilersHash;
            break;
        case 'S':
            if (s == "STRINGS_H") return MsgType::kStringsHash;
            if (s == "SYMBOLS_H") return MsgType::kSymbolsHash;
            if (s == "SCRIPT_H") return MsgType::kScriptHash;
            break;
        case 'T':
            if (s == "TS_H") return MsgType::kTimeSeriesHash;
            break;
        default:
            break;
    }
    throw util::ParseError("unknown TYPE: " + std::string(s));
}

namespace {

using util::append_number;

void append_process_key(std::string& out, std::uint64_t job_id, std::uint32_t step_id,
                        std::int64_t pid, std::string_view exe_hash, std::string_view host) {
    append_number(out, job_id);
    out += '/';
    append_number(out, step_id);
    out += '/';
    append_number(out, pid);
    out += '/';
    out += exe_hash;
    out += '/';
    out += host;
}

}  // namespace

std::string Message::process_key() const {
    std::string key;
    key.reserve(64);
    append_process_key(key, job_id, step_id, pid, exe_hash, host);
    return key;
}

std::string MessageView::host_str() const {
    return host_escaped ? util::unescape_field(host) : std::string(host);
}

std::string MessageView::content_str() const {
    return content_escaped ? util::unescape_field(content) : std::string(content);
}

void MessageView::append_content(std::string& out) const {
    if (!content_escaped) {
        out.append(content);
    } else {
        util::unescape_field_into(content, out);
    }
}

Message MessageView::to_message() const {
    Message m;
    m.job_id = job_id;
    m.step_id = step_id;
    m.pid = pid;
    m.exe_hash = std::string(exe_hash);
    m.host = host_str();
    m.time = time;
    m.layer = layer;
    m.type = type;
    m.seq = seq;
    m.total = total;
    m.content = content_str();
    return m;
}

void MessageView::process_key_into(std::string& out) const {
    out.clear();
    // The key must match Message::process_key(), which holds the *unescaped*
    // host; hosts with escapes are rare enough that the temporary is fine.
    if (host_escaped) {
        const std::string raw = host_str();
        append_process_key(out, job_id, step_id, pid, exe_hash, raw);
    } else {
        append_process_key(out, job_id, step_id, pid, exe_hash, host);
    }
}

MessageView as_view(const Message& m) {
    MessageView v;
    v.job_id = m.job_id;
    v.step_id = m.step_id;
    v.pid = m.pid;
    v.exe_hash = m.exe_hash;
    v.host = m.host;
    v.time = m.time;
    v.layer = m.layer;
    v.type = m.type;
    v.seq = m.seq;
    v.total = m.total;
    v.content = m.content;
    return v;
}

}  // namespace siren::net
