#include "net/message.hpp"

#include "util/error.hpp"

namespace siren::net {

std::string_view to_string(Layer layer) {
    switch (layer) {
        case Layer::kSelf: return "SELF";
        case Layer::kScript: return "SCRIPT";
    }
    return "SELF";
}

std::string_view to_string(MsgType type) {
    switch (type) {
        case MsgType::kFileMeta: return "FILEMETA";
        case MsgType::kIds: return "IDS";
        case MsgType::kModules: return "MODULES";
        case MsgType::kObjects: return "OBJECTS";
        case MsgType::kCompilers: return "COMPILERS";
        case MsgType::kMemMap: return "MEMMAP";
        case MsgType::kFileHash: return "FILE_H";
        case MsgType::kStringsHash: return "STRINGS_H";
        case MsgType::kSymbolsHash: return "SYMBOLS_H";
        case MsgType::kScriptHash: return "SCRIPT_H";
        case MsgType::kModulesHash: return "MODULES_H";
        case MsgType::kObjectsHash: return "OBJECTS_H";
        case MsgType::kCompilersHash: return "COMPILERS_H";
        case MsgType::kMemMapHash: return "MEMMAP_H";
    }
    return "FILEMETA";
}

Layer layer_from_string(std::string_view s) {
    if (s == "SELF") return Layer::kSelf;
    if (s == "SCRIPT") return Layer::kScript;
    throw util::ParseError("unknown LAYER: " + std::string(s));
}

MsgType msg_type_from_string(std::string_view s) {
    for (int i = 0; i <= static_cast<int>(MsgType::kMemMapHash); ++i) {
        const auto t = static_cast<MsgType>(i);
        if (to_string(t) == s) return t;
    }
    throw util::ParseError("unknown TYPE: " + std::string(s));
}

std::string Message::process_key() const {
    std::string key;
    key.reserve(64);
    key += std::to_string(job_id);
    key += '/';
    key += std::to_string(step_id);
    key += '/';
    key += std::to_string(pid);
    key += '/';
    key += exe_hash;
    key += '/';
    key += host;
    return key;
}

}  // namespace siren::net
