#pragma once

#include <string>
#include <string_view>

#include "net/message.hpp"

namespace siren::net {

/// Wire-format version tag; first field of every datagram.
inline constexpr std::string_view kWireMagic = "SIREN1";

/// Serialize a message to one datagram payload. The format is a readable
/// pipe-separated key=value line (matching the paper's "formatted strings"),
/// with '|', '\\', newline and tab escaped inside values:
///
///   SIREN1|JOBID=7|STEPID=0|PID=4242|HASH=<hex>|HOST=nid000012|
///   TIME=1733900000|LAYER=SELF|TYPE=OBJECTS|SEQ=0|TOTAL=2|CONTENT=...
///
/// See docs/wire_format.md for the full layout and escaping contract.
std::string encode(const Message& m);

/// Allocation-free encode: clears `out` and serializes into it. Integers are
/// formatted with std::to_chars into stack scratch; reusing `out` across
/// calls performs no heap allocation once its capacity is warm — this is the
/// collector's steady-state send path.
void encode_into(const Message& m, std::string& out);

/// Same for a view. Fields flagged *_escaped are appended verbatim (they
/// already hold exact wire bytes), so decode_view -> encode_into round-trips
/// a datagram without ever unescaping.
void encode_into(const MessageView& m, std::string& out);

/// Parse a datagram payload; throws siren::util::ParseError on anything
/// malformed (wrong magic, missing fields, duplicated fields, bad numbers).
/// Receivers catch and count these rather than crash — graceful failure is
/// a SIREN design goal.
Message decode(std::string_view datagram);

/// Zero-copy decode: parses in place, pointing `out`'s string fields into
/// `datagram` (which must outlive the view). Escaped HOST/CONTENT values are
/// *not* unescaped — the escape flags are set instead and unescaping happens
/// lazily, only for consumers that need the raw value. Same validation and
/// ParseError contract as decode().
void decode_view(std::string_view datagram, MessageView& out);

}  // namespace siren::net
