#pragma once

#include <string>
#include <string_view>

#include "net/message.hpp"

namespace siren::net {

/// Wire-format version tag; first field of every datagram.
inline constexpr std::string_view kWireMagic = "SIREN1";

/// Serialize a message to one datagram payload. The format is a readable
/// pipe-separated key=value line (matching the paper's "formatted strings"),
/// with '|', '\\', newline and tab escaped inside values:
///
///   SIREN1|JOBID=7|STEPID=0|PID=4242|HASH=<hex>|HOST=nid000012|
///   TIME=1733900000|LAYER=SELF|TYPE=OBJECTS|SEQ=0|TOTAL=2|CONTENT=...
std::string encode(const Message& m);

/// Parse a datagram payload; throws siren::util::ParseError on anything
/// malformed (wrong magic, missing fields, bad numbers). Receivers catch
/// and count these rather than crash — graceful failure is a SIREN design
/// goal.
Message decode(std::string_view datagram);

}  // namespace siren::net
