#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace siren::net {

/// Largest datagram payload we emit. Conservative for 1500-byte MTU paths
/// (UDP messages are limited in size; the sender chunks longer content,
/// paper §3.1 "UDP Message Sender").
inline constexpr std::size_t kMaxDatagramBytes = 1400;

/// Split `content` into as many Messages as needed so that every encoded
/// datagram fits in `max_datagram`. SEQ/TOTAL are filled in; all other
/// header fields are copied from `header`. Always returns at least one
/// message (possibly with empty content).
std::vector<Message> chunk_content(const Message& header, std::string_view content,
                                   std::size_t max_datagram = kMaxDatagramBytes);

/// How `content` will be cut for `header`: the per-chunk payload budget and
/// resulting chunk count. `scratch` is a reusable encode buffer (the header
/// is probed with empty content to measure its overhead); no allocation
/// once it has capacity. chunk_content() and the collector's zero-copy send
/// loop share this arithmetic, so both paths cut identical chunks.
struct ChunkPlan {
    std::size_t budget = 0;   ///< content bytes per chunk (pre-escaping)
    std::uint32_t total = 1;  ///< number of chunks, >= 1
};
ChunkPlan plan_chunks(const MessageView& header, std::string_view content,
                      std::size_t max_datagram, std::string& scratch);

/// Reassembles chunked messages per (process, layer, type).
///
/// UDP may drop or reorder chunks; the reassembler keeps whatever arrived
/// and reports per-field completeness, so post-processing can mark fields
/// missing rather than fail (graceful-failure design).
class Reassembler {
public:
    /// Outcome of merging all received chunks of one (key, layer, type).
    struct Assembled {
        Message merged;           ///< content = concatenation of present chunks
        std::uint32_t received = 0;
        std::uint32_t expected = 0;
        bool complete() const { return received == expected; }
    };

    /// Feed one message (any order, duplicates tolerated).
    void add(Message m);

    /// Merge everything received so far, sorted by process key.
    std::vector<Assembled> assemble() const;

    std::size_t pending_groups() const { return groups_.size(); }

private:
    struct Group {
        Message header;                            // first chunk seen, for fields
        std::map<std::uint32_t, std::string> chunks;  // seq -> content
        std::uint32_t expected = 1;
    };
    // key -> group; key includes layer and type so each field reassembles
    // independently.
    std::map<std::string, Group> groups_;
};

}  // namespace siren::net
