#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzzy/ctph.hpp"

namespace siren::fuzzy {

/// Similarity score between two fuzzy digests: 0 (no similarity) .. 100
/// (effectively identical), the scale used throughout the paper.
///
/// Mirrors SSDeep's semantics:
///  - digests are only comparable when their block sizes are equal or one
///    is exactly double the other (digest1/digest2 pairing);
///  - runs of more than 3 identical characters are collapsed (they carry
///    no distance information and over-weight repetitive inputs);
///  - a common substring of at least 7 characters is required, otherwise
///    the score is 0 (guards against coincidental base64 overlap);
///  - the weighted Damerau-Levenshtein distance is scaled to 0..100 and,
///    for small block sizes, capped so short digests cannot claim a
///    stronger match than the data supports.
int compare(const FuzzyDigest& a, const FuzzyDigest& b);

/// Parse-and-compare convenience; returns 0 for unparsable digests when
/// `strict` is false (collector output may contain empty fields after UDP
/// loss), throws when strict.
int compare(std::string_view a, std::string_view b, bool strict = false);

/// Score one probe digest against many candidates; parallelizes internally
/// above `parallel_threshold` items (0 disables threading).
std::vector<int> compare_one_to_many(const FuzzyDigest& probe,
                                     const std::vector<FuzzyDigest>& candidates,
                                     std::size_t parallel_threshold = 1024);

/// Exposed for tests: collapse runs of > 3 identical characters.
std::string eliminate_sequences(std::string_view s);

/// Exposed for tests: true when the strings share a substring of length
/// `kCommonSubstringLength`.
bool has_common_substring(std::string_view a, std::string_view b);

inline constexpr std::size_t kCommonSubstringLength = 7;

namespace detail {

/// The ssdeep scale-and-cap formula shared by the legacy and prepared
/// scorers: edit distance -> 0..100 score for two collapsed digest parts
/// of the given lengths compared at `block_size`.
int scale_distance_to_score(std::size_t dist, std::size_t len1, std::size_t len2,
                            std::uint64_t block_size);

/// Score ceiling imposed by a small block size (100 when uncapped): a
/// short digest hashed little data and cannot claim a stronger match than
/// it supports.
std::uint64_t small_block_cap(std::uint64_t block_size, std::size_t len1, std::size_t len2);

/// Largest edit distance whose scaled score can still reach `min_score`
/// for parts of these lengths — the band the thresholded bit-parallel
/// distance scan may abandon beyond. Exact inversion of the integer
/// arithmetic in scale_distance_to_score (ignoring the small-block cap,
/// which only lowers scores further).
std::size_t max_distance_for_score(int min_score, std::size_t len1, std::size_t len2);

}  // namespace detail

}  // namespace siren::fuzzy
