#include "fuzzy/streaming.hpp"

#include "util/base64.hpp"

namespace siren::fuzzy {

void StreamingHasher::reset() {
    roll_.reset();
    for (auto& level : levels_) level = Level{};
    total_ = 0;
}

void StreamingHasher::update(const std::uint8_t* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
        const std::uint8_t c = data[i];
        const std::uint32_t r = roll_.update(c);

        std::uint64_t block_size = kMinBlockSize;
        for (auto& level : levels_) {
            level.sum1 = hash::fnv32_step(level.sum1, c);
            level.sum2 = hash::fnv32_step(level.sum2, c);

            if (r % block_size == block_size - 1) {
                if (level.digest1.size() < kSpamsumLength - 1) {
                    level.digest1 += util::kBase64Alphabet[level.sum1 & 63];
                    level.sum1 = hash::kSpamsumHashInit;
                }
                if (r % (block_size * 2) == block_size * 2 - 1 &&
                    level.digest2.size() < kSpamsumLength / 2 - 1) {
                    level.digest2 += util::kBase64Alphabet[level.sum2 & 63];
                    level.sum2 = hash::kSpamsumHashInit;
                }
            } else {
                // A level only triggers when every smaller level does; once
                // this one missed, all larger ones miss too, but their sums
                // must still advance — so no early break here. (The FNV
                // steps above ran before the trigger check.)
            }
            block_size *= 2;
        }
        ++total_;
    }
}

FuzzyDigest StreamingHasher::finalize() const {
    // Batch selection rule: smallest block size whose expected digest
    // fits, stepped down while the digest is under-filled.
    std::size_t level = 0;
    {
        std::uint64_t block_size = kMinBlockSize;
        while (block_size * kSpamsumLength < total_ && level + 1 < kLevels) {
            block_size *= 2;
            ++level;
        }
    }
    // The batch scanner counts the trailing capture character when judging
    // digest fill; mirror that so the level choice is identical.
    const std::size_t tail = roll_.value() != 0 ? 1 : 0;
    while (level > 0 && levels_[level].digest1.size() + tail < kSpamsumLength / 2) --level;

    const Level& chosen = levels_[level];
    FuzzyDigest out;
    out.block_size = kMinBlockSize << level;
    out.digest1 = chosen.digest1;
    out.digest2 = chosen.digest2;
    if (roll_.value() != 0) {
        out.digest1 += util::kBase64Alphabet[chosen.sum1 & 63];
        out.digest2 += util::kBase64Alphabet[chosen.sum2 & 63];
    }
    return out;
}

}  // namespace siren::fuzzy
