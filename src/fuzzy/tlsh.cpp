#include "fuzzy/tlsh.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"
#include "util/hex.hpp"

namespace siren::fuzzy {

namespace {

/// Pearson permutation table (the TLSH reference v_table).
constexpr std::uint8_t kPearson[256] = {
    1,   87,  49,  12,  176, 178, 102, 166, 121, 193, 6,   84,  249, 230, 44,  163,
    14,  197, 213, 181, 161, 85,  218, 80,  64,  239, 24,  226, 236, 142, 38,  200,
    110, 177, 104, 103, 141, 253, 255, 50,  77,  101, 81,  18,  45,  96,  31,  222,
    25,  107, 190, 70,  86,  237, 240, 34,  72,  242, 20,  214, 244, 227, 149, 235,
    97,  234, 57,  22,  60,  250, 82,  175, 208, 5,   127, 199, 111, 62,  135, 248,
    174, 169, 211, 58,  66,  154, 106, 195, 245, 171, 17,  187, 182, 179, 0,   243,
    132, 56,  148, 75,  128, 133, 158, 100, 130, 126, 91,  13,  153, 246, 216, 219,
    119, 68,  223, 78,  83,  88,  201, 99,  122, 11,  92,  32,  136, 114, 52,  10,
    138, 30,  48,  183, 156, 35,  61,  26,  143, 74,  251, 94,  129, 162, 63,  152,
    170, 7,   115, 167, 241, 206, 3,   150, 55,  59,  151, 220, 90,  53,  23,  131,
    125, 173, 15,  238, 79,  95,  89,  16,  105, 137, 225, 224, 217, 160, 37,  123,
    118, 73,  2,   157, 46,  116, 9,   145, 134, 228, 207, 212, 202, 215, 69,  229,
    27,  188, 67,  124, 168, 252, 42,  4,   29,  108, 21,  247, 19,  205, 39,  203,
    233, 40,  186, 147, 198, 192, 155, 33,  164, 191, 98,  204, 165, 180, 117, 76,
    140, 36,  210, 172, 41,  54,  159, 8,   185, 232, 113, 196, 231, 47,  146, 120,
    51,  65,  28,  144, 254, 221, 93,  189, 194, 139, 112, 43,  71,  109, 184, 209,
};

/// Pearson hash of a salted byte triple: the bucket-mapping primitive.
std::uint8_t b_mapping(std::uint8_t salt, std::uint8_t i, std::uint8_t j, std::uint8_t k) {
    std::uint8_t h = kPearson[salt];
    h = kPearson[h ^ i];
    h = kPearson[h ^ j];
    h = kPearson[h ^ k];
    return h;
}

/// Logarithmic length bucket: floor(log_1.5(len)), saturated to one byte.
std::uint8_t l_capturing(std::size_t len) {
    if (len == 0) return 0;
    const double l = std::log(static_cast<double>(len)) / std::log(1.5);
    return static_cast<std::uint8_t>(std::min(255.0, std::max(0.0, std::floor(l))));
}

/// Circular distance on the mod-16 quartile-ratio scale.
int mod16_distance(int a, int b) {
    const int d = std::abs(a - b);
    return std::min(d, 16 - d);
}

}  // namespace

std::string TlshDigest::to_string() const {
    std::string out = "T1";
    const auto hex_byte = [&out](std::uint8_t b) {
        static constexpr char kHex[] = "0123456789ABCDEF";
        out += kHex[b >> 4];
        out += kHex[b & 0xF];
    };
    hex_byte(checksum);
    hex_byte(lvalue);
    hex_byte(static_cast<std::uint8_t>((q1_ratio << 4) | q2_ratio));
    for (const std::uint8_t b : body) hex_byte(b);
    return out;
}

TlshDigest TlshDigest::parse(std::string_view s) {
    constexpr std::size_t kExpected = 2 + 2 * (3 + kTlshBuckets / 4);
    if (s.size() != kExpected || s[0] != 'T' || s[1] != '1') {
        throw util::ParseError("tlsh: malformed digest: " + std::string(s));
    }
    const std::vector<std::uint8_t> bytes = util::hex_decode(s.substr(2));
    TlshDigest d;
    d.checksum = bytes[0];
    d.lvalue = bytes[1];
    d.q1_ratio = bytes[2] >> 4;
    d.q2_ratio = bytes[2] & 0xF;
    std::copy(bytes.begin() + 3, bytes.end(), d.body.begin());
    return d;
}

std::optional<TlshDigest> tlsh_hash(const std::uint8_t* data, std::size_t size) {
    if (size < kTlshMinSize) return std::nullopt;

    // Sliding 5-byte window; each position feeds six salted triplets into a
    // 256-bucket Pearson histogram (only the first 128 buckets are encoded,
    // as in the 128-bucket reference variant).
    std::array<std::uint32_t, 256> buckets{};
    std::uint8_t checksum = 0;
    for (std::size_t n = 4; n < size; ++n) {
        const std::uint8_t a = data[n];
        const std::uint8_t b = data[n - 1];
        const std::uint8_t c = data[n - 2];
        const std::uint8_t d = data[n - 3];
        const std::uint8_t e = data[n - 4];
        checksum = b_mapping(0, a, b, checksum);
        ++buckets[b_mapping(2, a, b, c)];
        ++buckets[b_mapping(3, a, b, d)];
        ++buckets[b_mapping(5, a, c, d)];
        ++buckets[b_mapping(7, a, c, e)];
        ++buckets[b_mapping(11, a, b, e)];
        ++buckets[b_mapping(13, a, d, e)];
    }

    // Quartiles of the encoded buckets.
    std::array<std::uint32_t, kTlshBuckets> sorted{};
    std::copy_n(buckets.begin(), kTlshBuckets, sorted.begin());
    std::sort(sorted.begin(), sorted.end());
    const std::uint32_t q1 = sorted[kTlshBuckets / 4 - 1];
    const std::uint32_t q2 = sorted[kTlshBuckets / 2 - 1];
    const std::uint32_t q3 = sorted[3 * kTlshBuckets / 4 - 1];

    // Validity: at least a quarter of the buckets must be populated,
    // otherwise the quartile encoding degenerates (constant-ish input).
    if (q3 == 0) return std::nullopt;

    TlshDigest out;
    out.checksum = checksum;
    out.lvalue = l_capturing(size);
    out.q1_ratio = static_cast<std::uint8_t>((q1 * 100 / q3) % 16);
    out.q2_ratio = static_cast<std::uint8_t>((q2 * 100 / q3) % 16);

    // Body: 2 bits per bucket — which quartile band the count falls in.
    for (std::size_t i = 0; i < kTlshBuckets; ++i) {
        std::uint8_t code = 0;
        if (buckets[i] > q3) {
            code = 3;
        } else if (buckets[i] > q2) {
            code = 2;
        } else if (buckets[i] > q1) {
            code = 1;
        }
        out.body[i / 4] |= static_cast<std::uint8_t>(code << ((i % 4) * 2));
    }
    return out;
}

std::optional<TlshDigest> tlsh_hash(const std::vector<std::uint8_t>& data) {
    return tlsh_hash(data.data(), data.size());
}

std::optional<TlshDigest> tlsh_hash(std::string_view data) {
    return tlsh_hash(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

int tlsh_distance(const TlshDigest& a, const TlshDigest& b) {
    int diff = 0;

    // Length band: adjacent bands are cheap, far bands are heavily
    // penalized (files of very different size are rarely the same code).
    const int ldiff = std::abs(static_cast<int>(a.lvalue) - static_cast<int>(b.lvalue));
    diff += (ldiff <= 1) ? ldiff : ldiff * 12;

    // Quartile-ratio bands, circular mod-16.
    const int q1d = mod16_distance(a.q1_ratio, b.q1_ratio);
    diff += (q1d <= 1) ? q1d : (q1d - 1) * 12;
    const int q2d = mod16_distance(a.q2_ratio, b.q2_ratio);
    diff += (q2d <= 1) ? q2d : (q2d - 1) * 12;

    if (a.checksum != b.checksum) diff += 1;

    // Body: per-bucket quartile-band distance; the 0<->3 band jump costs 6
    // (the reference's non-linear step for opposite extremes).
    for (std::size_t i = 0; i < a.body.size(); ++i) {
        std::uint8_t x = a.body[i];
        std::uint8_t y = b.body[i];
        for (int p = 0; p < 4; ++p) {
            const int d = std::abs((x & 3) - (y & 3));
            diff += (d == 3) ? 6 : d;
            x >>= 2;
            y >>= 2;
        }
    }
    return diff;
}

int tlsh_similarity(const TlshDigest& a, const TlshDigest& b) {
    constexpr int kUnrelated = 300;
    const int dist = tlsh_distance(a, b);
    if (dist >= kUnrelated) return 0;
    return (kUnrelated - dist) * 100 / kUnrelated;
}

}  // namespace siren::fuzzy
