#include "fuzzy/ctph.hpp"

#include "hashing/fnv.hpp"
#include "hashing/rolling.hpp"
#include "util/base64.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace siren::fuzzy {

std::string FuzzyDigest::to_string() const {
    return std::to_string(block_size) + ":" + digest1 + ":" + digest2;
}

FuzzyDigest FuzzyDigest::parse(std::string_view s) {
    const auto parts = util::split(s, ':');
    if (parts.size() != 3) throw util::ParseError("fuzzy digest needs 3 ':' fields: " + std::string(s));
    FuzzyDigest d;
    char* end = nullptr;
    d.block_size = std::strtoull(parts[0].c_str(), &end, 10);
    if (end == parts[0].c_str() || *end != '\0' || d.block_size == 0) {
        throw util::ParseError("fuzzy digest block size invalid: " + parts[0]);
    }
    if (parts[1].size() > kSpamsumLength || parts[2].size() > kSpamsumLength) {
        throw util::ParseError("fuzzy digest part too long");
    }
    d.digest1 = parts[1];
    d.digest2 = parts[2];
    return d;
}

namespace {

/// One scan of the input at a fixed block size, producing both digest parts.
void scan_once(const std::uint8_t* data, std::size_t size, std::uint64_t block_size,
               std::string& d1, std::string& d2, bool& any_trigger) {
    d1.clear();
    d2.clear();
    any_trigger = false;

    hash::RollingHash roll;
    std::uint32_t sum1 = hash::kSpamsumHashInit;
    std::uint32_t sum2 = hash::kSpamsumHashInit;

    for (std::size_t i = 0; i < size; ++i) {
        const std::uint8_t c = data[i];
        const std::uint32_t r = roll.update(c);
        sum1 = hash::fnv32_step(sum1, c);
        sum2 = hash::fnv32_step(sum2, c);

        if (r % block_size == block_size - 1) {
            any_trigger = true;
            if (d1.size() < kSpamsumLength - 1) {
                d1 += util::kBase64Alphabet[sum1 & 63];
                sum1 = hash::kSpamsumHashInit;
            }
            if (r % (block_size * 2) == block_size * 2 - 1) {
                if (d2.size() < kSpamsumLength / 2 - 1) {
                    d2 += util::kBase64Alphabet[sum2 & 63];
                    sum2 = hash::kSpamsumHashInit;
                }
            }
        }
    }

    // Capture whatever accumulated after the last trigger so trailing bytes
    // still influence the digest.
    if (roll.value() != 0) {
        d1 += util::kBase64Alphabet[sum1 & 63];
        d2 += util::kBase64Alphabet[sum2 & 63];
    }
}

}  // namespace

FuzzyDigest fuzzy_hash(const std::uint8_t* data, std::size_t size) {
    // Smallest power-of-two multiple of kMinBlockSize expected to fill the
    // digest: with uniform triggers, size/block_size chunks ~ 64.
    std::uint64_t block_size = kMinBlockSize;
    while (block_size * kSpamsumLength < size) block_size *= 2;

    FuzzyDigest out;
    bool any_trigger = false;
    while (true) {
        scan_once(data, size, block_size, out.digest1, out.digest2, any_trigger);
        if (block_size > kMinBlockSize && out.digest1.size() < kSpamsumLength / 2) {
            // Too few triggers at this granularity: halve and rescan so the
            // digest carries enough signal to be comparable.
            block_size /= 2;
        } else {
            break;
        }
    }
    out.block_size = block_size;
    return out;
}

FuzzyDigest fuzzy_hash(const std::vector<std::uint8_t>& data) {
    return fuzzy_hash(data.data(), data.size());
}

FuzzyDigest fuzzy_hash(std::string_view data) {
    return fuzzy_hash(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

std::string fuzzy_hash_string(std::string_view data) {
    return fuzzy_hash(data).to_string();
}

}  // namespace siren::fuzzy
