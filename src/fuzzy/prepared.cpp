#include "fuzzy/prepared.hpp"

#include <algorithm>

#include "fuzzy/compare.hpp"
#include "fuzzy/edit_distance.hpp"
#include "util/error.hpp"

namespace siren::fuzzy {

namespace {

/// Golden-ratio odd constant; the top 6 bits of packed * kGramMixer pick
/// the Bloom bit (multiplicative hashing keeps similar grams apart).
constexpr std::uint64_t kGramMixer = 0x9E3779B97F4A7C15ull;

/// 7 base64 chars pack into 56 bits, so a gram IS its packed word and
/// packed equality is gram equality — the confirm pass stays exact.
constexpr std::uint64_t kGramMask = (std::uint64_t{1} << 56) - 1;

std::uint64_t bit_of(std::uint64_t packed) {
    return std::uint64_t{1} << ((packed * kGramMixer) >> 58);
}

/// Single home of the rolling 7-gram window recurrence (the Bloom
/// signature, the confirm pass and the index's gram arrays must pack
/// identically or the prefilter's no-false-negative guarantee breaks).
/// Calls fn(packed) per gram; fn returning true stops the walk early.
template <typename Fn>
void for_each_gram(std::string_view s, Fn&& fn) {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        w = ((w << 8) | static_cast<unsigned char>(s[i])) & kGramMask;
        if (i + 1 >= kCommonSubstringLength && fn(w)) return;
    }
}

/// eliminate_sequences() into a caller-provided inline buffer. The source
/// is <= kSpamsumLength (checked by the constructor) and collapsing only
/// shrinks, so the buffer always fits.
std::uint8_t eliminate_into(std::string_view s, std::array<char, kSpamsumLength>& out) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i >= 3 && s[i] == s[i - 1] && s[i] == s[i - 2] && s[i] == s[i - 3]) continue;
        out[n++] = s[i];
    }
    return static_cast<std::uint8_t>(n);
}

/// Exact gate behind the Bloom prefilter: do two (>= 7 char) strings share
/// a 7-gram? Each window packs into one word, so gram equality is a single
/// integer compare; worst case 58x58 words, and the Bloom AND already
/// filtered the overwhelmingly common no-overlap case.
bool confirm_common_gram(std::string_view a, std::string_view b) {
    std::array<std::uint64_t, kSpamsumLength> grams;
    std::size_t count = 0;
    for_each_gram(a, [&](std::uint64_t w) {
        grams[count++] = w;
        return false;
    });
    bool found = false;
    for_each_gram(b, [&](std::uint64_t w) {
        for (std::size_t g = 0; g < count; ++g) {
            if (grams[g] == w) {
                found = true;
                return true;
            }
        }
        return false;
    });
    return found;
}

/// The gate half of score_parts: Bloom gate, exact confirm and the
/// small-block cap either settle the score at 0 (run = false) or emit the
/// banded distance job whose result decides it. Split out so the scalar
/// path and the batched compare_x4 share every gate bit for bit.
struct PartScoreJob {
    std::string_view s1;
    std::string_view s2;
    std::uint64_t block_size = 0;
    std::size_t max_dist = 0;
    bool run = false;
};

PartScoreJob prepare_part_score(std::string_view s1, std::uint64_t sig1, std::string_view s2,
                                std::uint64_t sig2, std::uint64_t block_size, int min_score) {
    PartScoreJob job;
    if (s1.size() > kSpamsumLength || s2.size() > kSpamsumLength) return job;
    if (s1.size() < kCommonSubstringLength || s2.size() < kCommonSubstringLength) return job;
    if ((sig1 & sig2) == 0) return job;
    if (!confirm_common_gram(s1, s2)) return job;

    // The small-block cap bounds the score before any distance work.
    if (detail::small_block_cap(block_size, s1.size(), s2.size()) <
        static_cast<std::uint64_t>(min_score)) {
        return job;
    }

    job.s1 = s1;
    job.s2 = s2;
    job.block_size = block_size;
    job.max_dist = detail::max_distance_for_score(min_score, s1.size(), s2.size());
    job.run = true;
    return job;
}

int finish_part_score(const PartScoreJob& job, std::size_t dist) {
    if (dist > job.max_dist) return 0;
    return detail::scale_distance_to_score(dist, job.s1.size(), job.s2.size(), job.block_size);
}

/// Prepared-path score_strings: Bloom gate, exact confirm, cutoff-banded
/// bit-parallel distance, then the shared ssdeep scale-and-cap formula.
int score_parts(std::string_view s1, std::uint64_t sig1, std::string_view s2,
                std::uint64_t sig2, std::uint64_t block_size, int min_score) {
    const PartScoreJob job = prepare_part_score(s1, sig1, s2, sig2, block_size, min_score);
    if (!job.run) return 0;
    return finish_part_score(job, indel_distance_bounded(job.s1, job.s2, job.max_dist));
}

}  // namespace

PreparedDigest::PreparedDigest(const FuzzyDigest& digest) : block_size_(digest.block_size) {
    if (digest.digest1.size() > kSpamsumLength || digest.digest2.size() > kSpamsumLength) {
        throw util::Error("PreparedDigest: digest part exceeds kSpamsumLength");
    }
    len1_ = eliminate_into(digest.digest1, data1_);
    len2_ = eliminate_into(digest.digest2, data2_);
    sig1_ = gram_signature(part1());
    sig2_ = gram_signature(part2());
}

std::uint64_t gram_signature(std::string_view collapsed) {
    if (collapsed.empty()) return 0;
    if (collapsed.size() < kCommonSubstringLength) {
        // Whole-string lane: identical short parts must still collide so
        // the byte-identical == 100 fast path survives the prefilter.
        std::uint64_t packed = collapsed.size();
        for (const char c : collapsed) {
            packed = (packed << 8) | static_cast<unsigned char>(c);
        }
        return bit_of(packed);
    }
    std::uint64_t sig = 0;
    for_each_gram(collapsed, [&](std::uint64_t w) {
        sig |= bit_of(w);
        return false;
    });
    return sig;
}

std::size_t pack_grams(std::string_view collapsed, std::uint64_t* out) {
    std::size_t count = 0;
    for_each_gram(collapsed, [&](std::uint64_t w) {
        out[count++] = w;
        return false;
    });
    return count;
}

int compare(const PreparedDigest& a, const PreparedDigest& b, int min_score) {
    min_score = std::max(min_score, 1);

    const std::uint64_t bs1 = a.block_size();
    const std::uint64_t bs2 = b.block_size();
    if (bs1 != bs2 && bs1 != bs2 * 2 && bs2 != bs1 * 2) return 0;

    if (bs1 == bs2 && a.part1() == b.part1() && a.part2() == b.part2() &&
        !a.part1().empty()) {
        return 100;
    }

    if (bs1 == bs2) {
        return std::max(
            score_parts(a.part1(), a.signature1(), b.part1(), b.signature1(), bs1, min_score),
            score_parts(a.part2(), a.signature2(), b.part2(), b.signature2(), bs1 * 2,
                        min_score));
    }
    if (bs1 == bs2 * 2) {
        // a's fine digest lines up with b's coarse digest.
        return score_parts(a.part1(), a.signature1(), b.part2(), b.signature2(), bs1,
                           min_score);
    }
    return score_parts(a.part2(), a.signature2(), b.part1(), b.signature1(), bs2, min_score);
}

void compare_x4(const PreparedDigest& probe, const PreparedDigest* const* candidates,
                std::size_t count, int min_score, int* out) {
    min_score = std::max(min_score, 1);
    const std::uint64_t bs1 = probe.block_size();

    // Per candidate: up to two scored pairs (the equal-block-size case).
    // Every gate mirrors compare(); only the surviving distance jobs are
    // pooled and run four at a time through the interleaved kernel.
    int pair_score[4][2] = {};
    bool decided[4] = {};
    struct Pending {
        PartScoreJob job;
        std::size_t cand = 0;
        int pair = 0;
    };
    Pending pending[8];
    std::size_t n_pending = 0;

    for (std::size_t c = 0; c < count && c < 4; ++c) {
        const PreparedDigest& cand = *candidates[c];
        out[c] = 0;
        const std::uint64_t bs2 = cand.block_size();
        if (bs1 != bs2 && bs1 != bs2 * 2 && bs2 != bs1 * 2) {
            decided[c] = true;
            continue;
        }
        if (bs1 == bs2 && probe.part1() == cand.part1() && probe.part2() == cand.part2() &&
            !probe.part1().empty()) {
            out[c] = 100;
            decided[c] = true;
            continue;
        }
        const auto add = [&](std::string_view s1, std::uint64_t sig1, std::string_view s2,
                             std::uint64_t sig2, std::uint64_t block_size, int pair) {
            PartScoreJob job = prepare_part_score(s1, sig1, s2, sig2, block_size, min_score);
            if (job.run) pending[n_pending++] = {job, c, pair};
        };
        if (bs1 == bs2) {
            add(probe.part1(), probe.signature1(), cand.part1(), cand.signature1(), bs1, 0);
            add(probe.part2(), probe.signature2(), cand.part2(), cand.signature2(), bs1 * 2, 1);
        } else if (bs1 == bs2 * 2) {
            add(probe.part1(), probe.signature1(), cand.part2(), cand.signature2(), bs1, 0);
        } else {
            add(probe.part2(), probe.signature2(), cand.part1(), cand.signature1(), bs2, 0);
        }
    }

    for (std::size_t base = 0; base < n_pending; base += 4) {
        const std::size_t m = std::min<std::size_t>(4, n_pending - base);
        // Idle lanes run empty strings: distance 0, never read back.
        std::string_view lhs[4] = {};
        std::string_view rhs[4] = {};
        std::size_t max_dist[4] = {};
        std::size_t dist[4] = {};
        for (std::size_t k = 0; k < m; ++k) {
            lhs[k] = pending[base + k].job.s1;
            rhs[k] = pending[base + k].job.s2;
            max_dist[k] = pending[base + k].job.max_dist;
        }
        indel_distance_bounded_x4(lhs, rhs, max_dist, dist);
        for (std::size_t k = 0; k < m; ++k) {
            const Pending& p = pending[base + k];
            pair_score[p.cand][p.pair] = finish_part_score(p.job, dist[k]);
        }
    }

    for (std::size_t c = 0; c < count && c < 4; ++c) {
        if (decided[c]) continue;
        out[c] = std::max(pair_score[c][0], pair_score[c][1]);
    }
}

}  // namespace siren::fuzzy
