#include "fuzzy/prepared.hpp"

#include <algorithm>

#include "fuzzy/compare.hpp"
#include "fuzzy/edit_distance.hpp"
#include "util/error.hpp"

namespace siren::fuzzy {

namespace {

/// Golden-ratio odd constant; the top 6 bits of packed * kGramMixer pick
/// the Bloom bit (multiplicative hashing keeps similar grams apart).
constexpr std::uint64_t kGramMixer = 0x9E3779B97F4A7C15ull;

/// 7 base64 chars pack into 56 bits, so a gram IS its packed word and
/// packed equality is gram equality — the confirm pass stays exact.
constexpr std::uint64_t kGramMask = (std::uint64_t{1} << 56) - 1;

std::uint64_t bit_of(std::uint64_t packed) {
    return std::uint64_t{1} << ((packed * kGramMixer) >> 58);
}

/// Single home of the rolling 7-gram window recurrence (the Bloom
/// signature, the confirm pass and the index's gram arrays must pack
/// identically or the prefilter's no-false-negative guarantee breaks).
/// Calls fn(packed) per gram; fn returning true stops the walk early.
template <typename Fn>
void for_each_gram(std::string_view s, Fn&& fn) {
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        w = ((w << 8) | static_cast<unsigned char>(s[i])) & kGramMask;
        if (i + 1 >= kCommonSubstringLength && fn(w)) return;
    }
}

/// eliminate_sequences() into a caller-provided inline buffer. The source
/// is <= kSpamsumLength (checked by the constructor) and collapsing only
/// shrinks, so the buffer always fits.
std::uint8_t eliminate_into(std::string_view s, std::array<char, kSpamsumLength>& out) {
    std::size_t n = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i >= 3 && s[i] == s[i - 1] && s[i] == s[i - 2] && s[i] == s[i - 3]) continue;
        out[n++] = s[i];
    }
    return static_cast<std::uint8_t>(n);
}

/// Exact gate behind the Bloom prefilter: do two (>= 7 char) strings share
/// a 7-gram? Each window packs into one word, so gram equality is a single
/// integer compare; worst case 58x58 words, and the Bloom AND already
/// filtered the overwhelmingly common no-overlap case.
bool confirm_common_gram(std::string_view a, std::string_view b) {
    std::array<std::uint64_t, kSpamsumLength> grams;
    std::size_t count = 0;
    for_each_gram(a, [&](std::uint64_t w) {
        grams[count++] = w;
        return false;
    });
    bool found = false;
    for_each_gram(b, [&](std::uint64_t w) {
        for (std::size_t g = 0; g < count; ++g) {
            if (grams[g] == w) {
                found = true;
                return true;
            }
        }
        return false;
    });
    return found;
}

/// Prepared-path score_strings: Bloom gate, exact confirm, cutoff-banded
/// bit-parallel distance, then the shared ssdeep scale-and-cap formula.
int score_parts(std::string_view s1, std::uint64_t sig1, std::string_view s2,
                std::uint64_t sig2, std::uint64_t block_size, int min_score) {
    if (s1.size() > kSpamsumLength || s2.size() > kSpamsumLength) return 0;
    if (s1.size() < kCommonSubstringLength || s2.size() < kCommonSubstringLength) return 0;
    if ((sig1 & sig2) == 0) return 0;
    if (!confirm_common_gram(s1, s2)) return 0;

    // The small-block cap bounds the score before any distance work.
    if (detail::small_block_cap(block_size, s1.size(), s2.size()) <
        static_cast<std::uint64_t>(min_score)) {
        return 0;
    }

    const std::size_t max_dist = detail::max_distance_for_score(min_score, s1.size(), s2.size());
    const std::size_t dist = indel_distance_bounded(s1, s2, max_dist);
    if (dist > max_dist) return 0;
    return detail::scale_distance_to_score(dist, s1.size(), s2.size(), block_size);
}

}  // namespace

PreparedDigest::PreparedDigest(const FuzzyDigest& digest) : block_size_(digest.block_size) {
    if (digest.digest1.size() > kSpamsumLength || digest.digest2.size() > kSpamsumLength) {
        throw util::Error("PreparedDigest: digest part exceeds kSpamsumLength");
    }
    len1_ = eliminate_into(digest.digest1, data1_);
    len2_ = eliminate_into(digest.digest2, data2_);
    sig1_ = gram_signature(part1());
    sig2_ = gram_signature(part2());
}

std::uint64_t gram_signature(std::string_view collapsed) {
    if (collapsed.empty()) return 0;
    if (collapsed.size() < kCommonSubstringLength) {
        // Whole-string lane: identical short parts must still collide so
        // the byte-identical == 100 fast path survives the prefilter.
        std::uint64_t packed = collapsed.size();
        for (const char c : collapsed) {
            packed = (packed << 8) | static_cast<unsigned char>(c);
        }
        return bit_of(packed);
    }
    std::uint64_t sig = 0;
    for_each_gram(collapsed, [&](std::uint64_t w) {
        sig |= bit_of(w);
        return false;
    });
    return sig;
}

std::size_t pack_grams(std::string_view collapsed, std::uint64_t* out) {
    std::size_t count = 0;
    for_each_gram(collapsed, [&](std::uint64_t w) {
        out[count++] = w;
        return false;
    });
    return count;
}

int compare(const PreparedDigest& a, const PreparedDigest& b, int min_score) {
    min_score = std::max(min_score, 1);

    const std::uint64_t bs1 = a.block_size();
    const std::uint64_t bs2 = b.block_size();
    if (bs1 != bs2 && bs1 != bs2 * 2 && bs2 != bs1 * 2) return 0;

    if (bs1 == bs2 && a.part1() == b.part1() && a.part2() == b.part2() &&
        !a.part1().empty()) {
        return 100;
    }

    if (bs1 == bs2) {
        return std::max(
            score_parts(a.part1(), a.signature1(), b.part1(), b.signature1(), bs1, min_score),
            score_parts(a.part2(), a.signature2(), b.part2(), b.signature2(), bs1 * 2,
                        min_score));
    }
    if (bs1 == bs2 * 2) {
        // a's fine digest lines up with b's coarse digest.
        return score_parts(a.part1(), a.signature1(), b.part2(), b.signature2(), bs1,
                           min_score);
    }
    return score_parts(a.part2(), a.signature2(), b.part1(), b.signature1(), bs2, min_score);
}

}  // namespace siren::fuzzy
